"""Verified-element cache for the client proxy.

The integrity certificate makes client caching *safe by construction*:
a cached element can be served without contacting any replica for as
long as its certificate row is valid — the exact guarantee the paper's
freshness property provides. The cache stores only elements that
already passed every security check, keyed by (OID, element name), and
expires them at their per-element ``expires_at`` (never later, even if
the configured TTL is longer).

This is the client half of the ``ttl-cache`` replication strategy and
the mechanism behind Squid-style proxy caching in the GlobeDoc world —
with the crucial difference that staleness is bounded by the *owner's*
signed interval, not by a cache operator's configuration.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.globedoc.element import PageElement
from repro.obs import NOOP_TRACER
from repro.sim.clock import Clock, RealClock

__all__ = ["ContentCache", "CachedElement"]


@dataclass(frozen=True)
class CachedElement:
    """A verified element plus its hard expiry."""

    element: PageElement
    expires_at: float
    cached_at: float


class ContentCache:
    """Bounded (OID, name) → verified element cache.

    ``max_bytes`` bounds total cached content; eviction is LRU. The
    effective lifetime of an entry is ``min(cached_at + ttl,
    certificate expires_at)`` — the owner's freshness constraint always
    wins. Table operations are serialized by an internal lock so the
    concurrent pipeline can share one cache across request threads.

    ``compute_context`` (optional, same idiom as
    :class:`~repro.proxy.checks.SecurityChecker`) charges measured
    lookup/insert CPU to a simulated host, so ``cache.get``/``cache.put``
    spans carry honest (small) durations in the critical-path profile.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        ttl: float = 300.0,
        max_bytes: int = 64 * 1024 * 1024,
        tracer=None,
        compute_context=None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"TTL must be positive, got {ttl}")
        if max_bytes <= 0:
            raise ValueError(f"cache size must be positive, got {max_bytes}")
        self.clock = clock if clock is not None else RealClock()
        self.ttl = ttl
        self.max_bytes = max_bytes
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._compute = compute_context if compute_context is not None else nullcontext
        self._entries: "OrderedDict[Tuple[str, str], CachedElement]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def get(self, oid_hex: str, name: str) -> Optional[PageElement]:
        """A still-valid verified element, or None."""
        with self.tracer.span("cache.get", element=name) as span:
            with self._compute():
                element = self._get(oid_hex, name)
            span.set_attribute("hit", element is not None)
            return element

    def _get(self, oid_hex: str, name: str) -> Optional[PageElement]:
        key = (oid_hex, name)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            now = self.clock.now()
            if now > entry.expires_at or now > entry.cached_at + self.ttl:
                self._evict(key)
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.element

    def contains(self, oid_hex: str, name: str) -> bool:
        """True iff a still-valid entry exists — a pure peek.

        Unlike :meth:`get` this neither counts as a hit/miss nor bumps
        the LRU position: the pipeline scheduler uses it to decide which
        fetches to skip without distorting cache statistics.
        """
        with self._lock:
            entry = self._entries.get((oid_hex, name))
            if entry is None:
                return False
            now = self.clock.now()
            return not (now > entry.expires_at or now > entry.cached_at + self.ttl)

    def put(self, oid_hex: str, element: PageElement, expires_at: float) -> None:
        """Insert a *verified* element with its certificate expiry.

        Oversized elements (bigger than the whole cache) are skipped, as
        are already-expired entries — they could never be served, and
        would occupy bytes (evicting live entries) until a ``get``
        happened to touch them.
        """
        with self.tracer.span(
            "cache.put", element=element.name, size=element.size
        ) as span:
            if element.size > self.max_bytes:
                span.set_attribute("stored", False)
                return
            if expires_at <= self.clock.now():
                span.set_attribute("stored", False)
                return
            key = (oid_hex, element.name)
            with self._compute(), self._lock:
                self._evict(key)
                while self._bytes + element.size > self.max_bytes and self._entries:
                    self._evict(next(iter(self._entries)))
                self._entries[key] = CachedElement(
                    element=element, expires_at=expires_at, cached_at=self.clock.now()
                )
                self._bytes += element.size
            span.set_attribute("stored", True)

    def evict_expired(self) -> int:
        """Sweep out every entry past its certificate expiry or TTL.

        The proxy runs this periodically so dead entries stop holding
        cache bytes between accesses; returns entries removed.
        """
        now = self.clock.now()
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if now > entry.expires_at or now > entry.cached_at + self.ttl
            ]
            for key in doomed:
                self._evict(key)
            return len(doomed)

    def invalidate_object(self, oid_hex: str) -> int:
        """Drop every cached element of one object (e.g. on a version
        bump the client learned about); returns entries removed."""
        with self._lock:
            doomed = [key for key in self._entries if key[0] == oid_hex]
            for key in doomed:
                self._evict(key)
            return len(doomed)

    def invalidate_element(self, oid_hex: str, name: str) -> int:
        """Drop one (OID, element) entry — an element-scoped revocation
        purge; returns entries removed (0 or 1)."""
        with self._lock:
            if (oid_hex, name) in self._entries:
                self._evict((oid_hex, name))
                return 1
            return 0

    def _evict(self, key: Tuple[str, str]) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry.element.size

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
