"""The user-facing GlobeDoc proxy (§2.1, §4).

"The client proxy … identifies GlobeDoc names from the hybrid URLs
passed by the client browser, does name resolution and replica location,
retrieves the desired page elements and performs the authenticity,
freshness and consistency tests … The proxy also transparently handles
any regular HTTP requests it receives from the browser."

:class:`GlobeDocProxy` is that component: a URL in, a response out.
Security violations never escape as exceptions — they render the
paper's "Security Check Failed" page, because the browser upstream only
speaks HTTP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import (
    BindingError,
    NamingError,
    LocationError,
    ObjectNotFound,
    ReplicaError,
    ReproError,
    RevokedKeyError,
    SecurityError,
    TransportError,
    UrlError,
)
from repro.globedoc.urls import HybridUrl
from repro.location.service import LocationClient
from repro.naming.service import SecureResolver
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.obs import NOOP_METRICS, NOOP_TRACER
from repro.proxy.binding import Binder
from repro.proxy.checks import SecurityChecker
from repro.proxy.metrics import AccessMetrics, AccessTimer
from repro.proxy.session import SecureSession

__all__ = ["GlobeDocProxy", "ProxyResponse"]

SECURITY_FAILED_HTML = (
    b"<html><head><title>Security Check Failed</title></head>"
    b"<body><h1>Security Check Failed</h1><p>%s</p></body></html>"
)

NOT_FOUND_HTML = (
    b"<html><head><title>Not Found</title></head>"
    b"<body><h1>Document Not Found</h1><p>%s</p></body></html>"
)

#: Sweep expired content-cache entries every this many requests, so dead
#: entries stop holding cache bytes even when no ``get`` touches them.
CACHE_SWEEP_INTERVAL = 64

#: How many signed OID→OID forwarding records one request may follow
#: (bounds redirect loops from a compromised-then-rekeyed-again chain).
MAX_FORWARD_HOPS = 3


@dataclass(frozen=True)
class ProxyResponse:
    """What the browser gets back from the proxy."""

    status: int
    content: bytes
    content_type: str = "text/html"
    certified_as: Optional[str] = None
    metrics: Optional[AccessMetrics] = None
    security_failure: str = ""

    @property
    def ok(self) -> bool:
        return self.status == 200


class GlobeDocProxy:
    """One user's proxy: sessions per object, passthrough for plain HTTP."""

    def __init__(
        self,
        binder: Binder,
        checker: SecurityChecker,
        rpc: RpcClient,
        cache_binding: bool = True,
        require_identity: bool = False,
        content_cache=None,
        session_ttl: Optional[float] = None,
        max_rebinds: int = 3,
        tracer=None,
        metrics=None,
        metrics_client: str = "",
    ) -> None:
        self.binder = binder
        self.checker = checker
        self.rpc = rpc
        self.cache_binding = cache_binding
        self.require_identity = require_identity
        self.content_cache = content_cache
        #: Root of the access trace: every GlobeDoc request opens one
        #: ``proxy.handle`` span whose children decompose the pipeline.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Per-session replica failover budget (0 disables failover —
        #: the pre-resilience behaviour, kept for ablations).
        self.max_rebinds = max_rebinds
        #: Re-bind sessions older than this (seconds). Without it a
        #: long-lived proxy would never notice replicas placed closer by
        #: dynamic replication; with it, bindings follow the replica set
        #: at the location-cache/naming-TTL cadence.
        self.session_ttl = session_ttl
        self._sessions: Dict[str, SecureSession] = {}
        self._session_created: Dict[str, float] = {}
        self.request_count = 0
        self.failure_count = 0
        #: Optional :class:`~repro.proxy.pipeline.AccessScheduler`; when
        #: installed, :meth:`handle_many` prefetches batches in parallel.
        self.scheduler = None
        #: Monitor-plane instruments. Counters and histograms are shared
        #: across proxies (additive); the cache hit-ratio gauges carry a
        #: ``client`` label (``metrics_client``) so several stacks can
        #: share one registry without clobbering each other's ratios.
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.metrics_client = metrics_client
        self._m_requests = self.metrics.counter(
            "proxy_requests_total",
            "Browser requests handled, by outcome "
            "(ok / rejected / not_found / passthrough / bad_url).",
            labelnames=("outcome",),
        )
        self._m_rejections = self.metrics.counter(
            "proxy_rejections_total",
            "Accesses rejected by a security check, by exception class.",
            labelnames=("error",),
        )
        self._m_access = self.metrics.histogram(
            "proxy_access_seconds",
            "Total per-access time (clock-charged seconds), every phase.",
        )
        self._m_overhead = self.metrics.histogram(
            "proxy_security_overhead_fraction",
            "Security time as a fraction of total access time (Fig. 4).",
            buckets=(0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0),
        )
        self._m_cache_ratio = self.metrics.gauge(
            "proxy_cache_hit_ratio",
            "Hit ratio of the proxy's caches (content / verify), 0-1.",
            labelnames=("client", "cache"),
        )
        self.metrics.register_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def handle(self, url: str, timer: Optional[AccessTimer] = None) -> ProxyResponse:
        """Serve one browser request (hybrid URL or plain HTTP)."""
        self.request_count += 1
        if (
            self.content_cache is not None
            and self.request_count % CACHE_SWEEP_INTERVAL == 0
        ):
            self.content_cache.evict_expired()
        try:
            parsed = HybridUrl.parse(url)
        except UrlError as exc:
            self._m_requests.labels(outcome="bad_url").inc()
            return ProxyResponse(
                status=400, content=NOT_FOUND_HTML % str(exc).encode()
            )
        if not parsed.is_globedoc:
            return self._passthrough(parsed)
        return self._handle_globedoc(parsed, timer)

    def handle_many(self, urls) -> list:
        """Serve a batch of browser requests; responses align with input.

        With an :attr:`scheduler` installed the batch goes through the
        concurrent access pipeline (parallel prefetch, batched
        verification, request coalescing); without one it degrades to a
        sequential loop over :meth:`handle`. Either way every request
        passes the full security pipeline individually.
        """
        if self.scheduler is not None:
            return self.scheduler.run(list(urls))
        return [self.handle(url) for url in urls]

    def _handle_globedoc(
        self, url: HybridUrl, timer: Optional[AccessTimer]
    ) -> ProxyResponse:
        own_timer = timer is None
        if own_timer:
            timer = AccessTimer(self.checker.clock)
        assert timer is not None
        # The root span stays status=ok even on a rejected access: the
        # error belongs to the check/rpc span that raised it, while the
        # outcome is recorded here as the HTTP ``status`` attribute.
        with self.tracer.span("proxy.handle", url=url.raw) as span:
            hops = 0
            while True:
                try:
                    session = self._session_for(url, timer)
                    result = session.fetch(url.element_name, timer)
                except (
                    RevokedKeyError, ObjectNotFound, BindingError, ReplicaError
                ) as exc:
                    # A revoked or vanished object may have a re-keyed
                    # successor: follow its signed forwarding record.
                    # ReplicaError lands here when every server already
                    # tore the revoked object down (failover exhausted).
                    successor = (
                        self._follow_forwarding(url, timer)
                        if hops < MAX_FORWARD_HOPS
                        else None
                    )
                    if successor is not None:
                        hops += 1
                        span.set_attribute("forward_hops", hops)
                        url = successor
                        continue
                    return self._failure_response(span, exc, timer)
                except (
                    SecurityError, NamingError, LocationError, TransportError
                ) as exc:
                    return self._failure_response(span, exc, timer)
                span.set_attribute("status", 200)
                self._m_requests.labels(outcome="ok").inc()
                self._observe_access(result.metrics)
                return ProxyResponse(
                    status=200,
                    content=result.element.content,
                    content_type=result.element.content_type,
                    certified_as=result.certified_as,
                    metrics=result.metrics,
                )

    def _failure_response(
        self, span, exc: Exception, timer: AccessTimer
    ) -> ProxyResponse:
        self.failure_count += 1
        metrics = timer.finish()
        self._observe_access(metrics)
        if isinstance(exc, SecurityError):
            # §3.3: failed checks render the Security Check Failed page.
            span.set_attribute("status", 403)
            span.set_attribute("security_failure", type(exc).__name__)
            self._m_requests.labels(outcome="rejected").inc()
            self._m_rejections.labels(error=type(exc).__name__).inc()
            return ProxyResponse(
                status=403,
                content=SECURITY_FAILED_HTML % str(exc).encode(),
                metrics=metrics,
                security_failure=type(exc).__name__,
            )
        span.set_attribute("status", 404)
        self._m_requests.labels(outcome="not_found").inc()
        return ProxyResponse(
            status=404,
            content=NOT_FOUND_HTML % str(exc).encode(),
            metrics=metrics,
        )

    def _observe_access(self, metrics: Optional[AccessMetrics]) -> None:
        """Mirror one access's timer decomposition into the registry.

        The monitor harness cross-checks the histogram's sum against the
        per-response :class:`AccessMetrics` totals (consistency gate),
        so exactly the totals returned to callers are observed here.
        """
        if metrics is None or not self.metrics.enabled:
            return
        self._m_access.observe(metrics.total)
        self._m_overhead.observe(metrics.overhead_fraction)

    def _collect_metrics(self) -> None:
        """Scrape-time refresh of the derived cache hit-ratio gauges."""
        if self.content_cache is not None:
            self._m_cache_ratio.labels(
                client=self.metrics_client, cache="content"
            ).set(self.content_cache.hit_rate)
        cache = self.checker.verification_cache
        if cache is not None:
            hits, misses, _saved = cache.stats.snapshot()
            total = hits + misses
            self._m_cache_ratio.labels(
                client=self.metrics_client, cache="verify"
            ).set(hits / total if total else 0.0)

    def _follow_forwarding(
        self, url: HybridUrl, timer: AccessTimer
    ) -> Optional[HybridUrl]:
        """The OID-form URL of the re-keyed successor, or None.

        Never raises: forwarding is best-effort recovery on a path that
        already failed — any problem here just surfaces the original
        failure. The record itself is validated by the resolver (signed
        by the key the old OID self-certifies).
        """
        resolver = getattr(self.binder, "resolver", None)
        if resolver is None or not hasattr(resolver, "resolve_forward"):
            return None
        try:
            oid = self.binder.resolve_oid(url, timer)
        except ReproError:
            return None
        with self.tracer.span("proxy.forward", oid=oid.hex[:16]) as span:
            try:
                record = resolver.resolve_forward(oid)
            except ReproError:
                span.set_attribute("found", False)
                return None
            if record is None:
                span.set_attribute("found", False)
                return None
            span.set_attribute("found", True)
            span.set_attribute("to_oid", record.to_oid.hex[:16])
        return HybridUrl.for_oid(record.to_oid, url.element_name)

    def _session_for(self, url: HybridUrl, timer: AccessTimer) -> SecureSession:
        key = url.oid.hex if url.oid is not None else str(url.object_name)
        session = self._sessions.get(key)
        if (
            session is not None
            and self.session_ttl is not None
            and self.checker.clock.now() - self._session_created.get(key, 0.0)
            > self.session_ttl
        ):
            session = None  # stale binding: re-resolve and re-bind
        if session is None:
            bound = self.binder.bind(url, timer)
            session = SecureSession(
                binder=self.binder,
                checker=self.checker,
                bound=bound,
                cache_binding=self.cache_binding,
                require_identity=self.require_identity,
                max_rebinds=self.max_rebinds,
                content_cache=self.content_cache,
                tracer=self.tracer,
            )
            self._sessions[key] = session
            self._session_created[key] = self.checker.clock.now()
        return session

    def _passthrough(self, url: HybridUrl) -> ProxyResponse:
        """Transparent handling of a regular HTTP request: forward to the
        origin's HTTP front (the plain-HTTP baseline server)."""
        from urllib.parse import urlsplit

        parts = urlsplit(url.raw)
        try:
            answer = self.rpc.call(
                Endpoint(host=parts.netloc, service="http"),
                "http.get",
                path=parts.path or "/",
            )
        except ReproError as exc:
            self.failure_count += 1
            self._m_requests.labels(outcome="not_found").inc()
            return ProxyResponse(status=502, content=NOT_FOUND_HTML % str(exc).encode())
        self._m_requests.labels(outcome="passthrough").inc()
        return ProxyResponse(
            status=int(answer["status"]),
            content=bytes(answer["body"]),
            content_type=str(answer.get("content_type", "text/html")),
        )

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------

    def drop_session(self, object_key: str) -> None:
        self._sessions.pop(object_key, None)
        self._session_created.pop(object_key, None)

    def drop_all_sessions(self) -> None:
        self._sessions.clear()
        self._session_created.clear()

    @property
    def session_count(self) -> int:
        return len(self._sessions)
