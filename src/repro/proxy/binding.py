"""Binding to a GlobeDoc object (§2.1, Fig. 1).

Binding has two phases: *finding* the object (name lookup to an OID,
location lookup to contact addresses) and *installing* a local
representative (here: a forwarding :class:`~repro.server.localrep.ProxyLR`
bound to a chosen contact address). The location service is untrusted,
so the binder supports failover: if the replica behind an address fails
the key/OID check later, the session rebinds to the next address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import BindingError, ObjectNotFound
from repro.globedoc.oid import ObjectId
from repro.globedoc.urls import HybridUrl
from repro.location.service import LocationClient
from repro.naming.service import SecureResolver
from repro.net.address import ContactAddress
from repro.net.health import ReplicaHealthTracker
from repro.net.rpc import RpcClient
from repro.obs import NOOP_TRACER
from repro.proxy.metrics import AccessTimer
from repro.server.localrep import ProxyLR

__all__ = ["Binder", "BoundObject"]


@dataclass
class BoundObject:
    """A bound object: OID, the addresses found, and the installed LR."""

    oid: ObjectId
    addresses: List[ContactAddress]
    address_index: int
    lr: ProxyLR

    @property
    def address(self) -> ContactAddress:
        return self.addresses[self.address_index]

    @property
    def has_alternative(self) -> bool:
        return self.address_index + 1 < len(self.addresses)


class Binder:
    """Performs name → OID → contact-address → LR installation."""

    def __init__(
        self,
        resolver: SecureResolver,
        location: LocationClient,
        rpc: RpcClient,
        health: Optional[ReplicaHealthTracker] = None,
        tracer=None,
    ) -> None:
        self.resolver = resolver
        self.location = location
        self.rpc = rpc
        #: Optional shared replica-health tracker: quarantined addresses
        #: are ordered after every healthy alternative at bind time.
        self.health = health
        self.tracer = tracer if tracer is not None else NOOP_TRACER

    def note_replica_failure(self, bound: BoundObject) -> None:
        """Charge a session-observed failure (security violation or
        transport fault past the retry budget) to the current address."""
        if self.health is not None:
            self.health.record_failure(str(bound.address))

    def resolve_oid(self, url: HybridUrl, timer: AccessTimer) -> ObjectId:
        """Phase 1a: the object's OID, from the URL or the naming service."""
        if url.oid is not None:
            return url.oid
        if url.object_name is None:
            raise BindingError(f"not a GlobeDoc URL: {url.raw!r}")
        with self.tracer.span("bind.resolve", name=url.object_name):
            with timer.phase("resolve_name"):
                result = self.resolver.resolve(url.object_name)
        return result.oid

    def bind(self, url: HybridUrl, timer: AccessTimer) -> BoundObject:
        """Full binding: find the object and install a forwarding LR."""
        oid = self.resolve_oid(url, timer)
        with self.tracer.span("bind.locate", oid=oid.hex[:16]) as span:
            with timer.phase("find_replica"):
                lookup = self.location.lookup(oid)
            span.set_attribute("candidates", len(lookup.addresses))
            if not lookup.addresses:
                raise ObjectNotFound(
                    f"no replicas registered for OID {oid.hex[:12]}…"
                )
        return self._install(oid, self._order(lookup.addresses), 0)

    def rebind(self, bound: BoundObject) -> BoundObject:
        """Failover to the next contact address after a bad replica.

        When the current address list is exhausted, performs a *widened*
        location lookup (all rings) and continues with any addresses not
        yet tried — a lying or broken nearest replica must cause only a
        temporary disruption while genuine replicas exist elsewhere.
        Also drops the cached location entry so a later bind re-queries
        the (possibly recovered) location service.
        """
        self.location.invalidate(bound.oid)
        if bound.has_alternative:
            with self.tracer.span(
                "bind.rebind",
                oid=bound.oid.hex[:16],
                widened=False,
                next_index=bound.address_index + 1,
            ):
                return self._install(
                    bound.oid, bound.addresses, bound.address_index + 1
                )
        with self.tracer.span(
            "bind.rebind", oid=bound.oid.hex[:16], widened=True
        ) as span:
            tried = set(map(str, bound.addresses))
            try:
                widened = self.location.lookup(bound.oid, widen=True)
            except ObjectNotFound:
                widened = None
            fresh = self._order(
                [a for a in widened.addresses if str(a) not in tried]
                if widened
                else []
            )
            span.set_attribute("fresh_candidates", len(fresh))
            if not fresh:
                raise BindingError(
                    f"no alternative replicas for OID {bound.oid.hex[:12]}… "
                    "(all known contact addresses exhausted)"
                )
            return self._install(
                bound.oid, list(bound.addresses) + fresh, len(bound.addresses)
            )

    def candidates(self, oid: ObjectId) -> List[ContactAddress]:
        """Health-ordered contact addresses for *oid*, no LR installed.

        The pipeline scheduler uses this during speculative binding: a
        location lookup it can overlap with name resolution, yielding
        the same address order :meth:`bind` would pick. The location
        client's own cache makes the follow-up real bind free.
        """
        return self._order(self.location.lookup(oid).addresses)

    def _order(self, addresses: List[ContactAddress]) -> List[ContactAddress]:
        """Health-aware ordering: keep proximity order, sink quarantined
        addresses to the back (without the tracker, a no-op)."""
        if self.health is None or not addresses:
            return list(addresses)
        return self.health.order(addresses)

    def _install(
        self, oid: ObjectId, addresses: List[ContactAddress], index: int
    ) -> BoundObject:
        return BoundObject(
            oid=oid,
            addresses=list(addresses),
            address_index=index,
            lr=ProxyLR(self.rpc, addresses[index]),
        )
