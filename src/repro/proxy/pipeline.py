"""Concurrent access pipeline: prefetch in parallel, replay verified.

The sequential proxy charges one round trip per step of Fig. 3 —
resolve, locate, key, certificate, then one trip per element. For a
page of N elements that is ~(4 + N) serial RTTs even though none of the
fetches depend on each other's *bytes*, only on their verification
order. This module splits the two concerns:

* **Prefetch** — :class:`AccessScheduler` computes every RPC a batch of
  URLs will need, issues them in parallel waves (max-of-parallel under
  the simulated clock, pooled threads over TCP), and parks the raw
  results in a :class:`PrefetchingRpcClient` table keyed by (endpoint,
  op, canonical args).
* **Replay** — the *unchanged* sequential pipeline
  (:meth:`GlobeDocProxy.handle`) then runs per request; its RPCs pop
  their prefetched results at zero network cost, while every security
  check executes exactly as before, in exactly the same order.

Security semantics are preserved by construction: the table stores only
successful transports' bytes, never verdicts — tampered data is parked
just like genuine data and then fails the same check it always failed,
raising the same :class:`~repro.errors.SecurityError` subclass. A
prefetch *failure* is simply not parked, so the replay re-issues the
call and the retry/failover machinery sees it first-hand.

Speculative binding overlaps resolve and locate: once an object name
has resolved once, its OID is remembered as a *hint*, and the next
batch issues the location lookup concurrently with the (re-)resolution
— a misprediction costs one repair lookup, a hit removes the naming
round trip from the critical path.

Request coalescing is layered: identical URLs in one batch share a
single prefetch *and* a single replay (waiters get the leader's
response object), and :class:`SingleFlight` deduplicates identical
in-flight calls when real threads race on a hot OID.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.keys import PublicKey
from repro.errors import UrlError
from repro.globedoc.integrity import IntegrityCertificate
from repro.globedoc.urls import HybridUrl
from repro.net.rpc import BatchCall, DEFAULT_WINDOW
from repro.net.address import ContactAddress
from repro.net.retry import is_idempotent
from repro.obs import NOOP_METRICS, NOOP_TRACER
from repro.proxy.metrics import AccessTimer
from repro.util.encoding import canonical_bytes

__all__ = [
    "PipelineConfig",
    "PipelineCounters",
    "PrefetchingRpcClient",
    "AccessScheduler",
    "SingleFlight",
]


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs of the concurrent access pipeline."""

    #: Max RPCs kept in flight per wave (forwarded to ``call_many``).
    window: int = DEFAULT_WINDOW
    #: Overlap location lookups with name resolution using OID hints.
    speculate: bool = True
    #: Batch-verify prefetched integrity certificates into the cache.
    batch_verify: bool = True


@dataclass
class PipelineCounters:
    """Plain counters one scheduler/prefetcher pair accumulates."""

    prefetched: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    coalesced_calls: int = 0
    coalesced_responses: int = 0
    speculations: int = 0
    mispredictions: int = 0
    waves: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


class SingleFlight:
    """Thread-safe single-flight execution: one winner per key.

    Concurrent :meth:`do` calls with the same key collapse to a single
    execution of *fn*; every waiter receives the leader's result object
    (or its exception). Keys leave the table as soon as the flight
    lands, so this deduplicates *in-flight* work only — a later call
    with the same key executes again (memoization is the caches' job).
    """

    def __init__(self, metrics=None) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Any, "_Flight"] = {}
        self.leaders = 0
        self.waiters = 0
        metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_waiters = metrics.counter(
            "coalesce_waiters_total",
            "Requests served another request's in-flight result.",
        )

    def do(self, key: Any, fn: Callable[[], Any]) -> Any:
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                self.leaders += 1
                leader = True
            else:
                self.waiters += 1
                self._m_waiters.inc()
                leader = False
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value
        try:
            flight.value = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.value


class _Flight:
    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class PrefetchingRpcClient:
    """An RPC client that serves parked prefetch results before the wire.

    Drop-in for :class:`~repro.net.rpc.RpcClient` (``call`` +
    ``transport``; ``counters`` and ``call_many`` forward to the inner
    client, typically a :class:`~repro.net.retry.RetryingRpcClient`).
    :meth:`prefetch` issues a wave of calls in parallel and parks each
    *successful* raw result under its call key; a later identical
    :meth:`call` pops the parked value at zero network cost. Entries are
    consumed exactly once (pop-on-use) and the scheduler clears the
    table after each replay, so no parked byte outlives the batch that
    fetched it.
    """

    def __init__(self, inner, metrics=None, tracer=None) -> None:
        self.inner = inner
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.counters_pipeline = PipelineCounters()
        self._table: Dict[tuple, List[Any]] = {}
        self._lock = threading.RLock()
        self._flight = SingleFlight(metrics=self.metrics)
        self._m_coalesce_hits = self.metrics.counter(
            "coalesce_hits_total",
            "Duplicate calls collapsed into one RPC by the pipeline.",
        )

    # -- RpcClient surface -------------------------------------------------

    @property
    def transport(self):
        return self.inner.transport

    @property
    def counters(self):
        """The retry counters of the inner client (duck-typed, may be
        absent when the inner client is a plain ``RpcClient``)."""
        return getattr(self.inner, "counters", None)

    def call(self, target, op: str, **args: Any) -> Any:
        key = self._call_key(target, op, args)
        with self._lock:
            parked = self._table.get(key)
            if parked:
                value = parked.pop(0)
                if not parked:
                    del self._table[key]
                self.counters_pipeline.prefetch_hits += 1
                return value
        self.counters_pipeline.prefetch_misses += 1
        if is_idempotent(op):
            # Hot-OID coalescing: concurrent identical reads (real
            # threads racing on one popular document) share one wire
            # call and one result object.
            return self._flight.do(key, lambda: self.inner.call(target, op, **args))
        return self.inner.call(target, op, **args)

    def call_many(self, calls, window: int = DEFAULT_WINDOW):
        return self.inner.call_many(calls, window=window)

    # -- Prefetch table ----------------------------------------------------

    def prefetch(self, calls: Sequence[BatchCall], window: int = DEFAULT_WINDOW) -> int:
        """Issue *calls* in parallel; park the successes. Returns parks.

        Duplicate calls (same key) within the wave collapse to a single
        RPC — the coalescing half of the pipeline — and park a single
        result, because duplicate *requests* share a single replay too.
        """
        unique: Dict[tuple, BatchCall] = {}
        for call in calls:
            key = self._call_key(call.target, call.op, call.args)
            if key in unique:
                self.counters_pipeline.coalesced_calls += 1
                self._m_coalesce_hits.inc()
            else:
                unique[key] = call
        if not unique:
            return 0
        self.counters_pipeline.waves += 1
        with self.tracer.span("pipeline.prefetch", calls=len(unique)) as span:
            outcomes = self.inner.call_many(list(unique.values()), window=window)
            parked = 0
            with self._lock:
                for key, outcome in zip(unique, outcomes):
                    if outcome.ok:
                        self._table.setdefault(key, []).append(outcome.value)
                        parked += 1
            self.counters_pipeline.prefetched += parked
            span.set_attribute("parked", parked)
            span.set_attribute("failed", len(outcomes) - parked)
        return parked

    def peek(self, target, op: str, **args: Any) -> Optional[Any]:
        """A parked value without consuming it (verify-phase preview)."""
        with self._lock:
            parked = self._table.get(self._call_key(target, op, args))
            return parked[0] if parked else None

    def clear(self) -> None:
        """Drop every parked entry (end of batch; nothing may leak)."""
        with self._lock:
            self._table.clear()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(values) for values in self._table.values())

    @staticmethod
    def _call_key(target, op: str, args) -> tuple:
        endpoint = target.endpoint if isinstance(target, ContactAddress) else target
        try:
            encoded = canonical_bytes(dict(args))
        except Exception:
            encoded = repr(sorted(args.items())).encode()
        return (str(endpoint), op, encoded)


class _ObjectPlan:
    """What one batch knows about one object before replay."""

    __slots__ = (
        "key",
        "url",
        "oid",
        "addresses",
        "elements",
        "session",
        "establish_needed",
        "error",
    )

    def __init__(self, key: str, url: HybridUrl) -> None:
        self.key = key
        self.url = url
        self.oid = None
        self.addresses: List[ContactAddress] = []
        self.elements: List[str] = []
        self.session = None
        self.establish_needed = True
        self.error: Optional[Exception] = None


class AccessScheduler:
    """Plans, prefetches, and replays one batch of browser requests.

    Owned by a :class:`~repro.proxy.clientproxy.GlobeDocProxy`; its
    :meth:`run` is the engine behind ``proxy.handle_many``. The replay
    delegates every request to ``proxy.handle`` unchanged — the
    scheduler only ever *adds* parked bytes and cache warmth, so a
    pipelined batch and a sequential loop return identical responses.
    """

    def __init__(
        self,
        proxy,
        prefetcher: PrefetchingRpcClient,
        config: Optional[PipelineConfig] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.proxy = proxy
        self.prefetcher = prefetcher
        self.config = config if config is not None else PipelineConfig()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.counters = self.prefetcher.counters_pipeline
        #: name → OID hints feeding speculative binding across batches.
        self._oid_hints: Dict[str, Any] = {}
        self._m_waiters = self.metrics.counter(
            "coalesce_waiters_total",
            "Requests served another request's in-flight result.",
        )

    # ------------------------------------------------------------------

    def run(self, urls: Sequence[str]) -> List[Any]:
        """Serve *urls*; responses align with the input order."""
        urls = list(urls)
        responses: List[Any] = [None] * len(urls)
        with self.tracer.span("pipeline.schedule", requests=len(urls)) as span:
            parsed: List[Optional[HybridUrl]] = []
            for url in urls:
                try:
                    hybrid = HybridUrl.parse(url)
                except UrlError:
                    hybrid = None
                parsed.append(hybrid if hybrid is not None and hybrid.is_globedoc else None)

            # Unit = one (object, element) replay; duplicates coalesce.
            units: Dict[Tuple[str, str], List[int]] = {}
            plans: Dict[str, _ObjectPlan] = {}
            for index, hybrid in enumerate(parsed):
                if hybrid is None:
                    continue  # passthrough/bad URLs replay sequentially
                key = self._session_key(hybrid)
                unit = (key, hybrid.element_name)
                units.setdefault(unit, []).append(index)
                if key not in plans:
                    plans[key] = _ObjectPlan(key, hybrid)
                if hybrid.element_name not in plans[key].elements:
                    plans[key].elements.append(hybrid.element_name)

            self._bind_phase(list(plans.values()))
            self._fetch_phase(list(plans.values()))
            if self.config.batch_verify:
                self._verify_phase(list(plans.values()))

            coalesced = 0
            try:
                for index, hybrid in enumerate(parsed):
                    if hybrid is None:
                        responses[index] = self.proxy.handle(urls[index])
                for (key, _element), members in units.items():
                    leader = members[0]
                    response = self.proxy.handle(urls[leader])
                    for member in members:
                        responses[member] = response
                    waiters = len(members) - 1
                    if waiters:
                        coalesced += waiters
                        self._m_waiters.inc(waiters)
            finally:
                # Unconsumed parked bytes must not leak into later
                # accesses (a replica may change between batches).
                self.prefetcher.clear()
            self.counters.coalesced_responses += coalesced
            span.set_attribute("objects", len(plans))
            span.set_attribute("units", len(units))
            span.set_attribute("coalesced", coalesced)
        return responses

    # ------------------------------------------------------------------
    # Phase 1: speculative binding (resolve + locate in flight together)
    # ------------------------------------------------------------------

    def _bind_phase(self, plans: List[_ObjectPlan]) -> None:
        proxy = self.proxy
        binder = proxy.binder
        clock = proxy.checker.clock
        need_bind: List[_ObjectPlan] = []
        for plan in plans:
            session = self._live_session(plan.key)
            if session is not None:
                plan.session = session
                plan.oid = session.bound.oid
                plan.addresses = [session.bound.address]
                plan.establish_needed = session.verified is None
            else:
                need_bind.append(plan)
        if not need_bind:
            return

        thunks: List[Callable[[], None]] = []
        speculative: Dict[str, List[ContactAddress]] = {}
        for plan in need_bind:
            url = plan.url
            hint = (
                self._oid_hints.get(url.object_name)
                if self.config.speculate and url.oid is None and url.object_name
                else None
            )

            def resolve_and_locate(plan=plan, url=url, hint=hint) -> None:
                timer = AccessTimer(clock)
                try:
                    plan.oid = binder.resolve_oid(url, timer)
                    if hint is None or hint != plan.oid:
                        plan.addresses = binder.candidates(plan.oid)
                except Exception as exc:
                    plan.error = exc

            thunks.append(resolve_and_locate)
            if hint is not None:
                self.counters.speculations += 1

                def locate_hint(plan=plan, hint=hint) -> None:
                    try:
                        speculative[plan.key] = binder.candidates(hint)
                    except Exception:
                        pass  # the repair path below re-looks-up

                thunks.append(locate_hint)
        self._run_parallel(thunks)

        for plan in need_bind:
            if plan.error is not None or plan.oid is None:
                continue
            hint = (
                self._oid_hints.get(plan.url.object_name)
                if plan.url.object_name
                else None
            )
            if hint is not None and hint != plan.oid:
                # Stale hint: the resolve branch already repaired the
                # address list with a post-resolution lookup.
                self.counters.mispredictions += 1
            if not plan.addresses:
                hinted = speculative.get(plan.key)
                if hinted is not None and hint == plan.oid:
                    plan.addresses = hinted  # speculation confirmed
                else:
                    try:
                        plan.addresses = binder.candidates(plan.oid)
                    except Exception as exc:
                        plan.error = exc
                        continue
            if plan.url.object_name:
                self._oid_hints[plan.url.object_name] = plan.oid

    # ------------------------------------------------------------------
    # Phase 2: one parallel wave of session + element fetches
    # ------------------------------------------------------------------

    def _fetch_phase(self, plans: List[_ObjectPlan]) -> None:
        proxy = self.proxy
        checker = proxy.checker
        identity_needed = len(checker.trust_store) > 0 or proxy.require_identity
        calls: List[BatchCall] = []
        seen_elements = set()
        for plan in plans:
            if plan.error is not None or plan.oid is None or not plan.addresses:
                continue
            address = plan.addresses[0]
            base = {"replica_id": address.replica_id}
            if plan.establish_needed:
                calls.append(BatchCall(address, "globedoc.get_public_key", base))
                if identity_needed:
                    calls.append(
                        BatchCall(address, "globedoc.get_identity_certificates", base)
                    )
                calls.append(
                    BatchCall(address, "globedoc.get_integrity_certificate", base)
                )
            cache = proxy.content_cache
            for element in self._elements_for(plan):
                if (plan.oid.hex, element) in seen_elements:
                    continue
                seen_elements.add((plan.oid.hex, element))
                if cache is not None and cache.contains(plan.oid.hex, element):
                    continue  # replay serves it from the content cache
                calls.append(
                    BatchCall(
                        plan.addresses[0],
                        "globedoc.get_element",
                        dict(base, name=element),
                    )
                )
        if calls:
            self.prefetcher.prefetch(calls, window=self.config.window)

    def _elements_for(self, plan: _ObjectPlan) -> List[str]:
        """Every element of *plan*'s object requested in this batch."""
        return plan.elements if plan.elements else [plan.url.element_name]

    # ------------------------------------------------------------------
    # Phase 3: batched verification of prefetched certificates
    # ------------------------------------------------------------------

    def _verify_phase(self, plans: List[_ObjectPlan]) -> None:
        checker = self.proxy.checker
        if checker.verification_cache is None:
            return
        pairs = []
        for plan in plans:
            if (
                plan.error is not None
                or not plan.establish_needed
                or not plan.addresses
            ):
                continue
            address = plan.addresses[0]
            der = self.prefetcher.peek(
                address, "globedoc.get_public_key", replica_id=address.replica_id
            )
            raw = self.prefetcher.peek(
                address,
                "globedoc.get_integrity_certificate",
                replica_id=address.replica_id,
            )
            if der is None or raw is None:
                continue
            try:
                key = PublicKey(der=bytes(der))
                integrity = IntegrityCertificate.from_dict(raw)
            except Exception:
                # Malformed prefetched data: let the replay's real check
                # reject it with the proper error in the proper context.
                continue
            pairs.append((key, integrity))
        if pairs:
            checker.prewarm_certificates(pairs)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _session_key(self, url: HybridUrl) -> str:
        return url.oid.hex if url.oid is not None else str(url.object_name)

    def _live_session(self, key: str):
        proxy = self.proxy
        session = proxy._sessions.get(key)
        if session is None:
            return None
        if (
            proxy.session_ttl is not None
            and proxy.checker.clock.now() - proxy._session_created.get(key, 0.0)
            > proxy.session_ttl
        ):
            return None
        return session

    def _run_parallel(self, thunks: List[Callable[[], None]]) -> None:
        """Run *thunks* concurrently: simulated branches under a
        :class:`~repro.sim.clock.SimClock`, real threads otherwise.
        Thunks must capture their own exceptions."""
        if not thunks:
            return
        clock = self.proxy.checker.clock
        parallel = getattr(clock, "parallel", None)
        if len(thunks) == 1:
            thunks[0]()
            return
        if parallel is not None:
            with parallel() as region:
                for thunk in thunks:
                    with region.branch():
                        thunk()
            return
        threads = [threading.Thread(target=thunk, daemon=True) for thunk in thunks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
