"""Timing decomposition of a GlobeDoc access (§4, Fig. 4).

The paper "placed timers in various parts of the proxy and server code,
and measured, for each object access, the amount of time dedicated to
security-specific operations". :class:`AccessTimer` is those timers: a
phase-labelled stopwatch over the injected clock. Phases named in
:data:`SECURITY_PHASES` count toward security overhead; everything else
is base cost (name resolution, location lookup, element transfer).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.clock import Clock

__all__ = [
    "AccessTimer",
    "AccessMetrics",
    "FastPathStats",
    "ResilienceStats",
    "SECURITY_PHASES",
]

#: The security-specific operations enumerated in §4's methodology.
SECURITY_PHASES = frozenset(
    {
        "get_public_key",
        "verify_public_key",
        "get_identity_proofs",
        "verify_identity_proofs",
        "get_integrity_certificate",
        "verify_certificate",
        "verify_element_hash",
        "check_freshness",
        "check_consistency",
    }
)


@dataclass(frozen=True)
class FastPathStats:
    """Verification fast-path counters attributed to one access.

    ``verify_hits``/``verify_misses`` count signature-verification cache
    lookups, ``encode_hits``/``encode_misses`` count canonical-encoding
    memo lookups, and ``saved_us`` is the real RSA compute (in
    microseconds) that cache hits avoided.
    """

    verify_hits: int = 0
    verify_misses: int = 0
    encode_hits: int = 0
    encode_misses: int = 0
    saved_us: float = 0.0

    def __add__(self, other: "FastPathStats") -> "FastPathStats":
        return FastPathStats(
            verify_hits=self.verify_hits + other.verify_hits,
            verify_misses=self.verify_misses + other.verify_misses,
            encode_hits=self.encode_hits + other.encode_hits,
            encode_misses=self.encode_misses + other.encode_misses,
            saved_us=self.saved_us + other.saved_us,
        )

    @property
    def verify_hit_rate(self) -> float:
        total = self.verify_hits + self.verify_misses
        return self.verify_hits / total if total else 0.0


@dataclass(frozen=True)
class ResilienceStats:
    """Resilience-layer work attributed to one access.

    ``retries`` counts re-issued RPC attempts, ``failovers`` counts
    rebinds to a different replica, ``quarantines`` counts circuit
    breakers opened, and ``backoff_seconds`` is clock time spent waiting
    between attempts (charged to the simulation under a SimClock).
    """

    retries: int = 0
    failovers: int = 0
    quarantines: int = 0
    backoff_seconds: float = 0.0

    def __add__(self, other: "ResilienceStats") -> "ResilienceStats":
        return ResilienceStats(
            retries=self.retries + other.retries,
            failovers=self.failovers + other.failovers,
            quarantines=self.quarantines + other.quarantines,
            backoff_seconds=self.backoff_seconds + other.backoff_seconds,
        )

    @property
    def any_degradation(self) -> bool:
        """Whether this access needed the resilience layer at all."""
        return bool(self.retries or self.failovers or self.quarantines)


@dataclass(frozen=True)
class AccessMetrics:
    """The measured decomposition of one object access."""

    phases: Tuple[Tuple[str, float], ...]
    fastpath: Optional[FastPathStats] = None
    resilience: Optional[ResilienceStats] = None

    @property
    def total(self) -> float:
        return sum(t for _, t in self.phases)

    @property
    def security_time(self) -> float:
        return sum(t for name, t in self.phases if name in SECURITY_PHASES)

    @property
    def base_time(self) -> float:
        return self.total - self.security_time

    @property
    def overhead_fraction(self) -> float:
        """Security time as a fraction of the total access time (Fig. 4's
        y-axis, as a 0–1 fraction)."""
        total = self.total
        return self.security_time / total if total > 0 else 0.0

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_fraction

    def phase_time(self, name: str) -> float:
        return sum(t for n, t in self.phases if n == name)

    def by_phase(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, t in self.phases:
            out[name] = out.get(name, 0.0) + t
        return out

    def merged_with(self, other: "AccessMetrics") -> "AccessMetrics":
        """Concatenate two measurements (multi-element accesses)."""
        if self.fastpath is None:
            fastpath = other.fastpath
        elif other.fastpath is None:
            fastpath = self.fastpath
        else:
            fastpath = self.fastpath + other.fastpath
        if self.resilience is None:
            resilience = other.resilience
        elif other.resilience is None:
            resilience = self.resilience
        else:
            resilience = self.resilience + other.resilience
        return AccessMetrics(
            phases=self.phases + other.phases,
            fastpath=fastpath,
            resilience=resilience,
        )


class AccessTimer:
    """Phase-labelled stopwatch over an injected clock.

    Usage::

        timer = AccessTimer(clock)
        with timer.phase("resolve_name"):
            resolver.resolve(name)
        metrics = timer.finish()
    """

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._phases: List[Tuple[str, float]] = []
        self._fastpath: Optional[FastPathStats] = None
        self._resilience: Optional[ResilienceStats] = None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = self.clock.now()
        try:
            yield
        finally:
            self._phases.append((name, self.clock.now() - start))

    def charge(self, name: str, seconds: float) -> None:
        """Record a phase duration directly (fixed modelled costs)."""
        if seconds < 0:
            raise ValueError(f"phase duration must be non-negative: {seconds}")
        self._phases.append((name, seconds))

    def record_fastpath(self, stats: FastPathStats) -> None:
        """Accumulate verification fast-path counters for this access."""
        self._fastpath = stats if self._fastpath is None else self._fastpath + stats

    def record_resilience(self, stats: ResilienceStats) -> None:
        """Accumulate retry/failover/quarantine counters for this access."""
        self._resilience = (
            stats if self._resilience is None else self._resilience + stats
        )

    def finish(self) -> AccessMetrics:
        return AccessMetrics(
            phases=tuple(self._phases),
            fastpath=self._fastpath,
            resilience=self._resilience,
        )
