"""The naming service: the network-facing resolver over signed zones.

``NameService`` hosts a forest of signed zones behind an RPC interface;
``SecureResolver`` is the client side, performing iterative resolution
from the root and validating the DNSsec chain against its trust anchor.
Resolution results are cached per record TTL (the caching DNS makes
efficient — possible here precisely because records are
location-independent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.crypto.keys import PublicKey
from repro.errors import NameNotFound, NamingError, ZoneValidationError
from repro.globedoc.oid import ObjectId
from repro.naming.dnssec import ChainValidator, DelegationRecord, SignedOidRecord, SignedZone
from repro.naming.forwarding import ForwardingRecord
from repro.naming.records import normalize_name
from repro.net.rpc import RpcClient, RpcServer, rpc_method
from repro.sim.clock import Clock, RealClock

__all__ = ["NameService", "SecureResolver", "ResolutionResult"]


@dataclass(frozen=True)
class ResolutionResult:
    """A validated name resolution: the OID plus chain metadata."""

    name: str
    oid: ObjectId
    ttl: float
    chain_length: int
    from_cache: bool = False


class NameService:
    """Server side: holds signed zones and answers resolution queries.

    The query model is single-shot: the server walks its own delegation
    chain and returns the full proof (chain + signed record) in one
    response, like a validating recursive resolver returning RRSIGs.
    """

    def __init__(self, root_zone: SignedZone) -> None:
        if root_zone.zone_path != "":
            raise NamingError("the root zone must have the empty path")
        self.root = root_zone
        self._zones: Dict[str, SignedZone] = {"": root_zone}
        #: OID forwarding records (re-keyed objects): old OID hex → record.
        self._forwardings: Dict[str, ForwardingRecord] = {}
        #: Durable-journal hook (set by DurableNamingStore.bind): called
        #: with one dict per accepted mutation, after it succeeded.
        self.journal = None

    def add_zone(self, zone: SignedZone, parent: Optional[SignedZone] = None) -> None:
        """Attach *zone*, delegating from *parent* (default: its natural
        parent, which must already be attached)."""
        if parent is None:
            parent_path = zone.zone_path.rpartition("/")[0]
            parent = self._zones.get(parent_path)
            if parent is None:
                raise NamingError(
                    f"parent zone {parent_path!r} not attached for {zone.zone_path!r}"
                )
        parent.delegate(zone)
        self._zones[zone.zone_path] = zone

    def zone(self, path: str) -> SignedZone:
        try:
            return self._zones[path]
        except KeyError:
            raise NameNotFound(f"no such zone: {path!r}") from None

    @property
    def root_key(self) -> PublicKey:
        """The trust anchor clients must be configured with."""
        return self.root.public_key

    def register(self, record) -> None:
        """Publish a record in the deepest attached zone covering it."""
        zone = self._authoritative_zone(record.name)
        zone.add_record(record)
        if self.journal is not None:
            self.journal({"op": "record", "record": record.to_dict()})

    def register_forwarding(self, record: ForwardingRecord) -> None:
        """Publish an old-OID → successor-OID forwarding record.

        The record is verified before acceptance (self-certifying: the
        signing key must hash to the old OID), so the naming service
        never stores a forward the old key did not authorise.
        """
        record.verify()
        self._forwardings[record.from_oid.hex] = record
        if self.journal is not None:
            self.journal({"op": "forward", "record": record.to_dict()})

    def _authoritative_zone(self, name: str) -> SignedZone:
        zone = self.root
        while True:
            child_path = zone.delegation_for(name)
            if child_path is None or child_path not in self._zones:
                return zone
            zone = self._zones[child_path]

    # ------------------------------------------------------------------
    # RPC interface
    # ------------------------------------------------------------------

    @rpc_method("naming.resolve")
    def resolve_with_proof(self, name: str) -> dict:
        """Walk the chain for *name*; return delegations + signed record."""
        name = normalize_name(name)
        chain: List[DelegationRecord] = []
        zone = self.root
        while True:
            child_path = zone.delegation_for(name)
            if child_path is None or child_path not in self._zones:
                break
            chain.append(zone.delegation_record(child_path))
            zone = self._zones[child_path]
        signed = zone.signed_lookup(name)  # raises NameNotFound
        return {
            "chain": [link.to_dict() for link in chain],
            "record": signed.to_dict(),
        }

    @rpc_method("naming.resolve_step")
    def resolve_step(self, name: str, zone_path: str) -> dict:
        """One iterative-resolution step (real-DNS style, one RTT per
        zone level): from *zone_path*, return either the delegation one
        level closer to the answer or the signed record itself."""
        name = normalize_name(name)
        zone = self.zone(zone_path)
        child_path = zone.delegation_for(name)
        if child_path is not None and child_path in self._zones:
            return {
                "delegation": zone.delegation_record(child_path).to_dict(),
                "next_zone": child_path,
            }
        return {"record": zone.signed_lookup(name).to_dict()}

    @rpc_method("naming.forward")
    def forward_for(self, oid_hex: str) -> dict:
        """The forwarding record for a (re-keyed) OID, if any."""
        record = self._forwardings.get(str(oid_hex))
        if record is None:
            raise NameNotFound(f"no forwarding record for OID {str(oid_hex)[:12]}…")
        return {"record": record.to_dict()}

    def rpc_server(self, tracer=None) -> RpcServer:
        """An RPC server exposing this service's operations."""
        server = RpcServer(name="naming", tracer=tracer)
        server.register_object(self)
        return server


class SecureResolver:
    """Client side: queries a NameService endpoint and validates the proof.

    ``trust_anchor`` is the root zone key, obtained out of band (like a
    DNSsec root key). Without it, no answer is accepted.
    """

    def __init__(
        self,
        client: RpcClient,
        service_target,
        trust_anchor: PublicKey,
        clock: Optional[Clock] = None,
        iterative: bool = True,
        max_depth: int = 16,
    ) -> None:
        self.client = client
        self.target = service_target
        self.validator = ChainValidator(trust_anchor, clock=clock)
        self.clock = clock if clock is not None else RealClock()
        self.iterative = iterative
        self.max_depth = max_depth
        self._cache: Dict[str, Tuple[float, ResolutionResult]] = {}

    def resolve(self, name: str) -> ResolutionResult:
        """Resolve *name* to a validated OID (cached per record TTL).

        In the default *iterative* mode the resolver issues one query per
        zone level (root → … → authoritative), paying one round trip
        each, exactly like an uncached DNS resolution; ``iterative=False``
        fetches the whole proof in a single query.
        """
        name = normalize_name(name)
        cached = self._cache.get(name)
        if cached is not None:
            expires, result = cached
            if self.clock.now() < expires:
                return ResolutionResult(
                    name=result.name,
                    oid=result.oid,
                    ttl=result.ttl,
                    chain_length=result.chain_length,
                    from_cache=True,
                )
            del self._cache[name]
        if self.iterative:
            answer = self._resolve_iteratively(name)
        else:
            answer = self.client.call(self.target, "naming.resolve", name=name)
        record = self._validate_answer(answer)
        result = ResolutionResult(
            name=record.name,
            oid=record.oid,
            ttl=record.ttl,
            chain_length=len(answer.get("chain", [])),
        )
        self._cache[name] = (self.clock.now() + record.ttl, result)
        return result

    def _resolve_iteratively(self, name: str) -> dict:
        """Walk zone by zone, collecting the delegation chain."""
        chain: list = []
        zone_path = ""
        for _ in range(self.max_depth):
            step = self.client.call(
                self.target, "naming.resolve_step", name=name, zone_path=zone_path
            )
            if "record" in step:
                return {"chain": chain, "record": step["record"]}
            chain.append(step["delegation"])
            zone_path = str(step["next_zone"])
        raise ZoneValidationError(
            f"delegation chain for {name!r} exceeds max depth {self.max_depth}"
        )

    def _validate_answer(self, answer: Mapping[str, Any]):
        if not isinstance(answer, Mapping) or "record" not in answer:
            raise ZoneValidationError("malformed naming response")
        chain = [DelegationRecord.from_dict(d) for d in answer.get("chain", [])]
        signed = SignedOidRecord.from_dict(answer["record"])
        return self.validator.validate(chain, signed)

    def resolve_forward(self, oid: ObjectId) -> Optional[ForwardingRecord]:
        """The validated forwarding record for *oid*, or None.

        The naming service is untrusted, so the record is re-validated
        here: it must verify self-certifyingly AND actually be about
        *oid* — a service answering with someone else's (valid) record
        is caught, not followed.
        """
        try:
            answer = self.client.call(self.target, "naming.forward", oid_hex=oid.hex)
        except NameNotFound:
            return None
        if not isinstance(answer, Mapping) or "record" not in answer:
            raise ZoneValidationError("malformed forwarding response")
        record = ForwardingRecord.from_dict(answer["record"])
        record.verify()
        if record.from_oid.hex != oid.hex:
            raise ZoneValidationError(
                f"forwarding record is for {record.from_oid.hex[:12]}…, "
                f"not the requested {oid.hex[:12]}…"
            )
        return record

    def flush_cache(self) -> None:
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        return len(self._cache)
