"""Secure naming (§2.1.1, §3.1).

Maps human-readable object names onto self-certifying OIDs through a
DNSsec-like hierarchy of signed zones. Crucially, the records are
**location independent** — they hold OIDs, never replica addresses —
which is what lets massively replicated objects change addresses without
churning the name system (the paper's scalability argument against
storing IPs in DNSsec).
"""

from repro.naming.records import OidRecord, RECORD_TYPE_OID
from repro.naming.zone import Zone, ZoneKeys
from repro.naming.dnssec import SignedZone, ChainValidator, DelegationRecord
from repro.naming.service import NameService, SecureResolver

__all__ = [
    "OidRecord",
    "RECORD_TYPE_OID",
    "Zone",
    "ZoneKeys",
    "SignedZone",
    "ChainValidator",
    "DelegationRecord",
    "NameService",
    "SecureResolver",
]
