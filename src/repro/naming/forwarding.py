"""Signed OID forwarding records (re-keying support).

An OID is the hash of the object's public key, so re-keying an object
necessarily mints a *new* OID — and orphans every absolute hybrid URL
carrying the old one. A forwarding record closes the gap: a statement
"``from_oid`` has moved to ``to_oid``", signed with the **old** key and
therefore self-certifying against the old OID, published through the
naming service next to ordinary name records.

Trust note: the old key is, in the emergency-re-key case, *compromised*
— so an attacker holding it could publish a competing forwarding record
pointing at an attacker OID. That is exactly as strong as the attack the
revocation subsystem already contains: the successor object named by a
forwarding record is verified end-to-end like any other GlobeDoc (its
own key hashes to ``to_oid``), so a hijacked forward can redirect stale
URLs only to a *fully verified, attacker-owned* object — the same power
as publishing any new document — never inject content into the victim's
name. Human-readable names re-bind to the successor OID through the
(independently keyed) naming service and are untouched by old-key
compromise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import AuthenticityError, CertificateError
from repro.globedoc.oid import ObjectId

__all__ = ["ForwardingRecord", "FORWARDING_CERT_TYPE"]

FORWARDING_CERT_TYPE = "naming/forwarding"


@dataclass(frozen=True)
class ForwardingRecord:
    """A signed ``old OID → successor OID`` redirection."""

    certificate: Certificate

    @classmethod
    def issue(
        cls,
        old_keys: KeyPair,
        from_oid: ObjectId,
        to_oid: ObjectId,
        issued_at: float,
        suite: HashSuite = SHA1,
    ) -> "ForwardingRecord":
        if not from_oid.matches_key(old_keys.public):
            raise AuthenticityError(
                "forwarding record must be signed by the key the old OID "
                "self-certifies"
            )
        if from_oid.hex == to_oid.hex:
            raise CertificateError("forwarding record cannot point at itself")
        body = {
            "from_oid": from_oid.to_dict(),
            "to_oid": to_oid.to_dict(),
            "issued_at": float(issued_at),
            "issuer_key_der": old_keys.public.der,
        }
        return cls(
            Certificate.issue(
                old_keys, FORWARDING_CERT_TYPE, body, not_before=issued_at, suite=suite
            )
        )

    @property
    def from_oid(self) -> ObjectId:
        return ObjectId.from_dict(self.certificate.body["from_oid"])

    @property
    def to_oid(self) -> ObjectId:
        return ObjectId.from_dict(self.certificate.body["to_oid"])

    @property
    def issued_at(self) -> float:
        return float(self.certificate.body["issued_at"])

    @property
    def issuer_key(self) -> PublicKey:
        return PublicKey(der=bytes(self.certificate.body["issuer_key_der"]))

    def verify(self, cache=None) -> "ForwardingRecord":
        """Self-certifying validation: embedded key hashes to the old
        OID and signs the record. Returns self; raises on failure."""
        from_oid = self.from_oid
        issuer_key = self.issuer_key
        if not from_oid.matches_key(issuer_key):
            raise AuthenticityError(
                f"forwarding record for {from_oid.hex[:12]}… embeds a key "
                "that does not hash to that OID"
            )
        self.certificate.verify(
            issuer_key, clock=None, expected_type=FORWARDING_CERT_TYPE, cache=cache
        )
        if self.from_oid.hex == self.to_oid.hex:
            raise CertificateError("forwarding record points at itself")
        return self

    def to_dict(self) -> dict:
        return self.certificate.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ForwardingRecord":
        return cls(Certificate.from_dict(data))
