"""Durable backend for the naming service: records + forwarding pointers.

Zones and their keys are the administrator's configuration (constructed
at service start, like a DNSsec key ceremony); what must survive a
restart is the *published data*: name → OID records and the
old-OID → successor forwarding pointers minted by emergency re-keying.
Losing a forwarding pointer strands every client holding the old OID —
a silent availability failure the paper's re-keying design does not
tolerate.

Recovery discipline: OID records are re-registered through the normal
path, so the recovering zone re-signs each one with its live key (a
restarted service never serves stale signatures). Forwarding records
are *self-certifying* — recovery re-runs ``record.verify()`` and fails
closed (:class:`~repro.errors.RecoveryIntegrityError`) on any record
whose signature no longer proves the old key authorised the forward:
a tampered store must not redirect clients to an attacker's OID.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import RecoveryIntegrityError, ReproError
from repro.naming.forwarding import ForwardingRecord
from repro.naming.records import OidRecord
from repro.storage.store import DurableStore

__all__ = ["DurableNamingStore"]


class DurableNamingStore:
    """Journals a :class:`~repro.naming.service.NameService`'s published
    records and replays them (verified) into a fresh service."""

    def __init__(
        self, directory, sync: bool = True, compact_every: Optional[int] = 128
    ) -> None:
        self.store = DurableStore(directory, sync=sync, compact_every=compact_every)
        #: Reduced view for snapshots: name → record dict, oid → forward.
        self._records: Dict[str, dict] = {}
        self._forwards: Dict[str, dict] = {}
        self.recovered_records = 0
        self.recovered_forwards = 0

    def bind(self, service) -> None:
        """Replay persisted state into *service*, then journal through it.

        Call after the service's zones are attached (records re-register
        into the authoritative zone, which must exist to re-sign them).
        """
        recovered = self.store.recover()
        if recovered.snapshot is not None:
            for data in recovered.snapshot.get("records", []):
                self._records[str(data["name"])] = dict(data)
            for data in recovered.snapshot.get("forwards", []):
                self._forwards[self._forward_key(data)] = dict(data)
        for record in recovered.records:
            self._reduce(record)
        for data in self._records.values():
            try:
                service.register(OidRecord.from_dict(data))
            except ReproError as exc:
                raise RecoveryIntegrityError(
                    f"recovered naming record {data.get('name')!r} was "
                    f"refused by the live zone: {exc}"
                ) from exc
            self.recovered_records += 1
        for data in self._forwards.values():
            try:
                # register_forwarding re-runs record.verify(): the
                # self-certifying signature is the integrity check.
                service.register_forwarding(ForwardingRecord.from_dict(data))
            except ReproError as exc:
                raise RecoveryIntegrityError(
                    "recovered forwarding record no longer verifies — "
                    f"refusing to follow a tampered redirect: {exc}"
                ) from exc
            self.recovered_forwards += 1
        # Hook in *after* replay so recovery does not re-journal itself.
        service.journal = self._journal

    @staticmethod
    def _forward_key(data: dict) -> str:
        """The old-OID hex a forwarding wire dict redirects from."""
        try:
            return ForwardingRecord.from_dict(data).from_oid.hex
        except Exception as exc:
            raise RecoveryIntegrityError(
                f"forwarding record in the naming store does not decode: {exc}"
            ) from exc

    def _reduce(self, record: dict) -> None:
        op = record.get("op")
        if op == "record":
            data = dict(record["record"])
            self._records[str(data["name"])] = data
        elif op == "forward":
            data = dict(record["record"])
            self._forwards[self._forward_key(data)] = data
        else:
            raise RecoveryIntegrityError(
                f"naming journal holds an unknown operation {op!r}"
            )

    def _journal(self, record: dict) -> None:
        self._reduce(record)
        self.store.append(record)
        self.store.maybe_compact(self._snapshot_state)

    def _snapshot_state(self) -> dict:
        return {
            "records": [self._records[name] for name in sorted(self._records)],
            "forwards": [self._forwards[key] for key in sorted(self._forwards)],
        }

    def compact(self) -> None:
        self.store.compact(self._snapshot_state())

    def close(self) -> None:
        self.store.close()
