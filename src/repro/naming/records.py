"""Naming-service resource records.

Per §3.1.2, DNSsec resource records are extended to carry self-certifying
OIDs instead of IP addresses. A record binds one fully qualified object
name to one OID (an object may have *several* names resolving to the
same OID — the converse never holds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.errors import NamingError
from repro.globedoc.oid import ObjectId

__all__ = ["OidRecord", "RECORD_TYPE_OID", "normalize_name", "split_name", "parent_zone"]

RECORD_TYPE_OID = "GLOBE-OID"

_MAX_NAME = 255


def normalize_name(name: str) -> str:
    """Normalise an object name: lowercase, no leading/trailing slashes.

    Object names are path-like (``vu.nl/research/report``): the first
    segment is DNS-ish and lowercased; path segments are kept verbatim
    apart from slash trimming.
    """
    if not isinstance(name, str) or not name.strip():
        raise NamingError("object name must be a non-empty string")
    cleaned = name.strip().strip("/")
    if not cleaned or len(cleaned) > _MAX_NAME:
        raise NamingError(f"invalid object name: {name!r}")
    head, _, rest = cleaned.partition("/")
    head = head.lower()
    if not head:
        raise NamingError(f"invalid object name: {name!r}")
    return head + ("/" + rest if rest else "")


def split_name(name: str) -> list:
    """Split a normalised name into zone labels, most-significant first.

    ``vu.nl/research/report`` → ``["nl", "vu", "research", "report"]``:
    the DNS part reverses (hierarchy is right-to-left), the path part
    appends in order.
    """
    normalized = normalize_name(name)
    head, _, rest = normalized.partition("/")
    labels = list(reversed(head.split(".")))
    if rest:
        labels.extend(rest.split("/"))
    return labels


def parent_zone(zone: str) -> Optional[str]:
    """The enclosing zone of *zone* (``"nl/vu"`` → ``"nl"``), None at root."""
    if not zone:
        return None
    head, _, _ = zone.rpartition("/")
    return head  # "" means the root zone


@dataclass(frozen=True)
class OidRecord:
    """One name → OID binding, with a TTL for resolver caching."""

    name: str
    oid: ObjectId
    ttl: float = 3600.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.ttl <= 0:
            raise NamingError(f"record TTL must be positive, got {self.ttl}")

    @property
    def record_type(self) -> str:
        return RECORD_TYPE_OID

    def to_dict(self) -> dict:
        return {
            "type": RECORD_TYPE_OID,
            "name": self.name,
            "oid": self.oid.to_dict(),
            "ttl": self.ttl,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OidRecord":
        if data.get("type") != RECORD_TYPE_OID:
            raise NamingError(f"not an OID record: {data.get('type')!r}")
        return cls(
            name=str(data["name"]),
            oid=ObjectId.from_dict(data["oid"]),
            ttl=float(data.get("ttl", 3600.0)),
        )
