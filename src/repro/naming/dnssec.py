"""DNSsec-style zone signing and chain-of-trust validation (§3.1).

Each zone signs (a) its OID records and (b) *delegation records* binding
each child zone's name to the child's public key — the analogue of DS
records. A resolver holding only the root zone's public key (the trust
anchor) can validate any record by walking the delegation chain, which
is exactly how the paper proposes storing self-certifying OIDs in
DNSsec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import NameNotFound, ZoneValidationError
from repro.naming.records import OidRecord, normalize_name
from repro.naming.zone import Zone, ZoneKeys
from repro.sim.clock import Clock

__all__ = ["SignedZone", "DelegationRecord", "ChainValidator"]

OID_RECORD_CERT = "naming/oid-record"
DELEGATION_CERT = "naming/delegation"


@dataclass(frozen=True)
class DelegationRecord:
    """A signed statement: child zone *path* is keyed by *child_key*."""

    certificate: Certificate

    @classmethod
    def issue(
        cls,
        parent_keys: KeyPair,
        child_path: str,
        child_key: PublicKey,
        suite: HashSuite = SHA1,
        not_after: Optional[float] = None,
    ) -> "DelegationRecord":
        body = {"child_zone": child_path, "child_key_der": child_key.der}
        return cls(
            Certificate.issue(
                parent_keys, DELEGATION_CERT, body, not_after=not_after, suite=suite
            )
        )

    @property
    def child_zone(self) -> str:
        return str(self.certificate.body["child_zone"])

    @property
    def child_key(self) -> PublicKey:
        return PublicKey(der=bytes(self.certificate.body["child_key_der"]))

    def verify(self, parent_key: PublicKey, clock: Optional[Clock] = None) -> PublicKey:
        try:
            self.certificate.verify(parent_key, clock=clock, expected_type=DELEGATION_CERT)
        except Exception as exc:
            raise ZoneValidationError(
                f"delegation to {self.child_zone!r} failed to validate: {exc}"
            ) from exc
        return self.child_key

    def to_dict(self) -> dict:
        return self.certificate.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DelegationRecord":
        return cls(Certificate.from_dict(data))


@dataclass(frozen=True)
class SignedOidRecord:
    """An OID record wrapped in a zone-signed certificate."""

    certificate: Certificate

    @classmethod
    def issue(
        cls,
        zone_keys: KeyPair,
        record: OidRecord,
        suite: HashSuite = SHA1,
        not_after: Optional[float] = None,
    ) -> "SignedOidRecord":
        return cls(
            Certificate.issue(
                zone_keys, OID_RECORD_CERT, record.to_dict(), not_after=not_after, suite=suite
            )
        )

    @property
    def record(self) -> OidRecord:
        return OidRecord.from_dict(self.certificate.body)

    def verify(self, zone_key: PublicKey, clock: Optional[Clock] = None) -> OidRecord:
        try:
            self.certificate.verify(zone_key, clock=clock, expected_type=OID_RECORD_CERT)
        except Exception as exc:
            raise ZoneValidationError(f"signed record failed to validate: {exc}") from exc
        return self.record

    def to_dict(self) -> dict:
        return self.certificate.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SignedOidRecord":
        return cls(Certificate.from_dict(data))


class SignedZone:
    """A zone plus its key pair and signature material.

    Signing is incremental: adding a record signs just that record
    (unlike r-OSFS's whole-tree re-sign, and matching DNSsec RRSIGs).
    """

    def __init__(
        self,
        zone: Zone,
        keys: Optional[ZoneKeys] = None,
        suite: HashSuite = SHA1,
    ) -> None:
        self.zone = zone
        self.keys = keys if keys is not None else ZoneKeys(zone=zone.zone_path)
        self.suite = suite
        self._signed_records: Dict[str, SignedOidRecord] = {}
        self._delegation_records: Dict[str, DelegationRecord] = {}

    @property
    def zone_path(self) -> str:
        return self.zone.zone_path

    @property
    def public_key(self) -> PublicKey:
        return self.keys.public

    def add_record(self, record: OidRecord) -> SignedOidRecord:
        """Add and sign a name → OID binding."""
        self.zone.add_record(record)
        signed = SignedOidRecord.issue(self.keys.keys, record, suite=self.suite)
        self._signed_records[record.name] = signed
        return signed

    def delegate(self, child: "SignedZone") -> DelegationRecord:
        """Delegate to a signed child zone, issuing its DS-style record."""
        parent_path = self.zone_path
        child_path = child.zone_path
        prefix = f"{parent_path}/" if parent_path else ""
        if not child_path.startswith(prefix) or "/" in child_path[len(prefix):]:
            raise ZoneValidationError(
                f"{child_path!r} is not an immediate child of {parent_path!r}"
            )
        label = child_path[len(prefix):]
        self.zone.delegate(label)
        record = DelegationRecord.issue(
            self.keys.keys, child_path, child.public_key, suite=self.suite
        )
        self._delegation_records[child_path] = record
        return record

    def rotate_keys(self, new_keys: Optional[ZoneKeys] = None) -> "ZoneKeys":
        """Operational key rollover: replace this zone's key pair and
        re-sign everything it vouches for (its records and delegation
        records to its children). The *parent* must re-delegate with
        :meth:`delegate` afterwards — exactly the DS-record update a real
        DNSsec rollover requires; until then, resolvers validating
        through the old parent delegation will reject this zone's
        answers (fail-closed, tested)."""
        self.keys = new_keys if new_keys is not None else ZoneKeys(zone=self.zone_path)
        for name, signed in list(self._signed_records.items()):
            record = signed.record
            self._signed_records[name] = SignedOidRecord.issue(
                self.keys.keys, record, suite=self.suite
            )
        for child_path, record in list(self._delegation_records.items()):
            self._delegation_records[child_path] = DelegationRecord.issue(
                self.keys.keys, child_path, record.child_key, suite=self.suite
            )
        return self.keys

    def redelegate(self, child: "SignedZone") -> DelegationRecord:
        """Refresh the DS-style record for an existing child (e.g. after
        the child rotated its keys)."""
        if child.zone_path not in self._delegation_records:
            raise ZoneValidationError(
                f"{child.zone_path!r} is not a delegated child of {self.zone_path!r}"
            )
        record = DelegationRecord.issue(
            self.keys.keys, child.zone_path, child.public_key, suite=self.suite
        )
        self._delegation_records[child.zone_path] = record
        return record

    def signed_lookup(self, name: str) -> SignedOidRecord:
        """Authoritative signed answer for *name* (NameNotFound if absent)."""
        name = normalize_name(name)
        signed = self._signed_records.get(name)
        if signed is None:
            # Distinguish "delegated elsewhere" from "absent".
            self.zone.lookup(name)  # raises NameNotFound
            raise NameNotFound(f"record for {name!r} lost its signature")  # pragma: no cover
        return signed

    def delegation_record(self, child_path: str) -> DelegationRecord:
        record = self._delegation_records.get(child_path)
        if record is None:
            raise NameNotFound(f"no delegation record for zone {child_path!r}")
        return record

    def delegation_for(self, name: str) -> Optional[str]:
        return self.zone.delegation_for(name)


class ChainValidator:
    """Client-side validation of a delegation chain plus a signed record.

    The validator holds only the *trust anchor* (root zone key). Given
    the chain ``[delegation(nl), delegation(nl/vu)]`` and a signed
    record from ``nl/vu``, it checks each signature top-down and that
    the zone paths nest properly, then returns the validated record.
    """

    def __init__(self, root_key: PublicKey, clock: Optional[Clock] = None) -> None:
        self.root_key = root_key
        self.clock = clock

    def validate(
        self,
        chain: List[DelegationRecord],
        signed_record: SignedOidRecord,
    ) -> OidRecord:
        current_key = self.root_key
        current_zone = ""
        for link in chain:
            child_key = link.verify(current_key, clock=self.clock)
            child_zone = link.child_zone
            prefix = f"{current_zone}/" if current_zone else ""
            if not child_zone.startswith(prefix) or not child_zone[len(prefix):]:
                raise ZoneValidationError(
                    f"delegation chain broken: {child_zone!r} not under {current_zone!r}"
                )
            if "/" in child_zone[len(prefix):]:
                raise ZoneValidationError(
                    f"delegation skips levels: {child_zone!r} under {current_zone!r}"
                )
            current_key = child_key
            current_zone = child_zone
        return signed_record.verify(current_key, clock=self.clock)
