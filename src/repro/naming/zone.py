"""Zones: the units of authority in the name hierarchy.

A zone owns a contiguous region of the name tree (``"nl/vu"`` owns
``vu.nl/...`` names) and either answers for a name directly with an OID
record or delegates a sub-zone to a child authority. Mirrors DNS zones
with DNSsec-style key pairs per zone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import NameNotFound, NamingError
from repro.naming.records import OidRecord, normalize_name, split_name

__all__ = ["Zone", "ZoneKeys", "zone_of_labels"]


def zone_of_labels(labels: List[str]) -> str:
    """Join hierarchy labels into a zone path (``["nl","vu"]`` → ``"nl/vu"``)."""
    return "/".join(labels)


@dataclass
class ZoneKeys:
    """The signing key pair of one zone authority."""

    zone: str
    keys: KeyPair = field(default_factory=KeyPair.generate)

    @property
    def public(self) -> PublicKey:
        return self.keys.public


class Zone:
    """An unsigned zone: records plus delegations.

    ``zone_path`` uses hierarchy labels joined by ``/`` with the most
    significant first: the root zone is ``""``, ``"nl"`` under it,
    ``"nl/vu"`` under that. A name belongs to the deepest zone whose
    path is a prefix of the name's label list.
    """

    def __init__(self, zone_path: str) -> None:
        self.zone_path = zone_path
        self._records: Dict[str, OidRecord] = {}
        self._delegations: Dict[str, str] = {}  # child label -> child zone path

    def _check_authority(self, name: str) -> List[str]:
        labels = split_name(name)
        prefix = self.zone_path.split("/") if self.zone_path else []
        if labels[: len(prefix)] != prefix:
            raise NamingError(
                f"zone {self.zone_path!r} is not authoritative for {name!r}"
            )
        return labels

    def add_record(self, record: OidRecord) -> None:
        """Publish a name → OID binding in this zone."""
        self._check_authority(record.name)
        self._records[record.name] = record

    def remove_record(self, name: str) -> None:
        name = normalize_name(name)
        if name not in self._records:
            raise NameNotFound(f"no record for {name!r} in zone {self.zone_path!r}")
        del self._records[name]

    def delegate(self, child_label: str) -> str:
        """Delegate the *child_label* sub-zone; returns the child path."""
        if not child_label or "/" in child_label:
            raise NamingError(f"invalid delegation label: {child_label!r}")
        child_path = (
            f"{self.zone_path}/{child_label}" if self.zone_path else child_label
        )
        self._delegations[child_label] = child_path
        return child_path

    def lookup(self, name: str) -> OidRecord:
        """Authoritative lookup within this zone only."""
        name = normalize_name(name)
        record = self._records.get(name)
        if record is None:
            raise NameNotFound(f"no record for {name!r} in zone {self.zone_path!r}")
        return record

    def delegation_for(self, name: str) -> Optional[str]:
        """If *name* falls under a delegated child, its zone path."""
        labels = self._check_authority(name)
        depth = len(self.zone_path.split("/")) if self.zone_path else 0
        if len(labels) <= depth:
            return None
        child = labels[depth]
        return self._delegations.get(child)

    @property
    def records(self) -> List[OidRecord]:
        return [self._records[k] for k in sorted(self._records)]

    @property
    def delegations(self) -> Dict[str, str]:
        return dict(self._delegations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Zone({self.zone_path!r}, {len(self._records)} records, "
            f"{len(self._delegations)} delegations)"
        )
