"""Seeded random-number helpers.

All stochastic pieces (workload generation, jittered link latency, Zipf
request traces) draw from generators created here, so every experiment
run is reproducible from a single integer seed.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

__all__ = ["make_rng", "derive_seed"]

_DEFAULT_SEED = 0x610BED0C  # "GlobeDoc"


def make_rng(seed: Optional[Union[int, np.random.Generator]] = None) -> np.random.Generator:
    """Return a NumPy ``Generator``.

    Accepts ``None`` (library default seed — deterministic), an integer
    seed, or an existing generator (returned unchanged so call sites can
    thread one RNG through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def _stable_hash(label: Union[int, str]) -> int:
    """A process-independent 32-bit hash (Python's ``hash`` is salted)."""
    if isinstance(label, int):
        return label & 0xFFFFFFFF
    return zlib.crc32(str(label).encode("utf-8"))


def derive_seed(base: int, *labels: Union[int, str]) -> int:
    """Derive a child seed from *base* and a sequence of labels.

    Lets independent subsystems (e.g. per-host latency jitter and the
    request trace) get decorrelated streams from one experiment seed.
    Deterministic across processes and Python versions.
    """
    mix = np.random.SeedSequence(
        base, spawn_key=tuple(_stable_hash(label) for label in labels)
    )
    return int(mix.generate_state(1, dtype=np.uint64)[0])
