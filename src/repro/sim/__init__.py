"""Simulation kernel: injectable clocks, a discrete-event scheduler, RNG.

Everything in the library that needs "now" — freshness checks, transfer
timing, certificate validity — receives a :class:`~repro.sim.clock.Clock`
rather than calling ``time.time()``. This makes the security pipeline
deterministic under test and lets the experiment harness replay the
paper's WAN timings on a laptop.
"""

from repro.sim.clock import Clock, RealClock, SimClock
from repro.sim.events import Event, EventScheduler
from repro.sim.random import make_rng

__all__ = [
    "Clock",
    "RealClock",
    "SimClock",
    "Event",
    "EventScheduler",
    "make_rng",
]
