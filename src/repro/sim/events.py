"""A small discrete-event scheduler driving a :class:`SimClock`.

Used by the flash-crowd and replication experiments, where many clients
issue requests concurrently and the coordinator reacts to load. Events
fire in timestamp order; ties break in submission order so runs are
fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.clock import SimClock

__all__ = ["Event", "EventScheduler"]


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordering: (time, sequence number)."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        self.cancelled = True


class EventScheduler:
    """Priority-queue event loop over a :class:`SimClock`.

    Callbacks may schedule further events (at or after the current time),
    which is how request/response chains and periodic policies are built.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def at(self, when: float, action: Callable[[], None]) -> Event:
        """Schedule *action* at absolute simulated time *when*."""
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule event at {when} before current time {self.clock.now()}"
            )
        event = Event(time=when, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule *action* *delay* seconds from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.at(self.clock.now() + delay, action)

    def step(self) -> bool:
        """Run the next non-cancelled event. Returns False if queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.action()
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue, optionally stopping at time *until* or after
        *max_events* events. Returns the number of events executed."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            if not self.step():
                break
            executed += 1
        if until is not None and self.clock.now() < until:
            self.clock.advance_to(until)
        return executed
