"""Clock abstraction: real wall time or controllable simulated time.

Times are POSIX-style floats (seconds). ``SimClock`` only moves when the
simulation advances it, which is what makes freshness attacks testable:
a test can publish an element valid for 60 s, advance the clock 61 s,
and assert the proxy raises :class:`~repro.errors.FreshnessError`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable

__all__ = ["Clock", "RealClock", "SimClock", "ParallelRegion"]


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface used throughout the library."""

    def now(self) -> float:
        """Current time in seconds since the epoch (simulated or real)."""
        ...


class RealClock:
    """Wall-clock time; used by the TCP integration path and examples."""

    def now(self) -> float:
        return time.time()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "RealClock()"


class SimClock:
    """A clock that advances only under explicit control.

    The event scheduler advances it between events; model code advances
    it directly to account for compute or transfer time.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by *seconds* (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute *timestamp* (never backwards)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    @contextmanager
    def parallel(self) -> Iterator["ParallelRegion"]:
        """A region whose branches are charged max-of-parallel.

        Simulated concurrency: each :meth:`ParallelRegion.branch` runs
        with the clock rewound to the fork time, and when the region
        closes the clock lands at the *latest* branch end — overlapped
        work costs the slowest branch, not the sum. Regions nest (a
        branch may open its own inner region), so a pipelined scheduler
        can fan out waves inside waves.

        Usage::

            with clock.parallel() as region:
                for job in jobs:
                    with region.branch():
                        job()  # advances the clock branch-locally
        """
        region = ParallelRegion(self)
        try:
            yield region
        finally:
            region.close()


class ParallelRegion:
    """Bookkeeping for one :meth:`SimClock.parallel` region."""

    __slots__ = ("_clock", "_start", "_max_end", "_branch_open", "_closed")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now()
        self._max_end = self._start
        self._branch_open = False
        self._closed = False

    @contextmanager
    def branch(self) -> Iterator[None]:
        """One concurrent strand: starts at the fork time, and its end
        time only moves the region's high-water mark. Branches of one
        region must not overlap each other (they model strands the
        single-threaded simulation executes one after another)."""
        if self._closed:
            raise ValueError("cannot open a branch on a closed parallel region")
        if self._branch_open:
            raise ValueError("parallel branches cannot be nested in each other")
        self._branch_open = True
        self._clock._now = self._start
        try:
            yield
        finally:
            self._branch_open = False
            if self._clock._now > self._max_end:
                self._max_end = self._clock._now
            self._clock._now = self._start

    def close(self) -> None:
        """Commit the region: the clock jumps to the latest branch end."""
        if self._closed:
            return
        self._closed = True
        if self._max_end > self._clock._now:
            self._clock._now = self._max_end

    @property
    def elapsed(self) -> float:
        """Longest branch duration seen so far (charged on close)."""
        return self._max_end - self._start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelRegion(start={self._start}, max_end={self._max_end})"
