"""Clock abstraction: real wall time or controllable simulated time.

Times are POSIX-style floats (seconds). ``SimClock`` only moves when the
simulation advances it, which is what makes freshness attacks testable:
a test can publish an element valid for 60 s, advance the clock 61 s,
and assert the proxy raises :class:`~repro.errors.FreshnessError`.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "RealClock", "SimClock"]


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface used throughout the library."""

    def now(self) -> float:
        """Current time in seconds since the epoch (simulated or real)."""
        ...


class RealClock:
    """Wall-clock time; used by the TCP integration path and examples."""

    def now(self) -> float:
        return time.time()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "RealClock()"


class SimClock:
    """A clock that advances only under explicit control.

    The event scheduler advances it between events; model code advances
    it directly to account for compute or transfer time.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by *seconds* (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute *timestamp* (never backwards)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._now})"
