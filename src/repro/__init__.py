"""GlobeDoc — securely replicated Web documents.

A from-scratch Python reproduction of *"Securely Replicated Web
Documents"* (Popescu, Sacha, van Steen, Crispo, Tanenbaum, Kuz — Vrije
Universiteit Amsterdam, IPPS 2005): a Web-document object model that
combines data content, replication strategy, and security policy in one
distributed shared object, guaranteeing document integrity and secure
naming even when replicas live on untrusted hosts.

Quick tour (see ``examples/quickstart.py`` for the runnable version)::

    from repro.globedoc import DocumentOwner, PageElement
    from repro.harness import Testbed

    testbed = Testbed()                       # the paper's 4-host WAN
    owner = DocumentOwner("vu.nl/research")   # keys generated here
    owner.put_element(PageElement("index.html", b"<html>...</html>"))
    published = testbed.publish(owner)        # sign, place, register

    stack = testbed.client_stack("canardo.inria.fr")   # Paris client
    response = stack.proxy.handle(published.url("index.html"))
    assert response.ok                        # verified end to end

Package map:

=================  ====================================================
``repro.crypto``   keys, hashes, signatures, CAs, Merkle trees
``repro.globedoc`` the object model: elements, OIDs, integrity certs
``repro.naming``   DNSsec-style secure name service (name → OID)
``repro.location`` Globe location service (OID → contact addresses)
``repro.server``   object servers hosting replicas, admin + keystore
``repro.proxy``    the client proxy and its security pipeline
``repro.replication`` per-document strategies, coordinator, flash crowds,
                      hosting negotiation, replica auditing
``repro.dynamic``  §6 dynamic content: signed receipts, audit
``repro.baselines``   Apache/SSL/r-OSFS/Gemini comparators
``repro.attacks``  adversaries: tampering, replay, swap, lying services
``repro.net``      RPC + simulated WAN + real TCP transports
``repro.sim``      clocks, discrete events, seeded randomness
``repro.workloads`` the paper's objects, synthetic sites, traces
``repro.harness``  regenerates every table and figure of the paper
=================  ====================================================
"""

from repro.errors import (
    ReproError,
    SecurityError,
    AuthenticityError,
    FreshnessError,
    ConsistencyError,
)
from repro.globedoc import (
    DocumentOwner,
    PageElement,
    ObjectId,
    IntegrityCertificate,
    HybridUrl,
)
from repro.crypto import KeyPair, CertificateAuthority, TrustStore

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SecurityError",
    "AuthenticityError",
    "FreshnessError",
    "ConsistencyError",
    "DocumentOwner",
    "PageElement",
    "ObjectId",
    "IntegrityCertificate",
    "HybridUrl",
    "KeyPair",
    "CertificateAuthority",
    "TrustStore",
    "__version__",
]
