"""Ablation — SSL connection reuse vs per-request handshakes.

Figures 5–7 model wget-over-HTTPS as one TLS handshake per element
(HTTP/1.0-era behaviour). This ablation quantifies how much of the SSL
series is handshake cost by comparing against a persistent connection —
and shows that even with perfect reuse, SSL still cannot match
GlobeDoc's amortised one-verify binding on multi-element objects.
"""

from __future__ import annotations

from repro.harness.experiment import Testbed
from repro.harness.report import render_table
from repro.workloads.generator import make_document_owner
from repro.workloads.sizes import fig567_objects


def test_ssl_handshake_amortisation(benchmark):
    def run():
        testbed = Testbed()
        spec = fig567_objects()[1]  # the 105 KB object
        owner = make_document_owner(spec, clock=testbed.clock)
        published = testbed.publish(owner)
        paths = [f"{published.name}/{name}" for name in spec.element_names]

        def ssl_run(per_request_handshake: bool) -> float:
            client = testbed.ssl_client("canardo.inria.fr")
            start = testbed.clock.now()
            client.get_many(paths, per_request_handshake=per_request_handshake)
            return testbed.clock.now() - start

        def globedoc_run() -> float:
            stack = testbed.client_stack("canardo.inria.fr")
            start = testbed.clock.now()
            for name in spec.element_names:
                assert stack.proxy.handle(published.url(name)).ok
            return testbed.clock.now() - start

        return ssl_run(True), ssl_run(False), globedoc_run()

    per_request, persistent, globedoc = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation — SSL handshake amortisation (105 KB / 11 elements, Paris)")
    print(
        render_table(
            ["Scheme", "Whole-object retrieval"],
            [
                ["SSL, handshake per element", f"{per_request*1e3:.1f} ms"],
                ["SSL, persistent connection", f"{persistent*1e3:.1f} ms"],
                ["GlobeDoc secure proxy", f"{globedoc*1e3:.1f} ms"],
            ],
        )
    )
    assert persistent < per_request  # reuse removes handshake RTTs + RSA
    assert globedoc < per_request  # the Fig. 6 ordering
