"""Figure 4 — Security overhead vs data size, per client site.

Regenerates the paper's curve: six single-element objects (1 KB–1 MB),
one replica on Amsterdam-primary, accessed from Amsterdam-secondary,
Paris, and Ithaca; reports security time as a percentage of total
access time.

Expected shape (checked by assertions): ~25 % at 1 KB, monotonically
decreasing per client, with the LAN client worst at 1 MB.
"""

from __future__ import annotations

from repro.harness.fig4 import run_fig4, rows_as_series
from repro.harness.report import render_fig4
from repro.util.sizes import KB, MB


def test_fig4_security_overhead(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig4(repeats=3), rounds=1, iterations=1
    )
    print()
    print(render_fig4(rows))

    series = rows_as_series(rows)
    # Shape assertions — the figure's qualitative claims.
    for client, client_rows in series.items():
        assert client_rows[0].overhead_percent > client_rows[-1].overhead_percent
    at_1kb = {r.client: r.overhead_percent for r in rows if r.size_bytes == KB}
    assert all(15.0 <= v <= 50.0 for v in at_1kb.values())
    at_1mb = {r.client: r.overhead_percent for r in rows if r.size_bytes == MB}
    assert at_1mb["Amsterdam"] > at_1mb["Paris"]
    assert at_1mb["Amsterdam"] > at_1mb["Ithaca"]
