"""Ablation — per-element freshness vs one global interval (§5).

"The GlobeDoc security architecture uses per page-element expiration
dates, which allow owners to set per page-element freshness constraints
(which is not possible with r-OSFS)." With one hot element and many
cold ones, r-OSFS clients must re-validate *everything* at the hot rate.
"""

from __future__ import annotations

from repro.harness.ablations import compare_freshness_granularity
from repro.harness.report import render_table


def test_freshness_granularity(benchmark):
    costs = benchmark.pedantic(
        lambda: compare_freshness_granularity(
            elements=20, hot_interval=60.0, cold_validity=3600.0, horizon=3600.0
        ),
        rounds=3,
        iterations=1,
    )
    print()
    print(
        f"Ablation — freshness granularity ({costs.elements} elements, "
        f"1 hot @ 60 s, cold valid 3600 s, 1 h horizon)"
    )
    print(
        render_table(
            ["Metric", "GlobeDoc (per-element)", "r-OSFS (global)"],
            [
                [
                    "cold-element re-validations / h",
                    str(costs.globedoc_cold_revalidations),
                    str(costs.rosfs_cold_revalidations),
                ],
                [
                    "client refresh traffic / h",
                    f"{costs.globedoc_refresh_bytes/1024:.0f} KB",
                    f"{costs.rosfs_refresh_bytes/1024:.0f} KB",
                ],
                ["owner signings / h", str(costs.owner_signs), str(costs.owner_signs)],
            ],
        )
    )
    print(f"re-validation ratio: {costs.revalidation_ratio:.0f}x")
    assert costs.revalidation_ratio >= 10
