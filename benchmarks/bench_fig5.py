"""Figure 5 — Performance comparison, Amsterdam client.

GlobeDoc (secure proxy) vs Apache-style plain HTTP vs Apache+SSL for
the three 11-element objects (15 KB / 105 KB / 1005 KB), retrieved from
the Amsterdam vantage point.

Expected shape (checked): http < globedoc < ssl for every object, with
the GlobeDoc/HTTP gap shrinking as object size grows.
"""

from __future__ import annotations

from repro.harness.fig567 import run_fig567_for_client
from repro.harness.report import render_fig567


def test_fig5_amsterdam(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig567_for_client("Amsterdam", repeats=3), rounds=1, iterations=1
    )
    print()
    print(render_fig567(rows, "Amsterdam"))

    labels = sorted({r.object_label for r in rows})
    for label in labels:
        times = {r.scheme: r.seconds for r in rows if r.object_label == label}
        assert times["http"] < times["globedoc"] < times["ssl"], label
