"""Load study — the §1 flash-crowd motivation, measured end to end.

Not a numbered figure in the paper, but the quantitative form of its
opening argument: a single hosting server cannot cope with a flash
crowd, and per-document dynamic replication onto (untrusted, verified)
hosts absorbs it. Runs the same crowd trace through the full stack with
and without the hotspot policy in the loop.
"""

from __future__ import annotations

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.harness.loadsim import LoadSimulator
from repro.harness.report import render_table
from repro.location.service import LocationClient
from repro.naming.records import OidRecord
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.replication.coordinator import ReplicationCoordinator, SitePort
from repro.replication.policy import RequestObservation
from repro.replication.strategies import HotspotReplication, NoReplication
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from repro.workloads.trace import TraceConfig, generate_trace, inject_flash_crowd

CROWD_SITE = "root/us/cornell"


def run_crowd(policy_factory):
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/hot", clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"<html>hot</html>" * 64))
    document = owner.publish(validity=7200)
    testbed.object_server.keystore.authorize("owner", owner.public_key)
    testbed.naming.register(OidRecord(name=owner.name, oid=owner.oid))

    cornell = ObjectServer(
        host="ensamble02.cornell.edu", site=CROWD_SITE, clock=testbed.clock
    )
    cornell.keystore.authorize("owner", owner.public_key)
    testbed.network.register(
        Endpoint("ensamble02.cornell.edu", "objectserver"),
        cornell.rpc_server().handle_frame,
    )
    rpc = RpcClient(testbed.network.transport_for("sporty.cs.vu.nl"))
    coordinator = ReplicationCoordinator(
        LocationClient(rpc, testbed.location_endpoint, "root/europe/vu", clock=testbed.clock)
    )
    for site, host in (("root/europe/vu", "ginger.cs.vu.nl"), (CROWD_SITE, "ensamble02.cornell.edu")):
        coordinator.add_site(
            SitePort(
                site=site,
                admin=AdminClient(rpc, Endpoint(host, "objectserver"), owner.keys, testbed.clock),
            )
        )
    coordinator.manage(owner, document, policy_factory(), home_site="root/europe/vu")

    trace = inject_flash_crowd(
        generate_trace(
            TraceConfig(
                documents=(owner.name,), sites=("root/europe/vu", CROWD_SITE),
                duration=120.0, rate=0.2, seed=5,
            )
        ),
        document=owner.name, site=CROWD_SITE, start=30.0, duration=30.0,
        rate=20.0, seed=6,
    )
    simulator = LoadSimulator(testbed, url_of=lambda e: f"globe://{e.document}!/index.html")
    report = simulator.run(
        trace,
        on_request=lambda e: coordinator.observe_request(
            owner.oid, RequestObservation(site=e.site, time=testbed.clock.now())
        ),
    )
    return report


def test_flash_crowd_relief(benchmark):
    def run_both():
        return (
            run_crowd(NoReplication),
            run_crowd(
                lambda: HotspotReplication(
                    create_rate=1.0, destroy_rate=0.01, window=15.0
                )
            ),
        )

    static, dynamic = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for label, start, end in (
        ("pre-crowd (0-30 s)", 0.0, 30.0),
        ("crowd peak (45-60 s)", 45.0, 60.0),
    ):
        s = static.latency_summary(site=CROWD_SITE, start=start, end=end)
        d = dynamic.latency_summary(site=CROWD_SITE, start=start, end=end)
        rows.append([label, f"{s.mean*1e3:.1f} ms", f"{d.mean*1e3:.1f} ms"])
    print()
    print("Load study — flash crowd at Cornell (mean client latency)")
    print(render_table(["Phase", "single server", "hotspot replication"], rows))
    peak_static = static.latency_summary(site=CROWD_SITE, start=45.0, end=60.0).mean
    peak_dynamic = dynamic.latency_summary(site=CROWD_SITE, start=45.0, end=60.0).mean
    print(f"crowd-peak relief: {peak_static/peak_dynamic:.0f}x")
    assert peak_dynamic < peak_static / 2
    assert static.failures == dynamic.failures == 0  # verified throughout
