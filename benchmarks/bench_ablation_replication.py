"""Ablation — per-document replication strategies (§2, ref [13]).

Replays a flash-crowd trace under every catalogue strategy. The claim:
the dynamic hotspot strategy slashes client latency during the crowd at
a bounded replica-seconds cost, while static choices either pay WAN
latency for every crowd request (no-replication) or replica costs
everywhere forever (static-everywhere).
"""

from __future__ import annotations

from repro.harness.ablations import compare_replication_strategies
from repro.harness.report import render_table


def test_strategy_comparison(benchmark):
    results = benchmark.pedantic(
        compare_replication_strategies, rounds=1, iterations=1
    )
    print()
    print("Ablation — replication strategies on a flash-crowd trace")
    print(
        render_table(
            ["Strategy", "Mean latency", "Total latency", "Replica-seconds", "Placements"],
            [
                [
                    r.strategy,
                    f"{r.mean_latency*1e3:.1f} ms",
                    f"{r.total_latency:.1f} s",
                    f"{r.replica_seconds:.0f}",
                    str(r.placements),
                ]
                for r in results
            ],
        )
    )
    by_name = {r.strategy: r for r in results}
    # Hotspot beats no-replication on latency during the crowd.
    assert by_name["hotspot"].mean_latency < by_name["no-replication"].mean_latency / 2
    # And places replicas only when needed.
    assert 0 < by_name["hotspot"].placements <= 3
