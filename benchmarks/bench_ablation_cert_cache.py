"""Ablation — integrity-certificate caching in the proxy (§4).

Fig. 4 attributes the small-object overhead to the ~2 KB key+certificate
prefetch. Caching the verified binding amortises it across a
multi-element object; this bench measures the 11-element object with the
binding cached vs re-established per element.
"""

from __future__ import annotations

from repro.harness.ablations import compare_cert_caching
from repro.harness.report import render_table


def test_cert_cache_speedup(benchmark):
    costs = benchmark.pedantic(
        lambda: compare_cert_caching(client_label="Paris", repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"Ablation — binding cache, {costs.object_label}, {costs.client} client")
    print(
        render_table(
            ["Mode", "Whole-object retrieval"],
            [
                ["binding cached (default)", f"{costs.cached_seconds*1e3:.1f} ms"],
                ["key+cert per element", f"{costs.uncached_seconds*1e3:.1f} ms"],
            ],
        )
    )
    print(f"speedup from caching: {costs.speedup:.2f}x")
    assert costs.speedup > 1.3
