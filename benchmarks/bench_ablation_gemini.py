"""Ablation — Gemini cache-signing vs GlobeDoc owner-signing (§5).

Gemini's untrusted caches sign every response (an RSA *sign* per
request, server-side); GlobeDoc's owner signs once offline and replicas
serve plain data (clients pay an RSA *verify* once per binding). This
bench measures the per-request server-side crypto cost of each design.
"""

from __future__ import annotations

import pytest

from repro.baselines.gemini import GeminiCache, GeminiClient
from repro.harness.report import render_table
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from repro.crypto.keys import KeyPair
from repro.sim.clock import RealClock

FILES = {f"page{i}.html": b"x" * 4096 for i in range(8)}


@pytest.fixture(scope="module")
def gemini():
    cache = GeminiCache(host="squid", keys=KeyPair.generate(), clock=RealClock())
    cache.fill(FILES)
    transport = LoopbackTransport()
    transport.register(cache.endpoint, cache.rpc_server().handle_frame)
    client = GeminiClient(RpcClient(transport), cache.endpoint, cache.public_key)
    return cache, client


def test_gemini_per_request_signing(benchmark, gemini):
    cache, client = gemini

    def serve_eight():
        for name in FILES:
            client.get(name)

    benchmark(serve_eight)
    assert cache.sign_count >= len(FILES)
    print()
    print(
        render_table(
            ["Design", "Server crypto per request", "Bogus data"],
            [
                ["Gemini", "1 RSA sign (measured here)", "served now, convicted later"],
                ["GlobeDoc", "none (owner signed offline)", "rejected at the client"],
            ],
        )
    )


def test_globedoc_replica_serving_cost(benchmark):
    """The GlobeDoc counterpart: serving an element is pure data
    movement — no signing — so replica throughput is crypto-free."""
    from repro.globedoc.element import PageElement
    from repro.globedoc.owner import DocumentOwner
    from repro.server.localrep import ReplicaLR

    owner = DocumentOwner("vu.nl/bench", keys=KeyPair.generate(1024))
    for name, content in FILES.items():
        owner.put_element(PageElement(name, content))
    lr = ReplicaLR(owner.publish(validity=3600).state())

    def serve_eight():
        for name in FILES:
            lr.get_element(name)

    benchmark(serve_eight)
    assert lr.serve_count >= len(FILES)
