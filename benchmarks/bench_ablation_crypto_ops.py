"""Ablation — signature verify (GlobeDoc) vs RSA decrypt (SSL).

§4: "GlobeDoc requires only public key signature verification operations
which are much faster than the public key encrypt/decrypt operations
required by SSL." Measured on real RSA-2048.
"""

from __future__ import annotations

from repro.harness.ablations import measure_crypto_ops
from repro.harness.report import render_table


def test_crypto_op_costs(benchmark):
    costs = benchmark.pedantic(
        lambda: measure_crypto_ops(iterations=30), rounds=1, iterations=1
    )
    print()
    print("Ablation — RSA operation costs (per op)")
    print(
        render_table(
            ["Operation", "Mean time", "Used by"],
            [
                ["verify", f"{costs.verify*1e6:.1f} us", "GlobeDoc proxy (per binding)"],
                ["sign", f"{costs.sign*1e6:.1f} us", "owner (offline, per publish)"],
                ["encrypt", f"{costs.rsa_encrypt*1e6:.1f} us", "SSL client (per connection)"],
                ["decrypt", f"{costs.rsa_decrypt*1e6:.1f} us", "SSL server (per connection)"],
            ],
        )
    )
    print(f"decrypt/verify ratio: {costs.decrypt_over_verify:.1f}x")
    assert costs.decrypt_over_verify > 3
