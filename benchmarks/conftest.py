"""Benchmark configuration.

Each bench regenerates one of the paper's tables/figures (or an
ablation) under pytest-benchmark and prints the resulting table — run
with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    # Benches are ordered: Table 1 first, then figures, then ablations.
    order = {"table1": 0, "fig4": 1, "fig5": 2, "fig6": 3, "fig7": 4}

    def rank(item):
        for key, value in order.items():
            if key in item.nodeid:
                return value
        return 10

    items.sort(key=rank)
