"""Ablation — flat integrity certificate vs r-OSFS Merkle tree (§5).

GlobeDoc signs a per-element table (per-element freshness, bigger
metadata); r-OSFS signs one Merkle root (tiny per-fetch proofs, one
global freshness interval).
"""

from __future__ import annotations

from repro.harness.ablations import compare_cert_schemes
from repro.harness.report import render_table


def test_cert_scheme_costs(benchmark):
    costs = benchmark.pedantic(
        lambda: compare_cert_schemes(element_count=64, element_size=4096, repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"Ablation — certificate scheme, {costs.element_count} elements")
    print(
        render_table(
            ["Metric", "GlobeDoc cert", "r-OSFS Merkle"],
            [
                [
                    "full sign",
                    f"{costs.globedoc_sign_seconds*1e3:.2f} ms",
                    f"{costs.merkle_build_sign_seconds*1e3:.2f} ms",
                ],
                [
                    "1-element update",
                    f"{costs.globedoc_update_one_seconds*1e3:.2f} ms",
                    f"{costs.merkle_update_one_seconds*1e3:.2f} ms",
                ],
                [
                    "per-fetch metadata",
                    f"{costs.globedoc_cert_bytes} B (once/binding)",
                    f"{costs.merkle_proof_bytes} B (per element)",
                ],
                [
                    "per-element freshness",
                    str(costs.globedoc_per_element_freshness),
                    str(costs.merkle_per_element_freshness),
                ],
            ],
        )
    )
    assert costs.merkle_proof_bytes < costs.globedoc_cert_bytes
    assert costs.globedoc_per_element_freshness and not costs.merkle_per_element_freshness
