"""Ablation — verified-content caching at the proxy.

The integrity certificate makes client caching safe: a cached element
is servable with zero network traffic until its owner-signed expiry.
This bench measures repeat-access cost with and without the cache for a
WAN client, and the bounded-staleness property that distinguishes it
from a Squid-style cache (staleness ≤ the owner's interval, enforced).
"""

from __future__ import annotations

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.harness.report import render_table
from repro.proxy.clientproxy import GlobeDocProxy
from repro.proxy.contentcache import ContentCache


def test_content_cache_repeat_access(benchmark):
    def run():
        testbed = Testbed()
        owner = DocumentOwner("vu.nl/cached", clock=testbed.clock)
        owner.put_element(PageElement("page.html", b"<html>popular</html>" * 100))
        published = testbed.publish(owner, validity=3600)
        url = published.url("page.html")

        def repeat_cost(cache) -> float:
            stack = testbed.client_stack("ensamble02.cornell.edu")
            proxy = GlobeDocProxy(
                stack.binder, stack.checker, stack.rpc, content_cache=cache
            )
            proxy.handle(url)  # cold access
            start = testbed.clock.now()
            for _ in range(10):
                assert proxy.handle(url).ok
            return (testbed.clock.now() - start) / 10

        without = repeat_cost(None)
        cache = ContentCache(clock=testbed.clock, ttl=600.0)
        with_cache = repeat_cost(cache)
        return without, with_cache, cache.hit_rate

    without, with_cache, hit_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation — verified-content cache, Ithaca client, repeat accesses")
    print(
        render_table(
            ["Mode", "Per-access cost"],
            [
                ["no content cache", f"{without*1e3:.2f} ms"],
                ["content cache", f"{with_cache*1e3:.4f} ms"],
            ],
        )
    )
    if with_cache > 0:
        print(f"speedup: {without/with_cache:.0f}x, hit rate {hit_rate:.2f}")
    else:
        print(f"speedup: cache hits cost zero simulated time, hit rate {hit_rate:.2f}")
    assert with_cache < without / 10
