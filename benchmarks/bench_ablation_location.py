"""Ablation — expanding-ring location lookup vs flat directory (§2.1.2).

The design claim: lookups for nearby replicas touch O(1) nodes while a
flat directory scales with the replica list, at the cost of O(depth)
records per replica in the tree.
"""

from __future__ import annotations

from repro.harness.ablations import compare_location_lookup
from repro.harness.report import render_table


def test_location_lookup_costs(benchmark):
    costs = benchmark.pedantic(
        lambda: compare_location_lookup(fanout=4, depth=3, replicas=8),
        rounds=3,
        iterations=1,
    )
    print()
    print(f"Ablation — location lookup, {costs.sites} sites, {costs.replicas} replicas")
    print(
        render_table(
            ["Metric", "Expanding ring", "Flat directory"],
            [
                ["lookup @ replica site", f"{costs.ring_local_visits:.0f} visits", f"{costs.flat_visits:.0f} visits"],
                ["lookup far away", f"{costs.ring_remote_visits:.0f} visits", f"{costs.flat_visits:.0f} visits"],
                ["records stored", str(costs.tree_records), str(costs.flat_records)],
            ],
        )
    )
    assert costs.ring_local_visits < costs.flat_visits


def test_lookup_scaling_with_replicas(benchmark):
    """Local-ring lookup cost stays flat as the replica count grows —
    the property that makes the tree suitable for massive replication."""

    def sweep():
        return [
            compare_location_lookup(fanout=4, depth=3, replicas=n).ring_local_visits
            for n in (2, 8, 32)
        ]

    visits = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print()
    print("Local lookup visits for 2/8/32 replicas:", visits)
    assert visits[0] == visits[-1] == 1.0
