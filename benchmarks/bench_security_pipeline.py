"""Microbenchmarks of the proxy's security pipeline pieces.

Not a paper figure, but the numbers behind Fig. 4's decomposition: what
each verification step costs on real crypto, at the element sizes the
paper sweeps.
"""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyPair
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import IntegrityCertificate
from repro.globedoc.oid import ObjectId
from repro.util.sizes import KB, MB
from repro.workloads.generator import make_content
from repro.sim.random import make_rng


@pytest.fixture(scope="module")
def object_keys():
    return KeyPair.generate()


@pytest.fixture(scope="module")
def oid(object_keys):
    return ObjectId.from_public_key(object_keys.public)


@pytest.mark.parametrize("size", [KB, 100 * KB, MB], ids=["1KB", "100KB", "1MB"])
def test_element_hash_check(benchmark, object_keys, oid, size):
    """The size-proportional part: SHA-1 over the element content."""
    element = PageElement("image.png", make_content(size, make_rng(0)))
    cert = IntegrityCertificate.for_elements(
        object_keys, oid.hex, [element], expires_at=1e12
    )
    from repro.sim.clock import SimClock

    clock = SimClock(0.0)
    result = benchmark(lambda: cert.check_element("image.png", element, clock))
    assert result.name == "image.png"


def test_oid_key_check(benchmark, object_keys, oid):
    """The constant part: SHA-1 over the ~300-byte public key DER."""
    benchmark(lambda: oid.check_key(object_keys.public))


def test_certificate_signature_check(benchmark, object_keys, oid):
    """One RSA verify per binding."""
    elements = [PageElement(f"e{i}.png", bytes([i]) * 64) for i in range(11)]
    cert = IntegrityCertificate.for_elements(
        object_keys, oid.hex, elements, expires_at=1e12
    )
    benchmark(lambda: cert.verify_signature(object_keys.public))


def test_certificate_signature_check_cached(benchmark, object_keys, oid):
    """The same check through a warm VerificationCache — the fast path
    that amortizes RSA across repeated accesses (§4)."""
    from repro.crypto.verifycache import VerificationCache

    elements = [PageElement(f"e{i}.png", bytes([i]) * 64) for i in range(11)]
    cert = IntegrityCertificate.for_elements(
        object_keys, oid.hex, elements, expires_at=1e12
    )
    cache = VerificationCache()
    cert.verify_signature(object_keys.public, cache=cache)
    benchmark(lambda: cert.verify_signature(object_keys.public, cache=cache))
    assert cache.stats.hits > 0


def test_envelope_reparse_cold(benchmark, object_keys, oid):
    """Parsing a certificate off the wire with the intern pool defeated:
    every round trip re-validates and re-builds the envelope."""
    from repro.crypto.signing import SignedEnvelope

    elements = [PageElement(f"e{i}.png", bytes([i]) * 64) for i in range(11)]
    cert = IntegrityCertificate.for_elements(
        object_keys, oid.hex, elements, expires_at=1e12
    )
    wire = cert.to_dict()

    def cold():
        SignedEnvelope.clear_intern_pool()
        return IntegrityCertificate.from_dict(wire)

    benchmark(cold)
    SignedEnvelope.clear_intern_pool()


def test_envelope_reparse_interned(benchmark, object_keys, oid):
    """The same parse when the intern pool is warm: the prior instance
    (with its memoized encoding and digests) is returned."""
    from repro.crypto.signing import SignedEnvelope

    elements = [PageElement(f"e{i}.png", bytes([i]) * 64) for i in range(11)]
    cert = IntegrityCertificate.for_elements(
        object_keys, oid.hex, elements, expires_at=1e12
    )
    wire = cert.to_dict()
    SignedEnvelope.clear_intern_pool()
    IntegrityCertificate.from_dict(wire)
    benchmark(lambda: IntegrityCertificate.from_dict(wire))
    SignedEnvelope.clear_intern_pool()


def test_wire_size_memoized(benchmark, object_keys, oid):
    """Transfer-accounting loops read wire_size repeatedly; it now costs
    one dict lookup after the first serialization."""
    elements = [PageElement(f"e{i}.png", bytes([i]) * 64) for i in range(11)]
    cert = IntegrityCertificate.for_elements(
        object_keys, oid.hex, elements, expires_at=1e12
    )
    _ = cert.wire_size
    benchmark(lambda: cert.wire_size)


def test_owner_publish_11_elements(benchmark, object_keys):
    """Owner-side cost of signing the paper's 11-element object."""
    from repro.globedoc.owner import DocumentOwner
    from repro.sim.clock import SimClock

    owner = DocumentOwner("vu.nl/bench", keys=object_keys, clock=SimClock(0.0))
    for i in range(10):
        owner.put_element(PageElement(f"img/i{i}.png", make_content(10 * KB, make_rng(i))))
    owner.put_element(PageElement("story.txt", make_content(5 * KB, make_rng(99))))
    signed = benchmark(lambda: owner.publish(validity=3600))
    assert signed.total_size == 105 * KB
