"""Table 1 — Experimental setting.

Regenerates the paper's testbed table (plus the simulation-calibration
columns) and benchmarks full testbed construction (all services wired).
"""

from __future__ import annotations

from repro.harness.experiment import Testbed
from repro.harness.report import render_table
from repro.harness.table1 import TABLE1_COLUMNS, table1_rows


def test_table1(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) == 4
    print()
    print("Table 1 — Experimental setting")
    print(render_table(TABLE1_COLUMNS, rows))


def test_testbed_construction(benchmark):
    """Cost of standing up the whole §4 stack (zone keys, services)."""
    testbed = benchmark.pedantic(Testbed, rounds=2, iterations=1)
    assert len(testbed.network.host_names) == 4
