"""The r-OSFS baseline: root-signed Merkle store and its freshness limits."""

from __future__ import annotations

import pytest

from repro.baselines.rosfs import RosfsClient, RosfsServer, RosfsStore
from repro.errors import AuthenticityError, FreshnessError, ReproError
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from repro.sim.clock import SimClock
from tests.conftest import EPOCH, fast_keys


@pytest.fixture
def clock():
    return SimClock(EPOCH)


@pytest.fixture
def wired(clock):
    store = RosfsStore(keys=fast_keys())
    store.put_file("index.html", b"<html>fs</html>")
    store.put_file("img/a.png", b"PNG-A")
    store.put_file("img/b.png", b"PNG-B")
    store.publish(valid_until=EPOCH + 600)
    server = RosfsServer(host="replica", store=store)
    transport = LoopbackTransport()
    transport.register(server.endpoint, server.rpc_server().handle_frame)
    client = RosfsClient(
        RpcClient(transport), server.endpoint, store.public_key, clock
    )
    return store, server, client, transport


class TestStore:
    def test_publish_required(self):
        store = RosfsStore(keys=fast_keys())
        store.put_file("a", b"x")
        with pytest.raises(ReproError, match="not published"):
            store.proof_for("a")

    def test_empty_publish_rejected(self):
        with pytest.raises(ReproError):
            RosfsStore(keys=fast_keys()).publish(valid_until=1.0)

    def test_unknown_file(self, wired):
        store, *_ = wired
        with pytest.raises(ReproError):
            store.proof_for("ghost")

    def test_update_requires_republish(self, wired, clock):
        store, _, client, _ = wired
        old_root = store.root_certificate.body["root"]
        store.put_file("index.html", b"<html>v2</html>")
        store.publish(valid_until=EPOCH + 600)
        assert store.root_certificate.body["root"] != old_root
        assert store.publish_count == 2


class TestClient:
    def test_verified_fetch(self, wired):
        _, _, client, _ = wired
        assert client.get_file("index.html") == b"<html>fs</html>"
        assert client.get_file("img/b.png") == b"PNG-B"

    def test_root_fetched_once_per_interval(self, wired):
        _, _, client, _ = wired
        client.get_file("index.html")
        client.get_file("img/a.png")
        assert client.root_fetches == 1

    def test_tamper_detected(self, wired):
        store, _, client, _ = wired
        # Tamper server-side without republishing (an attacker cannot
        # re-sign the root).
        store._files["index.html"] = b"evil"
        with pytest.raises(AuthenticityError):
            client.get_file("index.html")

    def test_wrong_owner_key_rejected(self, wired, clock):
        store, server, _, transport = wired
        stranger = fast_keys()
        client = RosfsClient(
            RpcClient(transport), server.endpoint, stranger.public, clock
        )
        from repro.errors import CertificateError

        with pytest.raises((AuthenticityError, CertificateError)):
            client.get_file("index.html")

    def test_global_freshness_only(self, wired, clock):
        """The paper's criticism: ONE interval for the whole store. Once
        it lapses, *every* file is stale — there is no per-element knob."""
        _, _, client, _ = wired
        client.get_file("index.html")
        clock.advance(601.0)
        from repro.errors import CertificateError

        with pytest.raises((FreshnessError, CertificateError)):
            client.get_file("index.html")
        with pytest.raises((FreshnessError, CertificateError)):
            client.get_file("img/a.png")  # collateral staleness
