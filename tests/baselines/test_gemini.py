"""The Gemini baseline: cache signing and eventual-audit semantics."""

from __future__ import annotations

import pytest

from repro.baselines.gemini import GeminiAuditor, GeminiCache, GeminiClient
from repro.errors import AuthenticityError, RpcError
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from repro.sim.clock import SimClock
from tests.conftest import fast_keys

ORIGIN = {"index.html": b"<html>publisher content</html>", "a.png": b"PNG"}


@pytest.fixture
def wired(clock):
    cache = GeminiCache(host="squid", keys=fast_keys(), clock=clock)
    cache.fill(ORIGIN)
    transport = LoopbackTransport()
    transport.register(cache.endpoint, cache.rpc_server().handle_frame)
    client = GeminiClient(RpcClient(transport), cache.endpoint, cache.public_key)
    return cache, client


class TestHonestCache:
    def test_serves_and_signs(self, wired):
        cache, client = wired
        assert client.get("index.html") == ORIGIN["index.html"]
        assert cache.sign_count == 1
        assert len(client.receipts) == 1

    def test_signing_cost_per_response(self, wired):
        """Gemini's cost profile: one RSA signature per response (vs
        GlobeDoc's owner signing once, offline)."""
        cache, client = wired
        for _ in range(5):
            client.get("a.png")
        assert cache.sign_count == 5

    def test_miss(self, wired):
        _, client = wired
        with pytest.raises((RpcError, Exception)):
            client.get("ghost")

    def test_audit_clears_honest_cache(self, wired):
        cache, client = wired
        client.get("index.html")
        client.get("a.png")
        auditor = GeminiAuditor(ORIGIN)
        assert auditor.audit(client.receipts, cache.public_key) == []


class TestCheatingCache:
    def test_bogus_content_accepted_by_client(self, wired):
        """The design gap: the client verifies only the cache signature,
        so tampered content is ACCEPTED at serve time."""
        cache, client = wired
        cache.tamper_with("index.html", b"<html>ads injected</html>")
        body = client.get("index.html")
        assert body == b"<html>ads injected</html>"  # attack succeeds now…

    def test_audit_convicts_cheater(self, wired):
        """…but the signed receipt convicts the cache later ('caught
        red-handed')."""
        cache, client = wired
        cache.tamper_with("index.html", b"<html>ads injected</html>")
        client.get("index.html")
        client.get("a.png")  # honest response
        auditor = GeminiAuditor(ORIGIN)
        convictions = auditor.audit(client.receipts, cache.public_key)
        assert len(convictions) == 1
        assert convictions[0].path == "/index.html"
        assert convictions[0].content == b"<html>ads injected</html>"

    def test_unsigned_evidence_inadmissible(self, wired):
        """Receipts that do not verify under the cache key cannot convict
        (an attacker cannot frame a cache)."""
        cache, client = wired
        client.get("index.html")
        receipt = client.receipts[0]
        from repro.baselines.gemini import Receipt
        from repro.crypto.signing import SignedEnvelope

        forged = Receipt(
            envelope=SignedEnvelope(
                payload={**dict(receipt.envelope.payload), "content": b"framed"},
                signature=receipt.envelope.signature,
                suite_name=receipt.envelope.suite_name,
            ),
            cache_key_der=receipt.cache_key_der,
        )
        auditor = GeminiAuditor(ORIGIN)
        assert auditor.audit([forged], cache.public_key) == []

    def test_wrong_cache_key_rejected_by_client(self, clock):
        cache = GeminiCache(host="squid", keys=fast_keys(), clock=clock)
        cache.fill(ORIGIN)
        transport = LoopbackTransport()
        transport.register(cache.endpoint, cache.rpc_server().handle_frame)
        stranger = fast_keys()
        client = GeminiClient(RpcClient(transport), cache.endpoint, stranger.public)
        with pytest.raises(AuthenticityError):
            client.get("index.html")
