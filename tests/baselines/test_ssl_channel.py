"""The SSL/TLS baseline: handshake, record protection, trust gap."""

from __future__ import annotations

import pytest

from repro.baselines.ssl_channel import (
    SslClient,
    SslServer,
    TlsSession,
    _decrypt_record,
    _encrypt_record,
)
from repro.errors import CryptoError, ReproError, RpcError
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from tests.conftest import fast_keys


@pytest.fixture
def wired():
    server = SslServer(host="apache", keys=fast_keys())
    server.put_files({"index.html": b"<html>secret home</html>"})
    transport = LoopbackTransport()
    transport.register(server.endpoint, server.rpc_server().handle_frame)
    client = SslClient(RpcClient(transport), server.endpoint)
    return server, client


class TestRecords:
    def test_roundtrip(self):
        session = TlsSession.derive("s", b"premaster")
        record = _encrypt_record(session.enc_key, session.mac_key, b"payload")
        assert _decrypt_record(session.enc_key, session.mac_key, record) == b"payload"

    def test_ciphertext_differs_from_plaintext(self):
        session = TlsSession.derive("s", b"premaster")
        record = _encrypt_record(session.enc_key, session.mac_key, b"payload")
        assert b"payload" not in record

    def test_tampered_record_rejected(self):
        session = TlsSession.derive("s", b"premaster")
        record = bytearray(_encrypt_record(session.enc_key, session.mac_key, b"payload"))
        record[-1] ^= 0xFF
        with pytest.raises(CryptoError):
            _decrypt_record(session.enc_key, session.mac_key, bytes(record))

    def test_wrong_key_rejected(self):
        a = TlsSession.derive("s", b"premaster-a")
        b = TlsSession.derive("s", b"premaster-b")
        record = _encrypt_record(a.enc_key, a.mac_key, b"payload")
        with pytest.raises(CryptoError):
            _decrypt_record(b.enc_key, b.mac_key, record)

    def test_short_record_rejected(self):
        session = TlsSession.derive("s", b"p")
        with pytest.raises(CryptoError):
            _decrypt_record(session.enc_key, session.mac_key, b"short")


class TestChannel:
    def test_handshake_and_get(self, wired):
        server, client = wired
        body = client.get("index.html")
        assert body == b"<html>secret home</html>"
        assert server.handshake_count == 1
        assert server.request_count == 1

    def test_per_request_handshakes(self, wired):
        server, client = wired
        client.get_many(["index.html", "index.html"], per_request_handshake=True)
        assert server.handshake_count == 2

    def test_persistent_connection(self, wired):
        server, client = wired
        client.handshake()
        client.get("index.html", new_connection=False)
        client.get("index.html", new_connection=False)
        assert server.handshake_count == 1

    def test_404(self, wired):
        _, client = wired
        with pytest.raises(ReproError):
            client.get("ghost")

    def test_get_without_session_rejected_server_side(self, wired):
        server, _ = wired
        with pytest.raises(CryptoError):
            server.rpc_get(session_id="nonexistent", path="index.html")


class TestTrustGap:
    def test_malicious_server_defeats_tls(self, wired):
        """The paper's core criticism of TLS (§3.2.1): 'The secure
        channel … does not help at all if a malicious server sends bogus
        data over it.' A compromised server swaps the content; the
        channel verifies perfectly and the client accepts the bogus
        bytes."""
        server, client = wired
        server.put_file("index.html", b"<html>bogus but encrypted</html>")
        body = client.get("index.html")
        assert body == b"<html>bogus but encrypted</html>"  # accepted!
