"""The plain-HTTP baseline server and client."""

from __future__ import annotations

import pytest

from repro.baselines.plainhttp import PlainHttpClient, StaticHttpServer
from repro.errors import ReproError
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport


@pytest.fixture
def wired():
    server = StaticHttpServer(host="apache")
    server.put_files({"index.html": b"<html>home</html>", "img/a.png": b"PNG"})
    transport = LoopbackTransport()
    transport.register(server.endpoint, server.rpc_server().handle_frame)
    client = PlainHttpClient(RpcClient(transport), server.endpoint)
    return server, client


class TestServer:
    def test_get(self, wired):
        server, client = wired
        assert client.get("index.html") == b"<html>home</html>"
        assert client.get("/index.html") == b"<html>home</html>"  # slash-insensitive

    def test_content_type(self, wired):
        server, _ = wired
        answer = server.rpc_get("img/a.png")
        assert answer["content_type"] == "image/png"

    def test_404(self, wired):
        server, client = wired
        assert server.rpc_get("ghost")["status"] == 404
        with pytest.raises(ReproError, match="404"):
            client.get("ghost")

    def test_counters(self, wired):
        server, client = wired
        client.get("index.html")
        client.get("img/a.png")
        assert server.request_count == 2
        assert server.bytes_served == len(b"<html>home</html>") + 3

    def test_get_many(self, wired):
        _, client = wired
        result = client.get_many(["index.html", "img/a.png"])
        assert set(result) == {"index.html", "img/a.png"}

    def test_empty_path_rejected(self):
        with pytest.raises(ReproError):
            StaticHttpServer(host="h").put_file("", b"")

    def test_no_security_whatsoever(self, wired):
        """The baseline's defining property: content can be swapped
        server-side with no client-visible signal."""
        server, client = wired
        server.put_file("index.html", b"<html>defaced</html>")
        assert client.get("index.html") == b"<html>defaced</html>"
