"""The paper's workload specifications."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.util.sizes import KB, MB
from repro.workloads.sizes import (
    FIG4_ELEMENT_SIZES,
    ObjectSpec,
    fig4_objects,
    fig567_objects,
    validate_spec,
)


class TestFig4Objects:
    def test_paper_sizes(self):
        assert FIG4_ELEMENT_SIZES == (KB, 10 * KB, 100 * KB, 300 * KB, 600 * KB, MB)

    def test_single_element_each(self):
        for spec in fig4_objects():
            assert len(spec.elements) == 1
            assert spec.elements[0][0] == "image.png"


class TestFig567Objects:
    def test_three_objects(self):
        specs = fig567_objects()
        assert len(specs) == 3

    def test_paper_totals(self):
        """§4: totals of 15 KB, 105 KB and 1005 KB."""
        totals = [spec.total_size for spec in fig567_objects()]
        assert totals == [15 * KB, 105 * KB, 1005 * KB]

    def test_eleven_elements_each(self):
        for spec in fig567_objects():
            assert len(spec.elements) == 11

    def test_text_file_is_5kb(self):
        for spec in fig567_objects():
            text = dict(spec.elements)["story.txt"]
            assert text == 5 * KB

    def test_ten_equal_images(self):
        for spec, img_size in zip(fig567_objects(), (KB, 10 * KB, 100 * KB)):
            images = [s for n, s in spec.elements if n != "story.txt"]
            assert len(images) == 10
            assert all(s == img_size for s in images)


class TestValidation:
    def test_valid(self):
        validate_spec(ObjectSpec(name="x", elements=(("a", 1),)))

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            validate_spec(ObjectSpec(name="x", elements=()))

    def test_duplicates_rejected(self):
        with pytest.raises(WorkloadError):
            validate_spec(ObjectSpec(name="x", elements=(("a", 1), ("a", 2))))

    def test_negative_size_rejected(self):
        with pytest.raises(WorkloadError):
            validate_spec(ObjectSpec(name="x", elements=(("a", -1),)))

    def test_label(self):
        spec = ObjectSpec(name="vu.nl/x", elements=(("a", KB),))
        assert "1KB" in spec.label
