"""Content generation: determinism, sizes, website structure."""

from __future__ import annotations

import pytest

from repro.globedoc.links import extract_links, intra_object_links
from repro.workloads.generator import (
    WebsiteSpec,
    make_content,
    make_document_owner,
    make_element,
    make_website,
)
from repro.workloads.sizes import ObjectSpec, fig567_objects
from repro.sim.random import make_rng


class TestContent:
    def test_size_exact(self):
        assert len(make_content(12345, make_rng(0))) == 12345

    def test_deterministic(self):
        assert make_content(100, make_rng(7)) == make_content(100, make_rng(7))

    def test_seed_sensitivity(self):
        assert make_content(100, make_rng(1)) != make_content(100, make_rng(2))

    def test_empty(self):
        assert make_content(0) == b""

    def test_not_trivially_compressible(self):
        import zlib

        data = make_content(10000, make_rng(0))
        assert len(zlib.compress(data)) > 9000  # near-incompressible


class TestDocumentFromSpec:
    def test_builds_all_elements(self, clock):
        spec = fig567_objects()[0]
        owner = make_document_owner(spec, seed=3, clock=clock)
        assert sorted(owner.element_names()) == sorted(spec.element_names)

    def test_reproducible_across_builds(self, clock):
        spec = ObjectSpec(name="vu.nl/x", elements=(("a.bin", 512), ("b.bin", 256)))
        owner1 = make_document_owner(spec, seed=9, clock=clock)
        owner2 = make_document_owner(spec, seed=9, clock=clock)
        doc1, doc2 = owner1.publish(validity=10), owner2.publish(validity=10)
        # Different keys (unique OIDs) but identical content bytes.
        assert doc1.oid != doc2.oid
        assert doc1.elements["a.bin"].content == doc2.elements["a.bin"].content

    def test_per_element_decorrelated(self, clock):
        spec = ObjectSpec(name="vu.nl/x", elements=(("a.bin", 512), ("b.bin", 512)))
        owner = make_document_owner(spec, seed=9, clock=clock)
        doc = owner.publish(validity=10)
        assert doc.elements["a.bin"].content != doc.elements["b.bin"].content


class TestWebsite:
    def test_structure(self, clock):
        spec = WebsiteSpec(site_name="vu.nl", pages=4, links_per_page=2, images_per_page=3)
        owners = make_website(spec, seed=1, clock=clock)
        assert len(owners) == 4
        for owner in owners:
            names = owner.element_names()
            assert "index.html" in names
            assert len([n for n in names if n.startswith("img/")]) == 3

    def test_links_present(self, clock):
        owners = make_website(WebsiteSpec(site_name="vu.nl", pages=3), seed=1, clock=clock)
        html = owners[0]._elements["index.html"].content.decode()
        links = extract_links(html)
        # 2 page links + 2 images by default.
        assert len(links) == 4
        assert len(intra_object_links(html)) == 2  # the images are relative

    def test_publishable(self, clock):
        owners = make_website(WebsiteSpec(site_name="vu.nl", pages=2), seed=1, clock=clock)
        for owner in owners:
            owner.publish(validity=60).state().validate()
