"""Request traces: distributions, determinism, flash-crowd injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.trace import (
    TraceConfig,
    generate_trace,
    inject_flash_crowd,
)

DOCS = ("doc-a", "doc-b", "doc-c", "doc-d")
SITES = ("root/x", "root/y")


def make_config(**kwargs) -> TraceConfig:
    defaults = dict(documents=DOCS, sites=SITES, duration=600.0, rate=5.0, seed=11)
    defaults.update(kwargs)
    return TraceConfig(**defaults)


class TestConfigValidation:
    def test_requires_documents(self):
        with pytest.raises(WorkloadError):
            TraceConfig(documents=(), sites=SITES)

    def test_requires_sites(self):
        with pytest.raises(WorkloadError):
            TraceConfig(documents=DOCS, sites=())

    def test_positive_rate(self):
        with pytest.raises(WorkloadError):
            make_config(rate=0)

    def test_zipf_bound(self):
        with pytest.raises(WorkloadError):
            make_config(zipf_s=1.0)

    def test_weights_length(self):
        with pytest.raises(WorkloadError):
            make_config(site_weights=(1.0,))


class TestGeneration:
    def test_deterministic(self):
        assert generate_trace(make_config()) == generate_trace(make_config())

    def test_time_ordered_and_bounded(self):
        trace = generate_trace(make_config())
        times = [e.time for e in trace]
        assert times == sorted(times)
        assert all(0 <= t <= 600.0 for t in times)

    def test_expected_volume(self):
        trace = generate_trace(make_config())
        # Poisson(3000): within 5 sigma.
        assert abs(len(trace) - 3000) < 5 * np.sqrt(3000)

    def test_zipf_skew(self):
        trace = generate_trace(make_config(zipf_s=1.5))
        counts = {d: 0 for d in DOCS}
        for event in trace:
            counts[event.document] += 1
        assert counts["doc-a"] > counts["doc-d"]

    def test_site_weights(self):
        trace = generate_trace(make_config(site_weights=(0.9, 0.1)))
        x = sum(1 for e in trace if e.site == "root/x")
        assert x > len(trace) * 0.8


class TestFlashCrowd:
    def test_injection_adds_burst(self):
        base = generate_trace(make_config(rate=1.0))
        merged = inject_flash_crowd(
            base, document="doc-a", site="root/x", start=100.0, duration=20.0, rate=50.0
        )
        burst = [e for e in merged if 100.0 <= e.time < 120.0 and e.document == "doc-a"]
        assert len(burst) > 800  # ~1000 expected
        assert [e.time for e in merged] == sorted(e.time for e in merged)

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            inject_flash_crowd([], "d", "s", start=0, duration=0, rate=1)
