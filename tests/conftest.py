"""Shared fixtures.

RSA key generation is the only expensive primitive, so tests share
session-scoped keys where freshness does not matter and use 1024-bit
keys (the paper's era size) where it does. SimClock fixtures start at a
fixed epoch so expiry arithmetic in tests is readable.
"""

from __future__ import annotations

import pytest

from repro.crypto.identity import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.crypto.signing import SignedEnvelope
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.sim.clock import SimClock
from repro.util.encoding import ENCODE_COUNTERS

#: Readable test epoch: 2005-01-01-ish.
EPOCH = 1_100_000_000.0

#: Era-faithful and fast to generate; used for throwaway identities.
FAST_BITS = 1024


@pytest.fixture(autouse=True)
def _isolate_fastpath_state():
    """Keep the envelope intern pool and encode counters test-local."""
    SignedEnvelope.clear_intern_pool()
    ENCODE_COUNTERS.reset()
    yield
    SignedEnvelope.clear_intern_pool()
    ENCODE_COUNTERS.reset()


def fast_keys() -> KeyPair:
    """A fresh 1024-bit key pair (cheap; for identity-unique needs)."""
    return KeyPair.generate(FAST_BITS)


@pytest.fixture(scope="session")
def shared_keys() -> KeyPair:
    """A session-wide key pair for tests that only need *a* valid key."""
    return KeyPair.generate(FAST_BITS)


@pytest.fixture(scope="session")
def other_keys() -> KeyPair:
    """A second, distinct session-wide key pair ('the wrong key')."""
    return KeyPair.generate(FAST_BITS)


@pytest.fixture(scope="session")
def session_ca() -> CertificateAuthority:
    """A session-wide certificate authority."""
    return CertificateAuthority("TestRoot CA", keys=KeyPair.generate(FAST_BITS))


@pytest.fixture
def clock() -> SimClock:
    return SimClock(EPOCH)


@pytest.fixture
def make_owner(clock):
    """Factory: a DocumentOwner with staged elements and fast keys.

    ``make_owner(name, {"index.html": b"..."} )`` — keys are fresh per
    call (each owner must have a unique OID).
    """

    def build(name: str = "vu.nl/test", elements=None) -> DocumentOwner:
        owner = DocumentOwner(name, keys=fast_keys(), clock=clock)
        staged = elements if elements is not None else {"index.html": b"<html>hi</html>"}
        for elem_name, content in staged.items():
            owner.put_element(PageElement(elem_name, content))
        return owner

    return build
