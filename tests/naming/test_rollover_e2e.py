"""DNSsec zone-key rollover, end to end over the RPC naming stack.

The unit-level rollover tests (``test_key_rollover.py``) drive the
:class:`~repro.naming.dnssec.ChainValidator` directly; here the same
lifecycle runs through the full testbed — a client's
:class:`~repro.naming.service.SecureResolver` talking RPC to the name
service, and a browsing proxy on top of it. The DS-gap window between a
child zone rotating its keys and the parent re-delegating must fail
closed at every layer, and re-delegation must restore service with no
client reconfiguration.
"""

from __future__ import annotations

import pytest

from repro.errors import ZoneValidationError
from repro.globedoc.element import PageElement
from repro.globedoc.oid import ObjectId
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.naming.records import OidRecord
from repro.naming.zone import ZoneKeys
from tests.conftest import fast_keys

CLIENT_HOST = "canardo.inria.fr"
NAME = "vu.nl/rollover"


def fresh_zone_keys() -> ZoneKeys:
    return ZoneKeys(zone="nl/vu", keys=fast_keys())


class TestRolloverEndToEnd:
    def test_rotation_fails_closed_then_recovers(self):
        testbed = Testbed()
        oid = ObjectId.from_public_key(fast_keys().public)
        testbed.naming.register(OidRecord(name=NAME, oid=oid, ttl=60.0))
        stack = testbed.client_stack(CLIENT_HOST)

        result = stack.resolver.resolve(NAME)
        assert result.oid.hex == oid.hex
        assert result.chain_length == 2  # root→nl, nl→nl/vu

        # The vu zone rotates; the parent still holds the old DS record.
        testbed.vu_zone.rotate_keys(fresh_zone_keys())
        stack.resolver.flush_cache()
        with pytest.raises(ZoneValidationError):
            stack.resolver.resolve(NAME)

        # Parent re-delegates: the chain validates again, same client.
        testbed.nl_zone.redelegate(testbed.vu_zone)
        stack.resolver.flush_cache()
        recovered = stack.resolver.resolve(NAME)
        assert recovered.oid.hex == oid.hex
        assert recovered.chain_length == 2

    def test_cached_answers_bridge_the_gap_until_ttl(self):
        """A TTL-cached resolution keeps a client browsing through the
        DS gap; once it expires, the client fails closed like everyone
        else — the rollover window is bounded by the record TTL."""
        testbed = Testbed()
        oid = ObjectId.from_public_key(fast_keys().public)
        testbed.naming.register(OidRecord(name=NAME, oid=oid, ttl=30.0))
        stack = testbed.client_stack(CLIENT_HOST)
        stack.resolver.resolve(NAME)

        testbed.vu_zone.rotate_keys(fresh_zone_keys())
        bridged = stack.resolver.resolve(NAME)
        assert bridged.from_cache and bridged.oid.hex == oid.hex

        testbed.clock.advance(31.0)
        with pytest.raises(ZoneValidationError):
            stack.resolver.resolve(NAME)

    def test_browsing_proxy_rides_the_rollover(self):
        """The whole access pipeline across a rollover: 200, then a
        fail-closed 404 during the DS gap, then 200 again — the document
        and its replicas are untouched throughout."""
        testbed = Testbed()
        owner = DocumentOwner(NAME, keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"<html>rolling</html>"))
        published = testbed.publish(owner, validity=7 * 24 * 3600.0, ttl=30.0)
        stack = testbed.client_stack(CLIENT_HOST)
        url = published.url("index.html")
        assert stack.proxy.handle(url).ok

        testbed.vu_zone.rotate_keys(fresh_zone_keys())
        stack.resolver.flush_cache()
        stack.proxy.drop_all_sessions()
        gap = stack.proxy.handle(url)
        assert not gap.ok and gap.status == 404  # naming failure, closed

        testbed.nl_zone.redelegate(testbed.vu_zone)
        stack.resolver.flush_cache()
        recovered = stack.proxy.handle(url)
        assert recovered.ok and recovered.content == b"<html>rolling</html>"
