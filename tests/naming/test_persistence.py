"""Durable naming state: records and forwarding pointers across restarts.

Restart model: zones (and their signing keys) are the administrator's
configuration, reconstructed at service start; the durable store carries
only the *published data*. Recovered OID records are re-signed by the
live zones; recovered forwarding records must re-verify
self-certifyingly or recovery fails closed.
"""

from __future__ import annotations

import os
import zlib

import pytest

from repro.errors import RecoveryIntegrityError
from repro.globedoc.oid import ObjectId
from repro.naming.dnssec import SignedZone
from repro.naming.forwarding import ForwardingRecord
from repro.naming.records import OidRecord
from repro.naming.service import NameService
from repro.naming.zone import Zone, ZoneKeys
from repro.naming.persistence import DurableNamingStore
from repro.storage.wal import FRAME_HEADER
from repro.util.encoding import canonical_bytes, from_canonical_bytes
from tests.conftest import EPOCH, fast_keys


@pytest.fixture(scope="module")
def zone_keys():
    """One admin key ceremony, shared by 'both boots' of the service."""
    return {
        "": ZoneKeys(zone="", keys=fast_keys()),
        "nl": ZoneKeys(zone="nl", keys=fast_keys()),
        "nl/vu": ZoneKeys(zone="nl/vu", keys=fast_keys()),
    }


def build_service(zone_keys):
    service = NameService(SignedZone(Zone(""), keys=zone_keys[""]))
    service.add_zone(SignedZone(Zone("nl"), keys=zone_keys["nl"]))
    service.add_zone(SignedZone(Zone("nl/vu"), keys=zone_keys["nl/vu"]))
    return service


def bound_store(tmp_path, zone_keys):
    service = build_service(zone_keys)
    store = DurableNamingStore(os.path.join(str(tmp_path), "naming"), sync=False)
    store.bind(service)
    return service, store


class TestRecordRecovery:
    def test_records_survive_restart(self, tmp_path, zone_keys, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        service, store = bound_store(tmp_path, zone_keys)
        service.register(OidRecord(name="vu.nl/doc", oid=oid, ttl=300.0))
        service.register(OidRecord(name="toplevel.example", oid=oid, ttl=600.0))
        store.close()

        restarted, store2 = bound_store(tmp_path, zone_keys)
        assert store2.recovered_records == 2
        assert restarted.zone("nl/vu").zone.lookup("vu.nl/doc").oid.hex == oid.hex
        assert restarted.zone("").zone.lookup("toplevel.example").ttl == 600.0
        store2.close()

    def test_recovered_records_are_freshly_signed(self, tmp_path, zone_keys, shared_keys):
        """The restarted zone re-signs what it re-registers: the proof a
        resolver gets after the restart verifies against the live keys."""
        oid = ObjectId.from_public_key(shared_keys.public)
        service, store = bound_store(tmp_path, zone_keys)
        service.register(OidRecord(name="vu.nl/doc", oid=oid, ttl=300.0))
        store.close()

        restarted, store2 = bound_store(tmp_path, zone_keys)
        signed = restarted.zone("nl/vu").signed_lookup("vu.nl/doc")
        signed.verify(restarted.zone("nl/vu").public_key)
        store2.close()

    def test_reregistration_overwrites_not_duplicates(self, tmp_path, zone_keys, shared_keys):
        """The reduced view keys records by name: re-publishing a name
        journals twice but recovers once, with the latest binding."""
        oid_a = ObjectId.from_public_key(shared_keys.public)
        oid_b = ObjectId.from_public_key(fast_keys().public)
        service, store = bound_store(tmp_path, zone_keys)
        service.register(OidRecord(name="vu.nl/doc", oid=oid_a, ttl=300.0))
        service.register(OidRecord(name="vu.nl/doc", oid=oid_b, ttl=300.0))
        store.close()

        restarted, store2 = bound_store(tmp_path, zone_keys)
        assert store2.recovered_records == 1
        assert restarted.zone("nl/vu").zone.lookup("vu.nl/doc").oid.hex == oid_b.hex
        store2.close()

    def test_recovery_from_snapshot(self, tmp_path, zone_keys, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        service, store = bound_store(tmp_path, zone_keys)
        service.register(OidRecord(name="vu.nl/doc", oid=oid, ttl=300.0))
        store.compact()
        assert store.store.journal_length == 0
        store.close()

        restarted, store2 = bound_store(tmp_path, zone_keys)
        assert store2.recovered_records == 1
        assert restarted.zone("nl/vu").zone.lookup("vu.nl/doc").oid.hex == oid.hex
        store2.close()


class TestForwardingRecovery:
    def forward(self, old_keys, new_keys):
        return ForwardingRecord.issue(
            old_keys,
            ObjectId.from_public_key(old_keys.public),
            ObjectId.from_public_key(new_keys.public),
            issued_at=EPOCH,
        )

    def test_forwarding_survives_restart(self, tmp_path, zone_keys, shared_keys, other_keys):
        record = self.forward(shared_keys, other_keys)
        service, store = bound_store(tmp_path, zone_keys)
        service.register_forwarding(record)
        store.close()

        restarted, store2 = bound_store(tmp_path, zone_keys)
        assert store2.recovered_forwards == 1
        answer = restarted.forward_for(record.from_oid.hex)
        recovered = ForwardingRecord.from_dict(answer["record"])
        recovered.verify()
        assert recovered.to_oid.hex == record.to_oid.hex
        store2.close()

    def test_tampered_forward_fails_recovery_closed(
        self, tmp_path, zone_keys, shared_keys, other_keys
    ):
        """A forwarding record whose redirect target was rewritten at
        rest would send every holder of the old OID to the attacker's
        object — recovery must refuse it, not re-serve it."""
        record = self.forward(shared_keys, other_keys)
        service, store = bound_store(tmp_path, zone_keys)
        service.register_forwarding(record)
        store.close()

        attacker_oid = ObjectId.from_public_key(fast_keys().public)
        wal_path = os.path.join(str(tmp_path), "naming", "wal.log")
        with open(wal_path, "rb") as fh:
            data = fh.read()
        length, _ = FRAME_HEADER.unpack_from(data, 0)
        frame = from_canonical_bytes(data[FRAME_HEADER.size : FRAME_HEADER.size + length])
        body = frame["__record__"]["record"]["body"]
        body["to_oid"] = attacker_oid.to_dict()
        payload = canonical_bytes(frame)
        with open(wal_path, "wb") as fh:
            fh.write(FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
            fh.write(payload)

        fresh = build_service(zone_keys)
        store2 = DurableNamingStore(os.path.join(str(tmp_path), "naming"), sync=False)
        with pytest.raises(RecoveryIntegrityError, match="tampered redirect"):
            store2.bind(fresh)
        store2.close()


class TestJournalHygiene:
    def test_replay_does_not_rejournal(self, tmp_path, zone_keys, shared_keys):
        """Recovery must not append what it replays: restarting twice
        leaves the journal the same size, not doubled."""
        oid = ObjectId.from_public_key(shared_keys.public)
        service, store = bound_store(tmp_path, zone_keys)
        service.register(OidRecord(name="vu.nl/doc", oid=oid, ttl=300.0))
        length_after_publish = store.store.journal_length
        store.close()

        for _ in range(2):
            _, store_n = bound_store(tmp_path, zone_keys)
            assert store_n.store.journal_length == length_after_publish
            store_n.close()

    def test_unknown_journal_op_refused(self, tmp_path, zone_keys):
        store = DurableNamingStore(os.path.join(str(tmp_path), "naming"), sync=False)
        store.store.append({"op": "drop-all-zones"})
        store.close()

        fresh = build_service(zone_keys)
        store2 = DurableNamingStore(os.path.join(str(tmp_path), "naming"), sync=False)
        with pytest.raises(RecoveryIntegrityError, match="unknown operation"):
            store2.bind(fresh)
        store2.close()
