"""Resource records and name normalisation."""

from __future__ import annotations

import pytest

from repro.errors import NamingError
from repro.globedoc.oid import ObjectId
from repro.naming.records import (
    OidRecord,
    normalize_name,
    parent_zone,
    split_name,
)


class TestNormalize:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("vu.nl", "vu.nl"),
            ("VU.NL", "vu.nl"),
            (" vu.nl/Research ", "vu.nl/Research"),
            ("/vu.nl/a/", "vu.nl/a"),
        ],
    )
    def test_normalization(self, raw, expected):
        assert normalize_name(raw) == expected

    @pytest.mark.parametrize("raw", ["", "   ", "///", None, 42])
    def test_invalid(self, raw):
        with pytest.raises(NamingError):
            normalize_name(raw)  # type: ignore[arg-type]

    def test_too_long(self):
        with pytest.raises(NamingError):
            normalize_name("a" * 300)


class TestSplit:
    def test_dns_part_reverses(self):
        assert split_name("vu.nl") == ["nl", "vu"]

    def test_path_appends(self):
        assert split_name("vu.nl/research/report") == ["nl", "vu", "research", "report"]

    def test_single_label(self):
        assert split_name("localhost") == ["localhost"]


class TestParentZone:
    def test_chain(self):
        assert parent_zone("nl/vu/research") == "nl/vu"
        assert parent_zone("nl/vu") == "nl"
        assert parent_zone("nl") == ""
        assert parent_zone("") is None


class TestOidRecord:
    def test_roundtrip(self, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        record = OidRecord(name="VU.nl/doc", oid=oid, ttl=120.0)
        assert record.name == "vu.nl/doc"  # normalised at construction
        restored = OidRecord.from_dict(record.to_dict())
        assert restored == record

    def test_bad_ttl(self, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        with pytest.raises(NamingError):
            OidRecord(name="vu.nl", oid=oid, ttl=0)

    def test_wrong_type_rejected(self):
        with pytest.raises(NamingError):
            OidRecord.from_dict({"type": "A", "name": "vu.nl"})
