"""DNSsec-style signing: delegation records, chain validation, attacks."""

from __future__ import annotations

import pytest

from repro.errors import NameNotFound, ZoneValidationError
from repro.globedoc.oid import ObjectId
from repro.naming.dnssec import ChainValidator, DelegationRecord, SignedZone
from repro.naming.records import OidRecord
from repro.naming.zone import Zone, ZoneKeys
from tests.conftest import fast_keys


@pytest.fixture
def oid(shared_keys):
    return ObjectId.from_public_key(shared_keys.public)


@pytest.fixture
def chain_setup(oid):
    """root -> nl -> nl/vu with a record in nl/vu."""
    root = SignedZone(Zone(""), keys=ZoneKeys(zone="", keys=fast_keys()))
    nl = SignedZone(Zone("nl"), keys=ZoneKeys(zone="nl", keys=fast_keys()))
    vu = SignedZone(Zone("nl/vu"), keys=ZoneKeys(zone="nl/vu", keys=fast_keys()))
    d1 = root.delegate(nl)
    d2 = nl.delegate(vu)
    signed = vu.add_record(OidRecord(name="vu.nl/doc", oid=oid))
    return root, nl, vu, [d1, d2], signed


class TestSignedZone:
    def test_signed_lookup(self, chain_setup, oid):
        _, _, vu, _, _ = chain_setup
        signed = vu.signed_lookup("vu.nl/doc")
        assert signed.verify(vu.public_key).oid == oid

    def test_lookup_missing(self, chain_setup):
        _, _, vu, _, _ = chain_setup
        with pytest.raises(NameNotFound):
            vu.signed_lookup("vu.nl/ghost")

    def test_delegation_requires_immediate_child(self):
        root = SignedZone(Zone(""), keys=ZoneKeys(zone="", keys=fast_keys()))
        grandchild = SignedZone(
            Zone("nl/vu"), keys=ZoneKeys(zone="nl/vu", keys=fast_keys())
        )
        with pytest.raises(ZoneValidationError):
            root.delegate(grandchild)

    def test_delegation_record_lookup(self, chain_setup):
        root, _, _, _, _ = chain_setup
        assert root.delegation_record("nl").child_zone == "nl"
        with pytest.raises(NameNotFound):
            root.delegation_record("com")


class TestChainValidation:
    def test_valid_chain(self, chain_setup, oid):
        root, _, _, chain, signed = chain_setup
        validator = ChainValidator(root.public_key)
        record = validator.validate(chain, signed)
        assert record.oid == oid
        assert record.name == "vu.nl/doc"

    def test_wrong_trust_anchor_rejected(self, chain_setup, other_keys):
        _, _, _, chain, signed = chain_setup
        validator = ChainValidator(other_keys.public)
        with pytest.raises(ZoneValidationError):
            validator.validate(chain, signed)

    def test_truncated_chain_rejected(self, chain_setup):
        root, _, _, chain, signed = chain_setup
        validator = ChainValidator(root.public_key)
        with pytest.raises(ZoneValidationError):
            validator.validate(chain[:1], signed)  # record key won't verify

    def test_record_signed_by_impostor_zone_rejected(self, chain_setup, oid):
        """An attacker with their own 'nl/vu' key cannot forge records:
        the delegation chain pins the real child key."""
        root, _, _, chain, _ = chain_setup
        impostor = SignedZone(
            Zone("nl/vu"), keys=ZoneKeys(zone="nl/vu", keys=fast_keys())
        )
        forged = impostor.add_record(
            OidRecord(name="vu.nl/doc", oid=ObjectId(digest=b"\x66" * 20))
        )
        validator = ChainValidator(root.public_key)
        with pytest.raises(ZoneValidationError):
            validator.validate(chain, forged)

    def test_forged_delegation_rejected(self, chain_setup, oid):
        """An attacker cannot splice their own delegation into the chain."""
        root, nl, vu, chain, signed = chain_setup
        attacker = fast_keys()
        fake_delegation = DelegationRecord.issue(attacker, "nl/vu", attacker.public)
        validator = ChainValidator(root.public_key)
        with pytest.raises(ZoneValidationError):
            validator.validate([chain[0], fake_delegation], signed)

    def test_level_skipping_rejected(self, oid):
        """A delegation jumping levels ('' -> 'nl/vu') must not validate:
        every zone boundary must be vouched for."""
        root = SignedZone(Zone(""), keys=ZoneKeys(zone="", keys=fast_keys()))
        vu_keys = fast_keys()
        vu = SignedZone(Zone("nl/vu"), keys=ZoneKeys(zone="nl/vu", keys=vu_keys))
        skip = DelegationRecord.issue(root.keys.keys, "nl/vu", vu.public_key)
        signed = vu.add_record(OidRecord(name="vu.nl/doc", oid=oid))
        validator = ChainValidator(root.public_key)
        with pytest.raises(ZoneValidationError, match="skips"):
            validator.validate([skip], signed)

    def test_sibling_zone_chain_rejected(self, chain_setup, oid):
        """A chain for one zone cannot authenticate a record from a
        sibling (zone-path nesting check)."""
        root, nl, _, chain, _ = chain_setup
        uva = SignedZone(Zone("nl/uva"), keys=ZoneKeys(zone="nl/uva", keys=fast_keys()))
        nl.delegate(uva)
        record = uva.add_record(OidRecord(name="uva.nl/doc", oid=oid))
        # Chain leads to nl/vu but record is signed by nl/uva.
        validator = ChainValidator(root.public_key)
        with pytest.raises(ZoneValidationError):
            validator.validate(chain, record)

    def test_dict_roundtrip(self, chain_setup, oid):
        root, _, _, chain, signed = chain_setup
        rebuilt_chain = [DelegationRecord.from_dict(d.to_dict()) for d in chain]
        from repro.naming.dnssec import SignedOidRecord

        rebuilt_record = SignedOidRecord.from_dict(signed.to_dict())
        record = ChainValidator(root.public_key).validate(rebuilt_chain, rebuilt_record)
        assert record.oid == oid
