"""The naming service + secure resolver over RPC."""

from __future__ import annotations

import pytest

from repro.errors import NameNotFound, NamingError, RpcError, ZoneValidationError
from repro.globedoc.oid import ObjectId
from repro.naming.dnssec import SignedZone
from repro.naming.records import OidRecord
from repro.naming.service import NameService, SecureResolver
from repro.naming.zone import Zone, ZoneKeys
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from repro.sim.clock import SimClock
from tests.conftest import EPOCH, fast_keys


@pytest.fixture
def oid(shared_keys):
    return ObjectId.from_public_key(shared_keys.public)


@pytest.fixture
def service(oid):
    root = SignedZone(Zone(""), keys=ZoneKeys(zone="", keys=fast_keys()))
    service = NameService(root)
    nl = SignedZone(Zone("nl"), keys=ZoneKeys(zone="nl", keys=fast_keys()))
    vu = SignedZone(Zone("nl/vu"), keys=ZoneKeys(zone="nl/vu", keys=fast_keys()))
    service.add_zone(nl)
    service.add_zone(vu)
    service.register(OidRecord(name="vu.nl/doc", oid=oid, ttl=300.0))
    service.register(OidRecord(name="toplevel.example", oid=oid, ttl=300.0))
    return service


def wire_resolver(service, clock, iterative=True, anchor=None):
    transport = LoopbackTransport()
    endpoint = Endpoint(host="ns", service="naming")
    transport.register(endpoint, service.rpc_server().handle_frame)
    return SecureResolver(
        RpcClient(transport),
        endpoint,
        anchor if anchor is not None else service.root_key,
        clock=clock,
        iterative=iterative,
    ), transport


class TestService:
    def test_register_routes_to_deepest_zone(self, service):
        assert service.zone("nl/vu").zone.lookup("vu.nl/doc") is not None
        with pytest.raises(NameNotFound):
            service.zone("nl").zone.lookup("vu.nl/doc")

    def test_root_zone_must_be_root(self):
        nonroot = SignedZone(Zone("nl"), keys=ZoneKeys(zone="nl", keys=fast_keys()))
        with pytest.raises(NamingError):
            NameService(nonroot)

    def test_orphan_zone_rejected(self, service):
        orphan = SignedZone(
            Zone("com/example"), keys=ZoneKeys(zone="com/example", keys=fast_keys())
        )
        with pytest.raises(NamingError, match="parent"):
            service.add_zone(orphan)


@pytest.mark.parametrize("iterative", [True, False], ids=["iterative", "one-shot"])
class TestResolution:
    def test_resolve_delegated(self, service, clock, oid, iterative):
        resolver, _ = wire_resolver(service, clock, iterative)
        result = resolver.resolve("vu.nl/doc")
        assert result.oid == oid
        assert result.chain_length == 2

    def test_resolve_root_level(self, service, clock, oid, iterative):
        resolver, _ = wire_resolver(service, clock, iterative)
        result = resolver.resolve("toplevel.example")
        assert result.oid == oid
        assert result.chain_length == 0

    def test_missing_name(self, service, clock, iterative):
        resolver, _ = wire_resolver(service, clock, iterative)
        with pytest.raises((NameNotFound, RpcError)):
            resolver.resolve("ghost.example")

    def test_wrong_anchor_rejected(self, service, clock, other_keys, iterative):
        resolver, _ = wire_resolver(service, clock, iterative, anchor=other_keys.public)
        with pytest.raises(ZoneValidationError):
            resolver.resolve("vu.nl/doc")


class TestCaching:
    def test_cache_hit_within_ttl(self, service, clock, oid):
        resolver, transport = wire_resolver(service, clock)
        first = resolver.resolve("vu.nl/doc")
        requests_after_first = transport.stats.requests
        second = resolver.resolve("vu.nl/doc")
        assert second.from_cache
        assert not first.from_cache
        assert transport.stats.requests == requests_after_first

    def test_cache_expires_with_ttl(self, service, clock):
        resolver, transport = wire_resolver(service, clock)
        resolver.resolve("vu.nl/doc")
        count = transport.stats.requests
        clock.advance(301.0)  # past the 300 s TTL
        result = resolver.resolve("vu.nl/doc")
        assert not result.from_cache
        assert transport.stats.requests > count

    def test_flush(self, service, clock):
        resolver, _ = wire_resolver(service, clock)
        resolver.resolve("vu.nl/doc")
        assert resolver.cache_size == 1
        resolver.flush_cache()
        assert resolver.cache_size == 0

    def test_iterative_costs_more_requests(self, service, clock):
        it, t_it = wire_resolver(service, clock, iterative=True)
        one, t_one = wire_resolver(service, clock, iterative=False)
        it.resolve("vu.nl/doc")
        one.resolve("vu.nl/doc")
        assert t_it.stats.requests == 3  # root, nl, nl/vu
        assert t_one.stats.requests == 1
