"""Zone key rollover: rotation, re-delegation, fail-closed windows."""

from __future__ import annotations

import pytest

from repro.errors import ZoneValidationError
from repro.globedoc.oid import ObjectId
from repro.naming.dnssec import ChainValidator, SignedZone
from repro.naming.records import OidRecord
from repro.naming.zone import Zone, ZoneKeys
from tests.conftest import fast_keys


@pytest.fixture
def chain(shared_keys):
    oid = ObjectId.from_public_key(shared_keys.public)
    root = SignedZone(Zone(""), keys=ZoneKeys(zone="", keys=fast_keys()))
    nl = SignedZone(Zone("nl"), keys=ZoneKeys(zone="nl", keys=fast_keys()))
    d1 = root.delegate(nl)
    signed = nl.add_record(OidRecord(name="vu.nl", oid=oid))
    return oid, root, nl, d1, signed


class TestRollover:
    def test_rotation_invalidates_until_redelegated(self, chain):
        """Between child rotation and parent re-delegation, validation
        fails closed — stale keys never validate silently."""
        oid, root, nl, d1, _ = chain
        nl.rotate_keys(ZoneKeys(zone="nl", keys=fast_keys()))
        fresh_record = nl.signed_lookup("vu.nl")
        validator = ChainValidator(root.public_key)
        with pytest.raises(ZoneValidationError):
            validator.validate([d1], fresh_record)  # old DS, new signer

    def test_redelegation_restores_validation(self, chain):
        oid, root, nl, _, _ = chain
        nl.rotate_keys(ZoneKeys(zone="nl", keys=fast_keys()))
        new_delegation = root.redelegate(nl)
        record = ChainValidator(root.public_key).validate(
            [new_delegation], nl.signed_lookup("vu.nl")
        )
        assert record.oid == oid

    def test_rotation_resigns_existing_records(self, chain):
        oid, root, nl, _, old_signed = chain
        old_key = nl.public_key
        nl.rotate_keys()
        new_signed = nl.signed_lookup("vu.nl")
        # Same binding, new signature under the new key.
        assert new_signed.record.oid == oid
        new_signed.verify(nl.public_key)
        with pytest.raises(ZoneValidationError):
            new_signed.verify(old_key)

    def test_rotation_resigns_child_delegations(self, chain):
        """A zone with children re-signs its DS-style records too."""
        oid, root, nl, _, _ = chain
        vu = SignedZone(Zone("nl/vu"), keys=ZoneKeys(zone="nl/vu", keys=fast_keys()))
        nl.delegate(vu)
        vu_record = vu.add_record(OidRecord(name="vu.nl/deep", oid=oid))

        nl.rotate_keys()
        root_to_nl = root.redelegate(nl)
        nl_to_vu = nl.delegation_record("nl/vu")
        record = ChainValidator(root.public_key).validate(
            [root_to_nl, nl_to_vu], vu_record
        )
        assert record.name == "vu.nl/deep"

    def test_redelegate_unknown_child_rejected(self, chain):
        _, root, nl, _, _ = chain
        stranger = SignedZone(Zone("com"), keys=ZoneKeys(zone="com", keys=fast_keys()))
        with pytest.raises(ZoneValidationError):
            root.redelegate(stranger)

    def test_root_rotation_requires_new_trust_anchor(self, chain):
        """Rotating the root is a trust-anchor change: clients pinning
        the old anchor reject everything (the DNSsec root-KSK story)."""
        oid, root, nl, _, _ = chain
        old_anchor = root.public_key
        root.rotate_keys()
        new_delegation = root.delegation_record("nl")
        record = nl.signed_lookup("vu.nl")
        with pytest.raises(ZoneValidationError):
            ChainValidator(old_anchor).validate([new_delegation], record)
        assert (
            ChainValidator(root.public_key)
            .validate([new_delegation], record)
            .oid
            == oid
        )
