"""Zones: authority, records, delegation."""

from __future__ import annotations

import pytest

from repro.errors import NameNotFound, NamingError
from repro.globedoc.oid import ObjectId
from repro.naming.records import OidRecord
from repro.naming.zone import Zone


@pytest.fixture
def oid(shared_keys):
    return ObjectId.from_public_key(shared_keys.public)


class TestAuthority:
    def test_root_covers_everything(self, oid):
        zone = Zone("")
        zone.add_record(OidRecord(name="anything.example/x", oid=oid))

    def test_zone_covers_own_subtree(self, oid):
        zone = Zone("nl/vu")
        zone.add_record(OidRecord(name="vu.nl/doc", oid=oid))

    def test_zone_rejects_foreign_name(self, oid):
        zone = Zone("nl/vu")
        with pytest.raises(NamingError, match="not authoritative"):
            zone.add_record(OidRecord(name="example.com/doc", oid=oid))


class TestRecords:
    def test_lookup(self, oid):
        zone = Zone("")
        zone.add_record(OidRecord(name="vu.nl", oid=oid))
        assert zone.lookup("VU.NL").oid == oid

    def test_missing(self):
        with pytest.raises(NameNotFound):
            Zone("").lookup("ghost.example")

    def test_remove(self, oid):
        zone = Zone("")
        zone.add_record(OidRecord(name="vu.nl", oid=oid))
        zone.remove_record("vu.nl")
        with pytest.raises(NameNotFound):
            zone.lookup("vu.nl")
        with pytest.raises(NameNotFound):
            zone.remove_record("vu.nl")

    def test_records_sorted(self, oid):
        zone = Zone("")
        zone.add_record(OidRecord(name="z.example", oid=oid))
        zone.add_record(OidRecord(name="a.example", oid=oid))
        assert [r.name for r in zone.records] == ["a.example", "z.example"]

    def test_multiple_names_same_oid(self, oid):
        """An object may have several names resolving to one OID (§2.1.1)."""
        zone = Zone("")
        zone.add_record(OidRecord(name="alias1.example", oid=oid))
        zone.add_record(OidRecord(name="alias2.example", oid=oid))
        assert zone.lookup("alias1.example").oid == zone.lookup("alias2.example").oid


class TestDelegation:
    def test_delegate_and_route(self, oid):
        root = Zone("")
        child_path = root.delegate("nl")
        assert child_path == "nl"
        assert root.delegation_for("vu.nl/doc") == "nl"

    def test_no_delegation_for_unrelated(self):
        root = Zone("")
        root.delegate("nl")
        assert root.delegation_for("example.com") is None

    def test_nested_delegation_path(self):
        nl = Zone("nl")
        assert nl.delegate("vu") == "nl/vu"
        assert nl.delegation_for("vu.nl/doc") == "nl/vu"

    def test_invalid_label(self):
        with pytest.raises(NamingError):
            Zone("").delegate("a/b")
        with pytest.raises(NamingError):
            Zone("").delegate("")
