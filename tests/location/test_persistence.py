"""Durable location state: the address set survives restarts.

The location tree is untrusted-hint infrastructure — no signatures to
re-check — so these tests pin the *availability* contract: every
accepted insert/delete/move is journaled, the reduced address set comes
back after a restart, and replay does not re-journal itself.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import RecoveryIntegrityError
from repro.location.service import LocationService
from repro.location.tree import DomainTree
from repro.location.persistence import DurableLocationStore
from repro.net.address import ContactAddress, Endpoint

SITES = ["root", "root/europe", "root/europe/vu", "root/europe/inria"]


def address(host):
    return ContactAddress(
        endpoint=Endpoint(host=host, service="objectserver"),
        protocol="globedoc/replica",
        replica_id=f"replica@{host}",
    )


def build_service():
    tree = DomainTree()
    for site in SITES:
        tree.add_site(site)
    return LocationService(tree)


def bound_store(tmp_path):
    service = build_service()
    store = DurableLocationStore(os.path.join(str(tmp_path), "location"), sync=False)
    store.bind(service)
    return service, store


OID = "ab" * 20
OTHER_OID = "cd" * 20


class TestRecovery:
    def test_inserts_survive_restart(self, tmp_path):
        service, store = bound_store(tmp_path)
        service.insert(OID, "root/europe/vu", address("ginger").to_dict())
        service.insert(OTHER_OID, "root/europe/inria", address("asterix").to_dict())
        store.close()

        restarted, store2 = bound_store(tmp_path)
        assert store2.recovered_addresses == 2
        answer = restarted.lookup(OID, origin_site="root/europe/vu")
        assert [a["replica_id"] for a in answer["addresses"]] == ["replica@ginger"]
        answer = restarted.lookup(OTHER_OID, origin_site="root/europe/inria")
        assert [a["replica_id"] for a in answer["addresses"]] == ["replica@asterix"]
        store2.close()

    def test_delete_survives_restart(self, tmp_path):
        service, store = bound_store(tmp_path)
        service.insert(OID, "root/europe/vu", address("ginger").to_dict())
        service.delete(OID, "root/europe/vu", address("ginger").to_dict())
        store.close()

        restarted, store2 = bound_store(tmp_path)
        assert store2.recovered_addresses == 0
        from repro.errors import LocationError

        with pytest.raises(LocationError):
            restarted.lookup(OID, origin_site="root/europe/vu")
        store2.close()

    def test_move_survives_restart(self, tmp_path):
        """A replica migration journals as one move; recovery lands the
        address at the destination site only."""
        service, store = bound_store(tmp_path)
        service.insert(OID, "root/europe/vu", address("ginger").to_dict())
        service.move(
            OID,
            address("ginger").to_dict(),
            from_site="root/europe/vu",
            to_site="root/europe/inria",
        )
        store.close()

        restarted, store2 = bound_store(tmp_path)
        assert store2.recovered_addresses == 1
        answer = restarted.lookup(OID, origin_site="root/europe/inria")
        assert [a["replica_id"] for a in answer["addresses"]] == ["replica@ginger"]
        store2.close()

    def test_recovery_from_snapshot(self, tmp_path):
        service, store = bound_store(tmp_path)
        service.insert(OID, "root/europe/vu", address("ginger").to_dict())
        store.compact()
        assert store.store.journal_length == 0
        service.insert(OTHER_OID, "root/europe/vu", address("obelix").to_dict())
        store.close()

        restarted, store2 = bound_store(tmp_path)
        assert store2.recovered_addresses == 2
        for oid, host in [(OID, "ginger"), (OTHER_OID, "obelix")]:
            answer = restarted.lookup(oid, origin_site="root/europe/vu")
            assert [a["replica_id"] for a in answer["addresses"]] == [f"replica@{host}"]
        store2.close()

    def test_replay_does_not_rejournal(self, tmp_path):
        service, store = bound_store(tmp_path)
        service.insert(OID, "root/europe/vu", address("ginger").to_dict())
        length = store.store.journal_length
        store.close()

        for _ in range(2):
            _, store_n = bound_store(tmp_path)
            assert store_n.store.journal_length == length
            store_n.close()


class TestFailClosed:
    def test_unknown_journal_op_refused(self, tmp_path):
        store = DurableLocationStore(os.path.join(str(tmp_path), "location"), sync=False)
        store.store.append({"op": "reroute-everything"})
        store.close()

        store2 = DurableLocationStore(os.path.join(str(tmp_path), "location"), sync=False)
        with pytest.raises(RecoveryIntegrityError, match="unknown operation"):
            store2.bind(build_service())
        store2.close()

    def test_record_for_missing_site_refused(self, tmp_path):
        """An address naming a site the restarted tree does not have is
        surfaced as a recovery error, not silently dropped — the
        operator must reconcile topology, not lose replicas quietly."""
        service, store = bound_store(tmp_path)
        service.insert(OID, "root/europe/vu", address("ginger").to_dict())
        store.close()

        bare = LocationService(DomainTree())
        bare.add_site("root")  # topology shrank: vu is gone
        store2 = DurableLocationStore(os.path.join(str(tmp_path), "location"), sync=False)
        with pytest.raises(RecoveryIntegrityError, match="refused by the live tree"):
            store2.bind(bare)
        store2.close()
