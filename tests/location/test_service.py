"""The location service over RPC, with its client cache."""

from __future__ import annotations

import pytest

from repro.errors import ObjectNotFound
from repro.globedoc.oid import ObjectId
from repro.location.service import LocationClient, LocationService
from repro.location.tree import DomainTree
from repro.net.address import ContactAddress, Endpoint
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from repro.sim.clock import SimClock


def addr(host: str, replica: str = "r") -> ContactAddress:
    return ContactAddress(
        endpoint=Endpoint(host=host, service="objectserver"), replica_id=replica
    )


@pytest.fixture
def wired(clock, shared_keys):
    tree = DomainTree()
    for site in ("root/europe/vu", "root/us/cornell"):
        tree.add_site(site)
    service = LocationService(tree)
    transport = LoopbackTransport()
    endpoint = Endpoint(host="ls", service="location")
    transport.register(endpoint, service.rpc_server().handle_frame)
    client = LocationClient(
        RpcClient(transport),
        endpoint,
        origin_site="root/us/cornell",
        clock=clock,
        cache_ttl=30.0,
    )
    oid = ObjectId.from_public_key(shared_keys.public)
    return service, client, transport, oid


class TestLookup:
    def test_register_then_lookup(self, wired):
        service, client, _, oid = wired
        client.register_replica(oid, "root/europe/vu", addr("ginger"))
        result = client.lookup(oid)
        assert result.closest.host == "ginger"
        assert result.nodes_visited > 0
        assert not result.from_cache

    def test_missing_object(self, wired):
        _, client, _, oid = wired
        with pytest.raises(ObjectNotFound):
            client.lookup(oid)

    def test_cache_hit(self, wired):
        _, client, transport, oid = wired
        client.register_replica(oid, "root/europe/vu", addr("ginger"))
        client.lookup(oid)
        requests = transport.stats.requests
        second = client.lookup(oid)
        assert second.from_cache
        assert second.nodes_visited == 0
        assert transport.stats.requests == requests

    def test_registration_invalidates_cache(self, wired):
        _, client, _, oid = wired
        client.register_replica(oid, "root/europe/vu", addr("ginger"))
        client.lookup(oid)
        client.register_replica(oid, "root/us/cornell", addr("cornell-box"))
        result = client.lookup(oid)
        assert not result.from_cache
        # The local replica now wins for a Cornell-origin lookup.
        assert result.closest.host == "cornell-box"

    def test_unregister(self, wired):
        _, client, _, oid = wired
        a = addr("ginger")
        client.register_replica(oid, "root/europe/vu", a)
        client.unregister_replica(oid, "root/europe/vu", a)
        with pytest.raises(ObjectNotFound):
            client.lookup(oid)

    def test_explicit_invalidate(self, wired):
        _, client, transport, oid = wired
        client.register_replica(oid, "root/europe/vu", addr("ginger"))
        client.lookup(oid)
        client.invalidate(oid)
        result = client.lookup(oid)
        assert not result.from_cache

    def test_move_rpc(self, wired):
        service, client, transport, oid = wired
        a = addr("roaming")
        client.register_replica(oid, "root/europe/vu", a)
        rpc = RpcClient(transport)
        rpc.call(
            Endpoint(host="ls", service="location"),
            "location.move",
            oid=oid.hex,
            address=a.to_dict(),
            from_site="root/europe/vu",
            to_site="root/us/cornell",
        )
        client.invalidate(oid)
        assert client.lookup(oid).closest.host == "roaming"
        assert service.tree.addresses_at(oid.hex, "root/europe/vu") == []

    def test_empty_result_raises_on_closest(self):
        from repro.errors import LocationError
        from repro.location.service import LookupResult

        empty = LookupResult(oid_hex="00", addresses=[], nodes_visited=1)
        with pytest.raises(LocationError):
            empty.closest
