"""The location domain tree: expanding rings, pointer maintenance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LocationError, ObjectNotFound
from repro.location.tree import DomainTree
from repro.net.address import ContactAddress, Endpoint


def addr(host: str, replica: str = "r") -> ContactAddress:
    return ContactAddress(
        endpoint=Endpoint(host=host, service="objectserver"), replica_id=replica
    )


@pytest.fixture
def tree():
    t = DomainTree()
    for site in (
        "root/europe/vu",
        "root/europe/inria",
        "root/us/cornell",
        "root/us/mit",
    ):
        t.add_site(site)
    return t


OID = "aa" * 20


class TestConstruction:
    def test_sites(self, tree):
        assert tree.site_paths == [
            "root/europe/inria",
            "root/europe/vu",
            "root/us/cornell",
            "root/us/mit",
        ]

    def test_wrong_root_rejected(self, tree):
        with pytest.raises(LocationError):
            tree.add_site("other/x")

    def test_unknown_site_rejected(self, tree):
        with pytest.raises(LocationError):
            tree.site("root/mars/base")

    def test_depth(self, tree):
        assert tree.depth_of("root/europe/vu") == 2
        assert tree.depth_of("root") == 0


class TestInsertLookup:
    def test_insert_touches_path_to_root(self, tree):
        touched = tree.insert(OID, "root/europe/vu", addr("ginger"))
        assert touched == 3  # site + europe + root

    def test_local_lookup_stops_at_site(self, tree):
        tree.insert(OID, "root/europe/vu", addr("ginger"))
        addresses, visited = tree.lookup(OID, "root/europe/vu")
        assert [a.host for a in addresses] == ["ginger"]
        assert visited == 1

    def test_regional_lookup(self, tree):
        tree.insert(OID, "root/europe/vu", addr("ginger"))
        addresses, visited = tree.lookup(OID, "root/europe/inria")
        assert [a.host for a in addresses] == ["ginger"]
        # inria site (miss), europe region, vu site.
        assert visited == 3

    def test_cross_region_lookup_goes_to_root(self, tree):
        tree.insert(OID, "root/europe/vu", addr("ginger"))
        addresses, visited = tree.lookup(OID, "root/us/cornell")
        assert [a.host for a in addresses] == ["ginger"]
        assert visited > 3

    def test_closest_replica_first(self, tree):
        tree.insert(OID, "root/europe/vu", addr("ginger"))
        tree.insert(OID, "root/us/cornell", addr("cornell-box"))
        addresses, _ = tree.lookup(OID, "root/us/mit")
        # The US replica is in the smaller enclosing ring for MIT.
        assert addresses[0].host == "cornell-box"

    def test_missing_object(self, tree):
        with pytest.raises(ObjectNotFound):
            tree.lookup(OID, "root/europe/vu")

    def test_multiple_addresses_per_site(self, tree):
        tree.insert(OID, "root/europe/vu", addr("ginger", "r1"))
        tree.insert(OID, "root/europe/vu", addr("ginger", "r2"))
        addresses, _ = tree.lookup(OID, "root/europe/vu")
        assert len(addresses) == 2


class TestDelete:
    def test_delete_prunes_pointers(self, tree):
        a = addr("ginger")
        tree.insert(OID, "root/europe/vu", a)
        tree.delete(OID, "root/europe/vu", a)
        with pytest.raises(ObjectNotFound):
            tree.lookup(OID, "root/europe/vu")
        assert tree.total_records() == 0

    def test_delete_keeps_other_sites(self, tree):
        a, b = addr("ginger"), addr("cornell-box")
        tree.insert(OID, "root/europe/vu", a)
        tree.insert(OID, "root/us/cornell", b)
        tree.delete(OID, "root/europe/vu", a)
        addresses, _ = tree.lookup(OID, "root/europe/vu")
        assert [x.host for x in addresses] == ["cornell-box"]

    def test_delete_one_of_two_at_site(self, tree):
        a1, a2 = addr("ginger", "r1"), addr("ginger", "r2")
        tree.insert(OID, "root/europe/vu", a1)
        tree.insert(OID, "root/europe/vu", a2)
        tree.delete(OID, "root/europe/vu", a1)
        addresses, _ = tree.lookup(OID, "root/europe/vu")
        assert len(addresses) == 1

    def test_delete_missing_rejected(self, tree):
        with pytest.raises(ObjectNotFound):
            tree.delete(OID, "root/europe/vu", addr("ghost"))

    def test_move(self, tree):
        a = addr("roaming")
        tree.insert(OID, "root/europe/vu", a)
        tree.move(OID, a, "root/europe/vu", "root/us/mit")
        assert tree.addresses_at(OID, "root/europe/vu") == []
        assert [x.host for x in tree.addresses_at(OID, "root/us/mit")] == ["roaming"]


class TestInvariants:
    """Property: after arbitrary insert/delete sequences, every recorded
    address is findable from every site, and pointer state is exactly
    consistent with address placement."""

    @given(
        st.lists(
            st.tuples(
                st.booleans(),  # True = insert, False = delete
                st.integers(min_value=0, max_value=3),  # site index
                st.integers(min_value=0, max_value=2),  # replica id
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_lookup_finds_all_or_raises(self, ops):
        tree = DomainTree()
        sites = [
            "root/europe/vu",
            "root/europe/inria",
            "root/us/cornell",
            "root/us/mit",
        ]
        for s in sites:
            tree.add_site(s)
        placed = set()
        for is_insert, site_idx, rid in ops:
            site = sites[site_idx]
            a = addr(f"host{site_idx}", f"r{rid}")
            key = (site, a)
            if is_insert:
                if key not in placed:
                    tree.insert(OID, site, a)
                    placed.add(key)
            elif key in placed:
                tree.delete(OID, site, a)
                placed.discard(key)
        expected = {a for (_, a) in placed}
        for origin in sites:
            if expected:
                found, _ = tree.lookup(OID, origin)
                assert set(tree.all_addresses(OID)) == expected
                assert set(found) <= expected
                assert found  # something is always found when placed
            else:
                with pytest.raises(ObjectNotFound):
                    tree.lookup(OID, origin)
                assert tree.total_records() == 0
