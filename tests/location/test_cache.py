"""The client-side address cache."""

from __future__ import annotations

import pytest

from repro.location.cache import AddressCache
from repro.net.address import ContactAddress, Endpoint
from repro.sim.clock import SimClock


def addr(host: str) -> ContactAddress:
    return ContactAddress(endpoint=Endpoint(host=host, service="s"))


class TestCache:
    def test_put_get(self):
        cache = AddressCache(clock=SimClock(0.0), ttl=10.0)
        cache.put("oid1", [addr("a")])
        assert [a.host for a in cache.get("oid1")] == ["a"]

    def test_miss(self):
        cache = AddressCache(clock=SimClock(0.0))
        assert cache.get("ghost") is None

    def test_ttl_expiry(self):
        clock = SimClock(0.0)
        cache = AddressCache(clock=clock, ttl=10.0)
        cache.put("oid1", [addr("a")])
        clock.advance(10.0)
        assert cache.get("oid1") is None

    def test_just_before_expiry(self):
        clock = SimClock(0.0)
        cache = AddressCache(clock=clock, ttl=10.0)
        cache.put("oid1", [addr("a")])
        clock.advance(9.999)
        assert cache.get("oid1") is not None

    def test_invalidate(self):
        cache = AddressCache(clock=SimClock(0.0))
        cache.put("oid1", [addr("a")])
        cache.invalidate("oid1")
        assert cache.get("oid1") is None
        cache.invalidate("oid1")  # idempotent

    def test_eviction_fifo(self):
        cache = AddressCache(clock=SimClock(0.0), max_entries=2)
        cache.put("a", [addr("a")])
        cache.put("b", [addr("b")])
        cache.put("c", [addr("c")])
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert len(cache) == 2

    def test_hit_rate(self):
        cache = AddressCache(clock=SimClock(0.0))
        cache.put("a", [addr("a")])
        cache.get("a")
        cache.get("miss")
        assert cache.hit_rate == pytest.approx(0.5)
        assert cache.hits == 1 and cache.misses == 1

    def test_returns_copy(self):
        cache = AddressCache(clock=SimClock(0.0))
        cache.put("a", [addr("a")])
        got = cache.get("a")
        got.append(addr("b"))
        assert len(cache.get("a")) == 1

    def test_bad_params(self):
        with pytest.raises(ValueError):
            AddressCache(ttl=0)
        with pytest.raises(ValueError):
            AddressCache(max_entries=0)

    def test_clear(self):
        cache = AddressCache(clock=SimClock(0.0))
        cache.put("a", [addr("a")])
        cache.clear()
        assert len(cache) == 0
