"""The client-side address cache."""

from __future__ import annotations

import pytest

from repro.location.cache import AddressCache
from repro.net.address import ContactAddress, Endpoint
from repro.sim.clock import SimClock


def addr(host: str) -> ContactAddress:
    return ContactAddress(endpoint=Endpoint(host=host, service="s"))


class TestCache:
    def test_put_get(self):
        cache = AddressCache(clock=SimClock(0.0), ttl=10.0)
        cache.put("oid1", [addr("a")])
        assert [a.host for a in cache.get("oid1")] == ["a"]

    def test_miss(self):
        cache = AddressCache(clock=SimClock(0.0))
        assert cache.get("ghost") is None

    def test_ttl_expiry(self):
        clock = SimClock(0.0)
        cache = AddressCache(clock=clock, ttl=10.0)
        cache.put("oid1", [addr("a")])
        clock.advance(10.0)
        assert cache.get("oid1") is None

    def test_just_before_expiry(self):
        clock = SimClock(0.0)
        cache = AddressCache(clock=clock, ttl=10.0)
        cache.put("oid1", [addr("a")])
        clock.advance(9.999)
        assert cache.get("oid1") is not None

    def test_invalidate(self):
        cache = AddressCache(clock=SimClock(0.0))
        cache.put("oid1", [addr("a")])
        cache.invalidate("oid1")
        assert cache.get("oid1") is None
        cache.invalidate("oid1")  # idempotent

    def test_eviction_fifo(self):
        cache = AddressCache(clock=SimClock(0.0), max_entries=2)
        cache.put("a", [addr("a")])
        cache.put("b", [addr("b")])
        cache.put("c", [addr("c")])
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert len(cache) == 2

    def test_hit_rate(self):
        cache = AddressCache(clock=SimClock(0.0))
        cache.put("a", [addr("a")])
        cache.get("a")
        cache.get("miss")
        assert cache.hit_rate == pytest.approx(0.5)
        assert cache.hits == 1 and cache.misses == 1

    def test_returns_copy(self):
        cache = AddressCache(clock=SimClock(0.0))
        cache.put("a", [addr("a")])
        got = cache.get("a")
        got.append(addr("b"))
        assert len(cache.get("a")) == 1

    def test_bad_params(self):
        with pytest.raises(ValueError):
            AddressCache(ttl=0)
        with pytest.raises(ValueError):
            AddressCache(max_entries=0)

    def test_clear(self):
        cache = AddressCache(clock=SimClock(0.0))
        cache.put("a", [addr("a")])
        cache.clear()
        assert len(cache) == 0


class TestRefreshEviction:
    """Regressions for the re-put FIFO bug: a refreshed entry must be
    the freshest, and an in-place update must never evict anything."""

    def test_refresh_moves_entry_to_back_of_queue(self):
        cache = AddressCache(clock=SimClock(0.0), max_entries=2)
        cache.put("a", [addr("a")])
        cache.put("b", [addr("b")])
        cache.put("a", [addr("a2")])  # refresh: now fresher than b
        cache.put("c", [addr("c")])  # evicts the stalest — b, not a
        assert cache.get("b") is None
        assert [x.host for x in cache.get("a")] == ["a2"]
        assert cache.get("c") is not None

    def test_update_at_capacity_evicts_nothing(self):
        cache = AddressCache(clock=SimClock(0.0), max_entries=2)
        cache.put("a", [addr("a")])
        cache.put("b", [addr("b")])
        cache.put("b", [addr("b2")])  # update of an existing key
        assert len(cache) == 2
        assert cache.get("a") is not None  # unrelated entry survives
        assert [x.host for x in cache.get("b")] == ["b2"]

    def test_refresh_renews_ttl(self):
        clock = SimClock(0.0)
        cache = AddressCache(clock=clock, ttl=10.0)
        cache.put("a", [addr("a")])
        clock.advance(8.0)
        cache.put("a", [addr("a")])
        clock.advance(8.0)  # 16 s after first put, 8 s after refresh
        assert cache.get("a") is not None
