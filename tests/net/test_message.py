"""Wire messages: framing, error transport, size accounting."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticityError, RpcError, TransportError
from repro.net.message import Request, Response


class TestRequest:
    def test_roundtrip(self):
        req = Request(op="globedoc.get_element", args={"name": "a.html", "n": 3})
        restored = Request.from_bytes(req.to_bytes())
        assert restored.op == req.op
        assert dict(restored.args) == dict(req.args)

    def test_bytes_args(self):
        req = Request(op="x", args={"blob": b"\x00\x01"})
        assert Request.from_bytes(req.to_bytes()).args["blob"] == b"\x00\x01"

    def test_malformed_rejected(self):
        with pytest.raises(TransportError):
            Request.from_bytes(b"garbage")

    def test_response_frame_rejected_as_request(self):
        frame = Response.success(1).to_bytes()
        with pytest.raises(TransportError):
            Request.from_bytes(frame)

    def test_wire_size(self):
        assert Request(op="x").wire_size == len(Request(op="x").to_bytes())


class TestResponse:
    def test_success_roundtrip(self):
        resp = Response.success({"value": [1, 2, 3]})
        restored = Response.from_bytes(resp.to_bytes())
        assert restored.ok
        assert restored.unwrap() == {"value": [1, 2, 3]}

    def test_failure_roundtrip(self):
        resp = Response.failure(AuthenticityError("hash mismatch"))
        restored = Response.from_bytes(resp.to_bytes())
        assert not restored.ok
        assert restored.error_type == "AuthenticityError"
        with pytest.raises(RpcError, match="hash mismatch"):
            restored.unwrap()

    def test_none_value(self):
        assert Response.from_bytes(Response.success(None).to_bytes()).unwrap() is None

    def test_malformed_rejected(self):
        with pytest.raises(TransportError):
            Response.from_bytes(b"\x00\x01")
