"""Wire messages: framing, error transport, size accounting."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticityError, RpcError, TransportError
from repro.net.message import Request, Response


class TestRequest:
    def test_roundtrip(self):
        req = Request(op="globedoc.get_element", args={"name": "a.html", "n": 3})
        restored = Request.from_bytes(req.to_bytes())
        assert restored.op == req.op
        assert dict(restored.args) == dict(req.args)

    def test_bytes_args(self):
        req = Request(op="x", args={"blob": b"\x00\x01"})
        assert Request.from_bytes(req.to_bytes()).args["blob"] == b"\x00\x01"

    def test_malformed_rejected(self):
        with pytest.raises(TransportError):
            Request.from_bytes(b"garbage")

    def test_response_frame_rejected_as_request(self):
        frame = Response.success(1).to_bytes()
        with pytest.raises(TransportError):
            Request.from_bytes(frame)

    def test_wire_size(self):
        assert Request(op="x").wire_size == len(Request(op="x").to_bytes())


class TestRequestTraceContext:
    """The ctx field is advisory: absent means absent on the wire, and
    nothing a peer puts there can make decoding fail."""

    def test_context_roundtrips(self):
        ctx = {"trace": "client-000001", "span": "client:7"}
        req = Request(op="globedoc.get", args={"name": "a"}, ctx=ctx)
        restored = Request.from_bytes(req.to_bytes())
        assert dict(restored.ctx) == ctx

    def test_absent_context_omitted_from_wire(self):
        bare = Request(op="globedoc.get", args={"name": "a"})
        explicit_none = Request(op="globedoc.get", args={"name": "a"}, ctx=None)
        assert bare.to_bytes() == explicit_none.to_bytes()
        assert Request.from_bytes(bare.to_bytes()).ctx is None

    def test_empty_context_treated_as_absent(self):
        req = Request(op="globedoc.get", ctx={})
        assert req.to_bytes() == Request(op="globedoc.get").to_bytes()

    def test_garbage_context_decodes_without_error(self):
        # Hostile or truncated ctx values must decode, never raise; a
        # non-dict is normalised to None, a dict passes through verbatim
        # for the server's tracer to ignore.
        for garbage in ("junk", 7, [1, 2], True):
            frame = Request(op="globedoc.get", ctx=None).to_bytes()
            # Splice garbage in by re-encoding through the frame dict.
            from repro.util.encoding import from_wire, to_wire

            decoded = from_wire(frame)
            decoded["ctx"] = garbage
            restored = Request.from_bytes(to_wire(decoded))
            assert restored.op == "globedoc.get"
            assert restored.ctx is None
        wrong_shape = {"trace": 9, "unexpected": "field"}
        restored = Request.from_bytes(
            Request(op="globedoc.get", ctx=wrong_shape).to_bytes()
        )
        assert restored.op == "globedoc.get"
        assert dict(restored.ctx) == wrong_shape  # carried, not rejected


class TestResponse:
    def test_success_roundtrip(self):
        resp = Response.success({"value": [1, 2, 3]})
        restored = Response.from_bytes(resp.to_bytes())
        assert restored.ok
        assert restored.unwrap() == {"value": [1, 2, 3]}

    def test_failure_roundtrip(self):
        resp = Response.failure(AuthenticityError("hash mismatch"))
        restored = Response.from_bytes(resp.to_bytes())
        assert not restored.ok
        assert restored.error_type == "AuthenticityError"
        with pytest.raises(RpcError, match="hash mismatch"):
            restored.unwrap()

    def test_none_value(self):
        assert Response.from_bytes(Response.success(None).to_bytes()).unwrap() is None

    def test_malformed_rejected(self):
        with pytest.raises(TransportError):
            Response.from_bytes(b"\x00\x01")
