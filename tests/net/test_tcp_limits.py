"""TCP transport resource limits: oversized-frame defence."""

from __future__ import annotations

import socket
import struct

import pytest

import repro.net.tcpnet as tcpnet
from repro.errors import TransportError
from repro.net.address import Endpoint
from repro.net.tcpnet import TcpEndpointServer, TcpTransport


class TestFrameLimits:
    def test_client_refuses_to_send_oversized(self, monkeypatch):
        monkeypatch.setattr(tcpnet, "_MAX_FRAME", 1024)
        server = TcpEndpointServer()
        server.register("echo", lambda frame: frame)
        with server:
            ip, port = server.address
            transport = TcpTransport(directory={"h": (ip, port)})
            with pytest.raises(TransportError, match="too large"):
                transport.request(Endpoint("h", "echo"), b"x" * 2048)

    def test_client_refuses_oversized_announcement(self, monkeypatch):
        """A malicious server announcing a multi-GB frame must be cut
        off before any allocation."""
        monkeypatch.setattr(tcpnet, "_MAX_FRAME", 1024)

        # A raw socket server that answers any frame with a huge length
        # prefix and garbage.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        ip, port = listener.getsockname()

        import threading

        def serve_once():
            conn, _ = listener.accept()
            try:
                conn.recv(65536)
                conn.sendall(struct.pack(">I", 2**30) + b"junk")
            finally:
                conn.close()

        thread = threading.Thread(target=serve_once, daemon=True)
        thread.start()
        try:
            transport = TcpTransport(directory={"evil": (ip, port)}, timeout=2.0)
            with pytest.raises(TransportError, match="oversized"):
                transport.request(Endpoint("evil", "svc"), b"hello")
        finally:
            listener.close()
            thread.join(timeout=2)

    def test_truncated_stream_detected(self):
        """A server that closes mid-frame yields a clean TransportError."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        ip, port = listener.getsockname()

        import threading

        def serve_once():
            conn, _ = listener.accept()
            try:
                conn.recv(65536)
                conn.sendall(struct.pack(">I", 100) + b"only-ten!")  # then close
            finally:
                conn.close()

        thread = threading.Thread(target=serve_once, daemon=True)
        thread.start()
        try:
            transport = TcpTransport(directory={"flaky": (ip, port)}, timeout=2.0)
            with pytest.raises(TransportError):
                transport.request(Endpoint("flaky", "svc"), b"hello")
        finally:
            listener.close()
            thread.join(timeout=2)
