"""RPC layer: dispatch, decorated objects, error rehydration."""

from __future__ import annotations

import pytest

from repro.errors import (
    AccessDenied,
    AuthenticityError,
    FreshnessError,
    RpcError,
    TransportError,
)
from repro.net.address import ContactAddress, Endpoint
from repro.net.message import Request, Response
from repro.net.rpc import RpcClient, RpcServer, rpc_method
from repro.net.transport import LoopbackTransport


class Calculator:
    @rpc_method("calc.add")
    def add(self, a: int, b: int) -> int:
        return a + b

    @rpc_method("calc.fail")
    def fail(self) -> None:
        raise AuthenticityError("bad content")

    def not_exposed(self) -> str:  # no decorator
        return "hidden"


@pytest.fixture
def wired():
    transport = LoopbackTransport()
    server = RpcServer(name="calc")
    server.register_object(Calculator())
    endpoint = Endpoint(host="h1", service="calc")
    transport.register(endpoint, server.handle_frame)
    return RpcClient(transport), endpoint, server


class TestDispatch:
    def test_call(self, wired):
        client, endpoint, _ = wired
        assert client.call(endpoint, "calc.add", a=2, b=3) == 5

    def test_contact_address_target(self, wired):
        client, endpoint, _ = wired
        address = ContactAddress(endpoint=endpoint, replica_id="r1")
        assert client.call(address, "calc.add", a=1, b=1) == 2

    def test_unknown_op(self, wired):
        client, endpoint, _ = wired
        with pytest.raises(RpcError, match="unknown operation"):
            client.call(endpoint, "calc.missing")

    def test_undecorated_not_registered(self, wired):
        _, _, server = wired
        assert server.operations == ["calc.add", "calc.fail"]

    def test_duplicate_registration_rejected(self, wired):
        _, _, server = wired
        with pytest.raises(RpcError):
            server.register("calc.add", lambda: None)

    def test_invalid_target_rejected(self, wired):
        client, _, _ = wired
        with pytest.raises(RpcError):
            client.call("not-an-endpoint", "calc.add")


class TestErrorTransport:
    def test_security_error_rehydrated(self, wired):
        """Security failures must arrive as security errors, not RpcError."""
        client, endpoint, _ = wired
        with pytest.raises(AuthenticityError, match="bad content"):
            client.call(endpoint, "calc.fail")

    def test_handler_exception_does_not_kill_server(self, wired):
        client, endpoint, _ = wired
        with pytest.raises(AuthenticityError):
            client.call(endpoint, "calc.fail")
        assert client.call(endpoint, "calc.add", a=1, b=2) == 3

    def test_bad_frame_returns_error_response(self, wired):
        _, _, server = wired
        frame = server.handle_frame(b"not a frame")
        response = Response.from_bytes(frame)
        assert not response.ok
        assert response.error_type == "TransportError"

    def test_wrong_args_becomes_error(self, wired):
        client, endpoint, _ = wired
        with pytest.raises(RpcError):
            client.call(endpoint, "calc.add", wrong_arg=1)


class TestTransportErrors:
    def test_unregistered_endpoint(self):
        client = RpcClient(LoopbackTransport())
        with pytest.raises(TransportError):
            client.call(Endpoint(host="nowhere", service="x"), "op")

    def test_stats_accounting(self, wired):
        client, endpoint, _ = wired
        client.call(endpoint, "calc.add", a=1, b=2)
        stats = client.transport.stats
        assert stats.requests == 1
        assert stats.bytes_sent > 0
        assert stats.bytes_received > 0
