"""RPC layer: dispatch, decorated objects, error rehydration."""

from __future__ import annotations

import pytest

from repro.errors import (
    AccessDenied,
    AuthenticityError,
    FreshnessError,
    RpcError,
    TransportError,
)
from repro.net.address import ContactAddress, Endpoint
from repro.net.message import Request, Response
from repro.net.rpc import BatchCall, RpcClient, RpcServer, rpc_method
from repro.net.transport import LoopbackTransport


class Calculator:
    @rpc_method("calc.add")
    def add(self, a: int, b: int) -> int:
        return a + b

    @rpc_method("calc.fail")
    def fail(self) -> None:
        raise AuthenticityError("bad content")

    def not_exposed(self) -> str:  # no decorator
        return "hidden"


@pytest.fixture
def wired():
    transport = LoopbackTransport()
    server = RpcServer(name="calc")
    server.register_object(Calculator())
    endpoint = Endpoint(host="h1", service="calc")
    transport.register(endpoint, server.handle_frame)
    return RpcClient(transport), endpoint, server


class TestDispatch:
    def test_call(self, wired):
        client, endpoint, _ = wired
        assert client.call(endpoint, "calc.add", a=2, b=3) == 5

    def test_contact_address_target(self, wired):
        client, endpoint, _ = wired
        address = ContactAddress(endpoint=endpoint, replica_id="r1")
        assert client.call(address, "calc.add", a=1, b=1) == 2

    def test_unknown_op(self, wired):
        client, endpoint, _ = wired
        with pytest.raises(RpcError, match="unknown operation"):
            client.call(endpoint, "calc.missing")

    def test_undecorated_not_registered(self, wired):
        _, _, server = wired
        assert server.operations == ["calc.add", "calc.fail"]

    def test_duplicate_registration_rejected(self, wired):
        _, _, server = wired
        with pytest.raises(RpcError):
            server.register("calc.add", lambda: None)

    def test_invalid_target_rejected(self, wired):
        client, _, _ = wired
        with pytest.raises(RpcError):
            client.call("not-an-endpoint", "calc.add")


class TestErrorTransport:
    def test_security_error_rehydrated(self, wired):
        """Security failures must arrive as security errors, not RpcError."""
        client, endpoint, _ = wired
        with pytest.raises(AuthenticityError, match="bad content"):
            client.call(endpoint, "calc.fail")

    def test_handler_exception_does_not_kill_server(self, wired):
        client, endpoint, _ = wired
        with pytest.raises(AuthenticityError):
            client.call(endpoint, "calc.fail")
        assert client.call(endpoint, "calc.add", a=1, b=2) == 3

    def test_bad_frame_returns_error_response(self, wired):
        _, _, server = wired
        frame = server.handle_frame(b"not a frame")
        response = Response.from_bytes(frame)
        assert not response.ok
        assert response.error_type == "TransportError"

    def test_wrong_args_becomes_error(self, wired):
        client, endpoint, _ = wired
        with pytest.raises(RpcError):
            client.call(endpoint, "calc.add", wrong_arg=1)


class TestTransportErrors:
    def test_unregistered_endpoint(self):
        client = RpcClient(LoopbackTransport())
        with pytest.raises(TransportError):
            client.call(Endpoint(host="nowhere", service="x"), "op")

    def test_stats_accounting(self, wired):
        client, endpoint, _ = wired
        client.call(endpoint, "calc.add", a=1, b=2)
        stats = client.transport.stats
        assert stats.requests == 1
        assert stats.bytes_sent > 0
        assert stats.bytes_received > 0


class BatchingTransport(LoopbackTransport):
    """Loopback plus ``request_many``, recording each wave's size."""

    def __init__(self):
        super().__init__()
        self.batches = []
        self.probe = None  # callable invoked mid-batch (gauge snapshots)

    def request_many(self, batch):
        self.batches.append(len(batch))
        if self.probe is not None:
            self.probe()
        results = []
        for endpoint, frame in batch:
            try:
                results.append(self.request(endpoint, frame))
            except Exception as exc:
                results.append(exc)
        return results


@pytest.fixture
def batch_wired():
    transport = BatchingTransport()
    server = RpcServer(name="calc")
    server.register_object(Calculator())
    endpoint = Endpoint(host="h1", service="calc")
    transport.register(endpoint, server.handle_frame)
    return RpcClient(transport), endpoint, transport


class TestCallMany:
    def test_outcomes_align_with_calls(self, batch_wired):
        client, endpoint, _ = batch_wired
        calls = [
            BatchCall(endpoint, "calc.add", {"a": i, "b": 10}) for i in range(5)
        ]
        outcomes = client.call_many(calls)
        assert [o.value for o in outcomes] == [10, 11, 12, 13, 14]
        assert all(o.ok for o in outcomes)
        assert [o.call for o in outcomes] == calls

    def test_windowing_chunks_the_batch(self, batch_wired):
        client, endpoint, transport = batch_wired
        calls = [
            BatchCall(endpoint, "calc.add", {"a": i, "b": 0}) for i in range(7)
        ]
        client.call_many(calls, window=3)
        assert transport.batches == [3, 3, 1]

    def test_window_must_be_positive(self, batch_wired):
        client, endpoint, _ = batch_wired
        with pytest.raises(RpcError, match="window"):
            client.call_many([BatchCall(endpoint, "calc.add", {"a": 1, "b": 1})], window=0)

    def test_remote_errors_rehydrate_per_slot(self, batch_wired):
        client, endpoint, _ = batch_wired
        outcomes = client.call_many(
            [
                BatchCall(endpoint, "calc.add", {"a": 1, "b": 2}),
                BatchCall(endpoint, "calc.fail"),
                BatchCall(endpoint, "calc.add", {"a": 3, "b": 4}),
            ]
        )
        assert outcomes[0].value == 3
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, AuthenticityError)
        assert outcomes[2].value == 7

    def test_transport_fault_captured_not_raised(self, batch_wired):
        client, endpoint, _ = batch_wired
        ghost = Endpoint(host="h1", service="ghost")
        outcomes = client.call_many(
            [
                BatchCall(ghost, "calc.add", {"a": 1, "b": 1}),
                BatchCall(endpoint, "calc.add", {"a": 1, "b": 1}),
            ]
        )
        assert isinstance(outcomes[0].error, TransportError)
        assert outcomes[1].value == 2

    def test_sequential_fallback_without_request_many(self, wired):
        # LoopbackTransport has no request_many: same outcomes, serially.
        client, endpoint, _ = wired
        outcomes = client.call_many(
            [
                BatchCall(endpoint, "calc.add", {"a": 2, "b": 2}),
                BatchCall(endpoint, "calc.fail"),
            ]
        )
        assert outcomes[0].value == 4
        assert isinstance(outcomes[1].error, AuthenticityError)

    def test_contact_address_targets(self, batch_wired):
        client, endpoint, _ = batch_wired
        address = ContactAddress(endpoint=endpoint, replica_id="r1")
        outcomes = client.call_many([BatchCall(address, "calc.add", {"a": 5, "b": 5})])
        assert outcomes[0].value == 10

    def test_inflight_gauge_tracks_window(self, batch_wired):
        from repro.obs import MetricsRegistry

        transport = batch_wired[2]
        endpoint = batch_wired[1]
        metrics = MetricsRegistry()
        client = RpcClient(transport, metrics=metrics)
        gauge = metrics.gauge("rpc_inflight")
        observed = []
        transport.probe = lambda: observed.append(gauge.value)
        client.call_many(
            [BatchCall(endpoint, "calc.add", {"a": i, "b": 0}) for i in range(5)],
            window=2,
        )
        assert observed == [2.0, 2.0, 1.0]
        assert gauge.value == 0.0
