"""The simulated WAN: transfer timing, compute charging, link resolution."""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.net.address import Endpoint
from repro.net.simnet import HostProfile, LinkSpec, SimNetwork
from repro.sim.clock import SimClock


def make_net():
    net = SimNetwork(SimClock(0.0))
    net.add_host(HostProfile(name="a", site="s1", service_time=0.001))
    net.add_host(HostProfile(name="b", site="s2", service_time=0.002))
    net.add_host(
        HostProfile(name="c", site="s2", cpu_factor=10.0, memory_pressure=2.0)
    )
    net.add_link("s1", "s2", LinkSpec(latency=0.010, bandwidth=1_000_000))
    return net


class TestLinkSpec:
    def test_transfer_time(self):
        link = LinkSpec(latency=0.01, bandwidth=1_000_000)
        assert link.transfer_time(0) == pytest.approx(0.01)
        assert link.transfer_time(1_000_000) == pytest.approx(1.01)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=0, bandwidth=1).transfer_time(-1)


class TestTopology:
    def test_duplicate_host_rejected(self):
        net = make_net()
        with pytest.raises(TransportError):
            net.add_host(HostProfile(name="a", site="s1"))

    def test_unknown_host_rejected(self):
        with pytest.raises(TransportError):
            make_net().host("ghost")

    def test_same_host_link_is_free(self):
        link = make_net().link_between("a", "a")
        assert link.latency == 0.0
        assert link.transfer_time(10**9) == 0.0

    def test_site_level_link_resolution(self):
        net = make_net()
        assert net.link_between("a", "b").latency == pytest.approx(0.010)

    def test_same_site_default_lan(self):
        net = make_net()
        # b and c are both in s2 with no explicit LAN entry.
        assert net.link_between("b", "c").latency == pytest.approx(0.0002)

    def test_missing_link_rejected(self):
        net = SimNetwork()
        net.add_host(HostProfile(name="x", site="sx"))
        net.add_host(HostProfile(name="y", site="sy"))
        with pytest.raises(TransportError):
            net.link_between("x", "y")

    def test_default_link_fallback(self):
        net = SimNetwork()
        net.add_host(HostProfile(name="x", site="sx"))
        net.add_host(HostProfile(name="y", site="sy"))
        net.set_default_link(LinkSpec(latency=0.5, bandwidth=1000))
        assert net.link_between("x", "y").latency == 0.5


class TestRequestTiming:
    def test_request_charges_latency_bandwidth_service(self):
        net = make_net()
        net.register(Endpoint("b", "echo"), lambda f: f)
        transport = net.transport_for("a")
        frame = b"x" * 1000
        transport.request(Endpoint("b", "echo"), frame)
        # up: 0.010 + 1000/1e6; service: 0.002; down: same as up.
        expected = 2 * (0.010 + 0.001) + 0.002
        assert net.clock.now() == pytest.approx(expected)

    def test_response_size_charged(self):
        net = make_net()
        net.register(Endpoint("b", "big"), lambda f: b"y" * 1_000_000)
        transport = net.transport_for("a")
        transport.request(Endpoint("b", "big"), b"tiny")
        assert net.clock.now() > 1.0  # 1 MB at 1 MB/s dominates

    def test_stats(self):
        net = make_net()
        net.register(Endpoint("b", "echo"), lambda f: f)
        transport = net.transport_for("a")
        transport.request(Endpoint("b", "echo"), b"12345")
        assert transport.stats.requests == 1
        assert transport.stats.bytes_sent == 5
        assert transport.stats.bytes_received == 5

    def test_unregistered_endpoint_rejected(self):
        net = make_net()
        with pytest.raises(TransportError):
            net.transport_for("a").request(Endpoint("b", "ghost"), b"")


class TestCompute:
    def test_charge_scales_with_profile(self):
        net = make_net()
        net.host("c").charge(0.001)
        # cpu_factor 10 x pressure 2 = 20x.
        assert net.clock.now() == pytest.approx(0.020)

    def test_compute_context_advances_clock(self):
        net = make_net()
        before = net.clock.now()
        with net.host("c").compute():
            sum(range(10000))
        assert net.clock.now() > before

    def test_native_compute_skips_pressure(self):
        net = make_net()
        host = net.host("c")
        with host.compute_native():
            pass
        native_cost = net.clock.now()
        with host.compute():
            pass
        full_cost = net.clock.now() - native_cost
        # Both are tiny, but the scales differ 2x; just check both advanced.
        assert native_cost >= 0.0
        assert full_cost >= 0.0

    def test_profile_compute_scale(self):
        profile = HostProfile(name="x", site="s", cpu_factor=3.0, memory_pressure=2.0)
        assert profile.compute_scale == 6.0


class TestRequestMany:
    def test_batch_charges_max_not_sum(self):
        net = make_net()
        net.register(Endpoint("b", "echo"), lambda f: f)
        transport = net.transport_for("a")
        clock = net.clock

        start = clock.now()
        transport.request(Endpoint("b", "echo"), b"x" * 100)
        single = clock.now() - start

        start = clock.now()
        results = transport.request_many(
            [(Endpoint("b", "echo"), b"x" * 100) for _ in range(5)]
        )
        batch = clock.now() - start

        assert [bytes(r) for r in results] == [b"x" * 100] * 5
        # Identical requests overlap perfectly: the wave costs one
        # request's time, not five.
        assert batch == pytest.approx(single)

    def test_batch_cost_is_slowest_member(self):
        net = make_net()
        net.register(Endpoint("b", "small"), lambda f: b"s")
        net.register(Endpoint("b", "large"), lambda f: b"L" * 500_000)
        transport = net.transport_for("a")
        clock = net.clock

        start = clock.now()
        transport.request(Endpoint("b", "large"), b"q")
        slowest = clock.now() - start

        start = clock.now()
        transport.request_many(
            [(Endpoint("b", "small"), b"q"), (Endpoint("b", "large"), b"q")]
        )
        assert clock.now() - start == pytest.approx(slowest)

    def test_failed_slot_holds_exception(self):
        net = make_net()
        net.register(Endpoint("b", "echo"), lambda f: f)
        transport = net.transport_for("a")
        results = transport.request_many(
            [
                (Endpoint("b", "echo"), b"ok"),
                (Endpoint("b", "ghost"), b"dead"),
                (Endpoint("b", "echo"), b"also ok"),
            ]
        )
        assert results[0] == b"ok"
        assert isinstance(results[1], TransportError)
        assert results[2] == b"also ok"

    def test_empty_batch(self):
        net = make_net()
        assert net.transport_for("a").request_many([]) == []
