"""Contact addresses and endpoints."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.net.address import ContactAddress, Endpoint


class TestEndpoint:
    def test_fields(self):
        ep = Endpoint(host="ginger", service="objectserver")
        assert str(ep) == "ginger/objectserver"

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            Endpoint(host="", service="x")
        with pytest.raises(ReproError):
            Endpoint(host="x", service="")

    def test_hashable(self):
        a = Endpoint(host="h", service="s")
        b = Endpoint(host="h", service="s")
        assert a == b and len({a, b}) == 1


class TestContactAddress:
    def test_dict_roundtrip(self):
        addr = ContactAddress(
            endpoint=Endpoint(host="h", service="s"),
            protocol="globedoc/replica",
            replica_id="r-42",
        )
        restored = ContactAddress.from_dict(addr.to_dict())
        assert restored == addr
        assert restored.host == "h"

    def test_default_protocol(self):
        addr = ContactAddress.from_dict({"host": "h", "service": "s"})
        assert addr.protocol == "globedoc/replica"

    def test_malformed_rejected(self):
        with pytest.raises(ReproError):
            ContactAddress.from_dict({"host": "h"})

    def test_str(self):
        addr = ContactAddress(
            endpoint=Endpoint(host="h", service="s"), replica_id="r"
        )
        assert str(addr) == "globedoc/replica://h/s#r"
