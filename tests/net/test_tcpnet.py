"""Real TCP transport: the same frames over actual sockets."""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient, RpcServer, rpc_method
from repro.net.tcpnet import TcpEndpointServer, TcpTransport


class Echo:
    @rpc_method("echo.say")
    def say(self, text: str) -> str:
        return f"echo: {text}"

    @rpc_method("echo.blob")
    def blob(self, data: bytes) -> bytes:
        return bytes(data) * 2


@pytest.fixture
def tcp_server():
    server = TcpEndpointServer()
    rpc = RpcServer("echo")
    rpc.register_object(Echo())
    server.register("echo", rpc.handle_frame)
    with server:
        yield server


class TestTcpTransport:
    def test_rpc_over_real_sockets(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport()
        transport.add_host("remote", ip, port)
        client = RpcClient(transport)
        assert client.call(Endpoint("remote", "echo"), "echo.say", text="hi") == "echo: hi"

    def test_binary_payload(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        client = RpcClient(transport)
        out = client.call(Endpoint("remote", "echo"), "echo.blob", data=b"\x00\xff")
        assert out == b"\x00\xff\x00\xff"

    def test_large_frame(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        client = RpcClient(transport)
        big = b"x" * 300_000
        assert client.call(Endpoint("remote", "echo"), "echo.blob", data=big) == big * 2

    def test_unknown_service(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        with pytest.raises(TransportError, match="no service"):
            transport.request(Endpoint("remote", "ghost"), b"frame")

    def test_unknown_host(self):
        transport = TcpTransport()
        with pytest.raises(TransportError, match="no TCP address"):
            transport.request(Endpoint("nowhere", "echo"), b"")

    def test_connection_refused(self):
        transport = TcpTransport(directory={"dead": ("127.0.0.1", 1)}, timeout=0.5)
        with pytest.raises(TransportError):
            transport.request(Endpoint("dead", "echo"), b"")

    def test_stats(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        RpcClient(transport).call(Endpoint("remote", "echo"), "echo.say", text="x")
        assert transport.stats.requests == 1

    def test_double_start_rejected(self):
        server = TcpEndpointServer()
        with server:
            with pytest.raises(TransportError):
                server.start()

    def test_multiple_services_one_port(self, tcp_server):
        other = RpcServer("extra")

        class Extra:
            @rpc_method("extra.ping")
            def ping(self) -> str:
                return "pong"

        other.register_object(Extra())
        tcp_server.register("extra", other.handle_frame)
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        client = RpcClient(transport)
        assert client.call(Endpoint("remote", "extra"), "extra.ping") == "pong"
        assert client.call(Endpoint("remote", "echo"), "echo.say", text="y") == "echo: y"
