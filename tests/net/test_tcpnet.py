"""Real TCP transport: the same frames over actual sockets."""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient, RpcServer, rpc_method
from repro.net.tcpnet import TcpEndpointServer, TcpTransport


class Echo:
    @rpc_method("echo.say")
    def say(self, text: str) -> str:
        return f"echo: {text}"

    @rpc_method("echo.blob")
    def blob(self, data: bytes) -> bytes:
        return bytes(data) * 2


@pytest.fixture
def tcp_server():
    server = TcpEndpointServer()
    rpc = RpcServer("echo")
    rpc.register_object(Echo())
    server.register("echo", rpc.handle_frame)
    with server:
        yield server


class TestTcpTransport:
    def test_rpc_over_real_sockets(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport()
        transport.add_host("remote", ip, port)
        client = RpcClient(transport)
        assert client.call(Endpoint("remote", "echo"), "echo.say", text="hi") == "echo: hi"

    def test_binary_payload(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        client = RpcClient(transport)
        out = client.call(Endpoint("remote", "echo"), "echo.blob", data=b"\x00\xff")
        assert out == b"\x00\xff\x00\xff"

    def test_large_frame(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        client = RpcClient(transport)
        big = b"x" * 300_000
        assert client.call(Endpoint("remote", "echo"), "echo.blob", data=big) == big * 2

    def test_unknown_service(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        with pytest.raises(TransportError, match="no service"):
            transport.request(Endpoint("remote", "ghost"), b"frame")

    def test_unknown_host(self):
        transport = TcpTransport()
        with pytest.raises(TransportError, match="no TCP address"):
            transport.request(Endpoint("nowhere", "echo"), b"")

    def test_connection_refused(self):
        transport = TcpTransport(directory={"dead": ("127.0.0.1", 1)}, timeout=0.5)
        with pytest.raises(TransportError):
            transport.request(Endpoint("dead", "echo"), b"")

    def test_stats(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        RpcClient(transport).call(Endpoint("remote", "echo"), "echo.say", text="x")
        assert transport.stats.requests == 1

    def test_double_start_rejected(self):
        server = TcpEndpointServer()
        with server:
            with pytest.raises(TransportError):
                server.start()

    def test_multiple_services_one_port(self, tcp_server):
        other = RpcServer("extra")

        class Extra:
            @rpc_method("extra.ping")
            def ping(self) -> str:
                return "pong"

        other.register_object(Extra())
        tcp_server.register("extra", other.handle_frame)
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        client = RpcClient(transport)
        assert client.call(Endpoint("remote", "extra"), "extra.ping") == "pong"
        assert client.call(Endpoint("remote", "echo"), "echo.say", text="y") == "echo: y"


class TestConnectionPool:
    def test_connection_reused_across_requests(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        client = RpcClient(transport)
        endpoint = Endpoint("remote", "echo")
        for i in range(4):
            assert client.call(endpoint, "echo.say", text=str(i)) == f"echo: {i}"
        # One persistent socket served all four calls.
        assert transport.pooled_connections == 1
        transport.close()

    def test_close_drains_pool(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        transport.request(Endpoint("remote", "echo"), b"frame")
        assert transport.pooled_connections == 1
        transport.close()
        assert transport.pooled_connections == 0

    def test_pool_capped_at_pool_size(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)}, pool_size=1)
        batch = [(Endpoint("remote", "echo"), b"x") for _ in range(3)]
        results = transport.request_many(batch)
        assert all(isinstance(r, bytes) for r in results)
        assert transport.pooled_connections <= 1
        transport.close()

    def test_stale_pooled_socket_retried_once(self):
        # A server that hangs up idle connections quickly: the pooled
        # socket goes stale between requests, and the transport must
        # retry on a fresh connection instead of surfacing the EOF.
        server = TcpEndpointServer(idle_timeout=0.2)
        rpc = RpcServer("echo")
        rpc.register_object(Echo())
        server.register("echo", rpc.handle_frame)
        with server:
            ip, port = server.address
            transport = TcpTransport(directory={"remote": (ip, port)})
            client = RpcClient(transport)
            endpoint = Endpoint("remote", "echo")
            assert client.call(endpoint, "echo.say", text="a") == "echo: a"
            assert transport.pooled_connections == 1
            import time as _time

            _time.sleep(0.5)  # server closes the idle connection
            assert client.call(endpoint, "echo.say", text="b") == "echo: b"
            transport.close()


class TestTimeouts:
    def test_slow_handler_surfaces_transport_error(self, tcp_server):
        import time as _time

        def slow(frame: bytes) -> bytes:
            _time.sleep(1.0)
            return b"late"

        tcp_server.register("slow", slow)
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)}, timeout=0.2)
        with pytest.raises(TransportError, match="timed out"):
            transport.request(Endpoint("remote", "slow"), b"frame")
        transport.close()


class TestRequestManyTcp:
    def test_batch_over_threads(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        client = RpcClient(transport)
        endpoint = Endpoint("remote", "echo")
        from repro.net.rpc import BatchCall

        outcomes = client.call_many(
            [BatchCall(endpoint, "echo.say", {"text": str(i)}) for i in range(6)]
        )
        assert [o.value for o in outcomes] == [f"echo: {i}" for i in range(6)]
        transport.close()

    def test_failed_slot_holds_exception(self, tcp_server):
        ip, port = tcp_server.address
        transport = TcpTransport(directory={"remote": (ip, port)})
        results = transport.request_many(
            [
                (Endpoint("remote", "echo"), b"ok"),
                (Endpoint("remote", "ghost"), b"dead"),
                (Endpoint("nowhere", "echo"), b"lost"),
            ]
        )
        assert isinstance(results[0], bytes)
        assert isinstance(results[1], TransportError)
        assert isinstance(results[2], TransportError)
        transport.close()

    def test_empty_batch(self):
        assert TcpTransport().request_many([]) == []
