"""Seeded round-trips for RPC wire messages.

~200 random requests/responses per seed must survive
``from_bytes(to_bytes(x)) == x`` bit-exactly, and the encoded frame must
be independent of argument insertion order — the property that makes the
simulator's transfer-size accounting (and anything that signs or hashes
frames) deterministic.
"""

from __future__ import annotations

import pytest

from repro.net.message import Request, Response
from repro.sim.random import make_rng

SEEDS = [0, 3]
MESSAGES_PER_SEED = 200

OPS = ("globedoc.get_element", "naming.resolve", "location.lookup", "admin.execute")


def random_scalar(rng):
    kind = int(rng.integers(0, 5))
    if kind == 0:
        return int(rng.integers(-(2**40), 2**40))
    if kind == 1:
        return float(rng.normal())
    if kind == 2:
        return bool(rng.integers(0, 2))
    if kind == 3:
        return bytes(rng.integers(0, 256, size=int(rng.integers(0, 24))).tolist())
    return "arg-" + str(int(rng.integers(0, 10**9)))


def random_args(rng) -> dict:
    names = ["replica_id", "name", "oid", "origin_site", "payload", "n"]
    count = int(rng.integers(0, len(names) + 1))
    picked = list(rng.choice(names, size=count, replace=False))
    return {str(name): random_scalar(rng) for name in picked}


def random_request(rng) -> Request:
    return Request(op=OPS[int(rng.integers(0, len(OPS)))], args=random_args(rng))


def random_response(rng) -> Response:
    if rng.integers(0, 2):
        return Response.success(random_args(rng) or random_scalar(rng))
    return Response.failure(ValueError("err-" + str(int(rng.integers(0, 10**6)))))


@pytest.mark.parametrize("seed", SEEDS)
class TestMessageRoundTrip:
    def test_request_roundtrip(self, seed):
        rng = make_rng(seed)
        for _ in range(MESSAGES_PER_SEED):
            request = random_request(rng)
            decoded = Request.from_bytes(request.to_bytes())
            assert decoded.op == request.op
            assert dict(decoded.args) == dict(request.args)

    def test_response_roundtrip(self, seed):
        rng = make_rng(seed)
        for _ in range(MESSAGES_PER_SEED):
            response = random_response(rng)
            decoded = Response.from_bytes(response.to_bytes())
            assert decoded == response

    def test_request_bytes_order_independent(self, seed):
        rng = make_rng(seed)
        for _ in range(MESSAGES_PER_SEED):
            request = random_request(rng)
            reversed_args = dict(reversed(list(request.args.items())))
            twin = Request(op=request.op, args=reversed_args)
            assert twin.to_bytes() == request.to_bytes()

    def test_encoding_deterministic(self, seed):
        rng = make_rng(seed)
        for _ in range(MESSAGES_PER_SEED // 4):
            request = random_request(rng)
            assert request.to_bytes() == request.to_bytes()
            assert request.wire_size == len(request.to_bytes())


class TestMessageEdgeCases:
    def test_failure_response_carries_error_type(self):
        response = Response.from_bytes(
            Response.failure(KeyError("missing")).to_bytes()
        )
        assert not response.ok
        assert response.error_type == "KeyError"

    def test_empty_args_request(self):
        request = Request(op="server.quote")
        decoded = Request.from_bytes(request.to_bytes())
        assert decoded.op == "server.quote"
        assert dict(decoded.args) == {}
