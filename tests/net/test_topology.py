"""The Table-1 testbed topology."""

from __future__ import annotations

import pytest

from repro.net.topology import (
    AMSTERDAM_PRIMARY,
    AMSTERDAM_SECONDARY,
    ITHACA,
    PARIS,
    TABLE1_HOSTS,
    paper_testbed,
)


class TestProfiles:
    def test_four_hosts(self):
        assert len(TABLE1_HOSTS) == 4
        names = {p.name for p in TABLE1_HOSTS}
        assert names == {
            "ginger.cs.vu.nl",
            "sporty.cs.vu.nl",
            "canardo.inria.fr",
            "ensamble02.cornell.edu",
        }

    def test_table1_ram(self):
        assert AMSTERDAM_PRIMARY.ram_mb == 2048
        assert AMSTERDAM_SECONDARY.ram_mb == 2048
        assert PARIS.ram_mb == 256
        assert ITHACA.ram_mb == 256

    def test_memory_pressure_on_small_hosts(self):
        assert AMSTERDAM_PRIMARY.memory_pressure == 1.0
        assert PARIS.memory_pressure > 1.0
        assert ITHACA.memory_pressure > 1.0

    def test_sparc_slower_than_p3(self):
        assert ITHACA.cpu_factor > PARIS.cpu_factor


class TestTestbed:
    def test_all_hosts_attached(self):
        top = paper_testbed()
        assert len(top.network.host_names) == 4

    def test_clients_mapping(self):
        top = paper_testbed()
        assert set(top.clients) == {"Amsterdam", "Paris", "Ithaca"}

    def test_lan_faster_than_wan(self):
        top = paper_testbed()
        lan = top.network.link_between("ginger.cs.vu.nl", "sporty.cs.vu.nl")
        paris = top.network.link_between("ginger.cs.vu.nl", "canardo.inria.fr")
        ithaca = top.network.link_between("ginger.cs.vu.nl", "ensamble02.cornell.edu")
        assert lan.latency < paris.latency < ithaca.latency
        assert lan.bandwidth > paris.bandwidth >= ithaca.bandwidth

    def test_links_symmetric(self):
        top = paper_testbed()
        ab = top.network.link_between("ginger.cs.vu.nl", "canardo.inria.fr")
        ba = top.network.link_between("canardo.inria.fr", "ginger.cs.vu.nl")
        assert ab == ba

    def test_inter_client_link_exists(self):
        top = paper_testbed()
        link = top.network.link_between("canardo.inria.fr", "ensamble02.cornell.edu")
        assert link.latency > 0
