"""Replica health tracking: failure counting and circuit breaking."""

from __future__ import annotations

import pytest

from repro.net.health import CircuitState, ReplicaHealthTracker
from repro.sim.clock import SimClock

ADDR = "globedoc/replica://replica.example/objectserver#r1"
OTHER = "globedoc/replica://other.example/objectserver#r2"


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def tracker(clock):
    return ReplicaHealthTracker(clock=clock, failure_threshold=3, quarantine_seconds=30.0)


class TestValidation:
    def test_bad_parameters_rejected(self, clock):
        with pytest.raises(ValueError):
            ReplicaHealthTracker(clock=clock, failure_threshold=0)
        with pytest.raises(ValueError):
            ReplicaHealthTracker(clock=clock, quarantine_seconds=0.0)


class TestCircuit:
    def test_unknown_address_is_closed(self, tracker):
        assert tracker.state_of(ADDR) is CircuitState.CLOSED
        assert not tracker.is_quarantined(ADDR)

    def test_threshold_opens_circuit(self, tracker):
        for _ in range(2):
            tracker.record_failure(ADDR)
        assert not tracker.is_quarantined(ADDR)
        tracker.record_failure(ADDR)
        assert tracker.is_quarantined(ADDR)
        assert tracker.quarantines == 1

    def test_success_resets_consecutive_count(self, tracker):
        tracker.record_failure(ADDR)
        tracker.record_failure(ADDR)
        tracker.record_success(ADDR)
        tracker.record_failure(ADDR)
        assert not tracker.is_quarantined(ADDR)
        assert tracker.record(ADDR).consecutive_failures == 1

    def test_quarantine_expires_to_half_open(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure(ADDR)
        clock.advance(31.0)
        assert not tracker.is_quarantined(ADDR)  # probe allowed
        assert tracker.state_of(ADDR) is CircuitState.HALF_OPEN

    def test_half_open_success_closes(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure(ADDR)
        clock.advance(31.0)
        tracker.state_of(ADDR)  # observe the expiry
        tracker.record_success(ADDR)
        assert tracker.state_of(ADDR) is CircuitState.CLOSED

    def test_half_open_failure_reopens_full_window(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure(ADDR)
        clock.advance(31.0)
        tracker.state_of(ADDR)
        tracker.record_failure(ADDR)  # the probe failed
        assert tracker.is_quarantined(ADDR)
        assert tracker.quarantines == 2
        clock.advance(29.0)
        assert tracker.is_quarantined(ADDR)  # full fresh window

    def test_failure_while_open_slides_window_without_recount(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure(ADDR)
        clock.advance(20.0)
        tracker.record_failure(ADDR)  # still failing inside quarantine
        assert tracker.quarantines == 1  # not double-counted
        clock.advance(20.0)  # 40 s after opening, 20 s after the slide
        assert tracker.is_quarantined(ADDR)


class TestOrdering:
    def test_quarantined_addresses_sink(self, tracker):
        for _ in range(3):
            tracker.record_failure(ADDR)
        assert tracker.order([ADDR, OTHER]) == [OTHER, ADDR]

    def test_ordering_is_stable_for_healthy(self, tracker):
        assert tracker.order([ADDR, OTHER]) == [ADDR, OTHER]
        assert tracker.order([OTHER, ADDR]) == [OTHER, ADDR]

    def test_fewer_consecutive_failures_first(self, tracker):
        tracker.record_failure(ADDR)  # 1 failure, below threshold
        assert tracker.order([ADDR, OTHER]) == [OTHER, ADDR]

    def test_quarantined_addresses_listing(self, tracker):
        for _ in range(3):
            tracker.record_failure(ADDR)
        tracker.record_failure(OTHER)
        assert tracker.quarantined_addresses() == [ADDR]

    def test_reset(self, tracker):
        for _ in range(3):
            tracker.record_failure(ADDR)
        tracker.reset()
        assert len(tracker) == 0
        assert tracker.quarantines == 0
        assert not tracker.is_quarantined(ADDR)
