"""Replica health tracking: failure counting and circuit breaking."""

from __future__ import annotations

import pytest

from repro.net.health import (
    CIRCUIT_STATE_VALUES,
    CircuitState,
    ReplicaHealthTracker,
)
from repro.obs import MetricsRegistry
from repro.sim.clock import SimClock

ADDR = "globedoc/replica://replica.example/objectserver#r1"
OTHER = "globedoc/replica://other.example/objectserver#r2"


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def tracker(clock):
    return ReplicaHealthTracker(clock=clock, failure_threshold=3, quarantine_seconds=30.0)


class TestValidation:
    def test_bad_parameters_rejected(self, clock):
        with pytest.raises(ValueError):
            ReplicaHealthTracker(clock=clock, failure_threshold=0)
        with pytest.raises(ValueError):
            ReplicaHealthTracker(clock=clock, quarantine_seconds=0.0)


class TestCircuit:
    def test_unknown_address_is_closed(self, tracker):
        assert tracker.state_of(ADDR) is CircuitState.CLOSED
        assert not tracker.is_quarantined(ADDR)

    def test_threshold_opens_circuit(self, tracker):
        for _ in range(2):
            tracker.record_failure(ADDR)
        assert not tracker.is_quarantined(ADDR)
        tracker.record_failure(ADDR)
        assert tracker.is_quarantined(ADDR)
        assert tracker.quarantines == 1

    def test_success_resets_consecutive_count(self, tracker):
        tracker.record_failure(ADDR)
        tracker.record_failure(ADDR)
        tracker.record_success(ADDR)
        tracker.record_failure(ADDR)
        assert not tracker.is_quarantined(ADDR)
        assert tracker.record(ADDR).consecutive_failures == 1

    def test_quarantine_expires_to_half_open(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure(ADDR)
        clock.advance(31.0)
        assert not tracker.is_quarantined(ADDR)  # probe allowed
        assert tracker.state_of(ADDR) is CircuitState.HALF_OPEN

    def test_half_open_success_closes(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure(ADDR)
        clock.advance(31.0)
        tracker.state_of(ADDR)  # observe the expiry
        tracker.record_success(ADDR)
        assert tracker.state_of(ADDR) is CircuitState.CLOSED

    def test_half_open_failure_reopens_full_window(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure(ADDR)
        clock.advance(31.0)
        tracker.state_of(ADDR)
        tracker.record_failure(ADDR)  # the probe failed
        assert tracker.is_quarantined(ADDR)
        assert tracker.quarantines == 2
        clock.advance(29.0)
        assert tracker.is_quarantined(ADDR)  # full fresh window

    def test_failure_while_open_slides_window_without_recount(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure(ADDR)
        clock.advance(20.0)
        tracker.record_failure(ADDR)  # still failing inside quarantine
        assert tracker.quarantines == 1  # not double-counted
        clock.advance(20.0)  # 40 s after opening, 20 s after the slide
        assert tracker.is_quarantined(ADDR)


class TestFullLifecycle:
    """One breaker walked through every state, with the quarantine
    eviction listing and the monitor gauge checked at each step."""

    def gauge_value(self, registry, address):
        values = registry.series_values(
            "replica_circuit_state", {"address": address}
        )
        return values[0] if values else None

    def test_closed_open_half_open_closed(self, clock):
        registry = MetricsRegistry(clock=clock)
        tracker = ReplicaHealthTracker(
            clock=clock,
            failure_threshold=3,
            quarantine_seconds=30.0,
            metrics=registry,
            metrics_client="canardo.inria.fr",
        )

        # closed: below threshold, available to the binder, no eviction.
        tracker.record_failure(ADDR)
        tracker.record_failure(ADDR)
        assert tracker.state_of(ADDR) is CircuitState.CLOSED
        assert tracker.quarantined_addresses() == []
        registry.collect()
        assert self.gauge_value(registry, ADDR) == CIRCUIT_STATE_VALUES["closed"]

        # closed -> open: the threshold failure trips the breaker; the
        # address lands in the eviction sweep and sinks in the ordering.
        tracker.record_failure(ADDR)
        assert tracker.state_of(ADDR) is CircuitState.OPEN
        assert tracker.quarantines == 1
        assert tracker.quarantined_addresses() == [ADDR]
        assert tracker.order([ADDR, OTHER]) == [OTHER, ADDR]
        registry.collect()
        assert self.gauge_value(registry, ADDR) == CIRCUIT_STATE_VALUES["open"]
        assert registry.total("replica_quarantines_total") == 1.0

        # open -> half-open: expiry is lazy (applied on read), so the
        # scrape-time collector is what surfaces the transition; the
        # probe candidate leaves the eviction listing.
        clock.advance(31.0)
        registry.collect()
        assert self.gauge_value(registry, ADDR) == CIRCUIT_STATE_VALUES["half_open"]
        assert tracker.state_of(ADDR) is CircuitState.HALF_OPEN
        assert tracker.quarantined_addresses() == []
        assert not tracker.is_quarantined(ADDR)

        # half-open -> closed: the probe succeeded.
        tracker.record_success(ADDR)
        assert tracker.state_of(ADDR) is CircuitState.CLOSED
        registry.collect()
        assert self.gauge_value(registry, ADDR) == CIRCUIT_STATE_VALUES["closed"]
        assert tracker.record(ADDR).consecutive_failures == 0
        # The quarantine counter is cumulative: closing does not undo it.
        assert registry.total("replica_quarantines_total") == 1.0

    def test_half_open_probe_failure_reenters_eviction_sweep(self, clock):
        registry = MetricsRegistry(clock=clock)
        tracker = ReplicaHealthTracker(
            clock=clock, failure_threshold=3, quarantine_seconds=30.0,
            metrics=registry,
        )
        for _ in range(3):
            tracker.record_failure(ADDR)
        clock.advance(31.0)
        assert tracker.state_of(ADDR) is CircuitState.HALF_OPEN
        tracker.record_failure(ADDR)  # one failed probe re-opens
        assert tracker.quarantined_addresses() == [ADDR]
        registry.collect()
        values = registry.series_values("replica_circuit_state", None)
        assert values == [float(CIRCUIT_STATE_VALUES["open"])]
        assert registry.total("replica_quarantines_total") == 2.0

    def test_two_trackers_share_registry_without_collision(self, clock):
        registry = MetricsRegistry(clock=clock)
        one = ReplicaHealthTracker(
            clock=clock, metrics=registry, metrics_client="one"
        )
        two = ReplicaHealthTracker(
            clock=clock, metrics=registry, metrics_client="two"
        )
        for _ in range(3):
            one.record_failure(ADDR)
        two.record_success(ADDR)
        registry.collect()
        assert sorted(
            registry.series_values("replica_circuit_state", None)
        ) == [0.0, 2.0]
        # The quarantine counter aggregates across both trackers.
        assert registry.total("replica_quarantines_total") == 1.0


class TestOrdering:
    def test_quarantined_addresses_sink(self, tracker):
        for _ in range(3):
            tracker.record_failure(ADDR)
        assert tracker.order([ADDR, OTHER]) == [OTHER, ADDR]

    def test_ordering_is_stable_for_healthy(self, tracker):
        assert tracker.order([ADDR, OTHER]) == [ADDR, OTHER]
        assert tracker.order([OTHER, ADDR]) == [OTHER, ADDR]

    def test_fewer_consecutive_failures_first(self, tracker):
        tracker.record_failure(ADDR)  # 1 failure, below threshold
        assert tracker.order([ADDR, OTHER]) == [OTHER, ADDR]

    def test_quarantined_addresses_listing(self, tracker):
        for _ in range(3):
            tracker.record_failure(ADDR)
        tracker.record_failure(OTHER)
        assert tracker.quarantined_addresses() == [ADDR]

    def test_reset(self, tracker):
        for _ in range(3):
            tracker.record_failure(ADDR)
        tracker.reset()
        assert len(tracker) == 0
        assert tracker.quarantines == 0
        assert not tracker.is_quarantined(ADDR)
