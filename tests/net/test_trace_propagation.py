"""Trace-context propagation over the RPC envelope.

The propagation edges that actually carry production traffic: plain
calls, retried calls (same trace id, distinct attempt spans), windowed
pipelined batches, a mid-fetch session failover, and the NOOP tracer
(no context injected — zero envelope growth). The acceptance rule
throughout: trace context is advisory and can never fail an RPC.
"""

from __future__ import annotations

import pytest

from repro.errors import AuthenticityError, TransportError
from repro.net.address import ContactAddress, Endpoint
from repro.net.message import Request, Response
from repro.net.rpc import BatchCall, RpcClient, RpcServer, rpc_method
from repro.net.retry import RetryingRpcClient, RetryPolicy
from repro.net.transport import LoopbackTransport
from repro.obs import RingBufferSink, TraceAssembler, Tracer
from repro.sim.clock import SimClock


class Store:
    """Idempotent-prefixed ops so the retry layer will re-issue them."""

    @rpc_method("globedoc.get")
    def get(self, key: str = "x") -> str:
        return f"value-{key}"

    @rpc_method("globedoc.tampered")
    def tampered(self) -> None:
        raise AuthenticityError("forged content")


class FlakyTransport(LoopbackTransport):
    """Fails the first *failures* requests with a TransportError."""

    def __init__(self, failures: int = 0):
        super().__init__()
        self.failures = failures

    def request(self, endpoint, frame):
        if self.failures > 0:
            self.failures -= 1
            raise TransportError("injected fault")
        return super().request(endpoint, frame)


class BatchingTransport(LoopbackTransport):
    """Loopback plus ``request_many``; slots in ``fail_round_one`` get a
    TransportError on the first round only."""

    def __init__(self):
        super().__init__()
        self.fail_round_one = set()
        self.rounds = 0

    def request_many(self, batch):
        self.rounds += 1
        results = []
        for i, (endpoint, frame) in enumerate(batch):
            if self.rounds == 1 and i in self.fail_round_one:
                results.append(TransportError("injected fault"))
                continue
            try:
                results.append(self.request(endpoint, frame))
            except Exception as exc:
                results.append(exc)
        return results


ENDPOINT = Endpoint(host="h1", service="objectserver")


def wire(transport, clock):
    """A traced client and a traced server on separate tracers."""
    client_ring, server_ring = RingBufferSink(), RingBufferSink()
    client_tracer = Tracer(clock=clock, sinks=(client_ring,), origin="client")
    server_tracer = Tracer(clock=clock, sinks=(server_ring,), origin="server")
    server = RpcServer(name="objectserver", tracer=server_tracer)
    server.register_object(Store())
    transport.register(ENDPOINT, server.handle_frame)
    client = RpcClient(transport, tracer=client_tracer)
    return client, client_tracer, client_ring, server_ring


def stitched(client_ring, server_ring):
    assembler = TraceAssembler()
    assembler.add_sink(client_ring)
    assembler.add_sink(server_ring)
    return assembler.collect()


@pytest.fixture
def clock():
    return SimClock(0.0)


class TestCallPropagation:
    def test_server_span_adopts_client_context(self, clock):
        client, _, client_ring, server_ring = wire(LoopbackTransport(), clock)
        assert client.call(ENDPOINT, "globedoc.get", key="a") == "value-a"

        call = client_ring.named("rpc.call")[0]
        handle = server_ring.named("server.handle")[0]
        assert handle.trace_id == call.trace_id
        assert handle.remote_parent == call.ref
        assert handle.attributes["op"] == "globedoc.get"

        traces = stitched(client_ring, server_ring)
        assert len(traces) == 1
        assert traces[0].stitch_rate == 1.0
        assert traces[0].origins == ["client", "server"]

    def test_untraced_client_leaves_server_span_rooted(self, clock):
        client, _, _, server_ring = wire(LoopbackTransport(), clock)
        # A NOOP-traced client on the same transport injects no context.
        plain = RpcClient(client.transport)
        assert plain.call(ENDPOINT, "globedoc.get", key="b") == "value-b"
        handle = server_ring.named("server.handle")[0]
        assert handle.remote_parent is None
        assert handle.trace_id.startswith("server-")

    def test_garbage_context_never_fails_the_call(self, clock):
        client, _, _, server_ring = wire(LoopbackTransport(), clock)
        for ctx in ({"trace": "", "span": "x:1"}, {"trace": 7}, {"span": []}):
            frame = Request(op="globedoc.get", args={"key": "g"}, ctx=ctx)
            response = Response.from_bytes(
                client.transport.request(ENDPOINT, frame.to_bytes())
            )
            assert response.ok and response.value == "value-g"
        # Every garbage adoption degraded to a clean root span.
        for span in server_ring.named("server.handle"):
            assert span.remote_parent is None
            assert span.trace_id.startswith("server-")

    def test_unknown_but_valid_context_is_adopted_not_rejected(self, clock):
        client, _, _, server_ring = wire(LoopbackTransport(), clock)
        ctx = {"trace": "ghost-000001", "span": "ghost:9"}
        frame = Request(op="globedoc.get", args={"key": "g"}, ctx=ctx)
        response = Response.from_bytes(
            client.transport.request(ENDPOINT, frame.to_bytes())
        )
        assert response.ok
        span = server_ring.named("server.handle")[0]
        assert span.trace_id == "ghost-000001"
        assert span.remote_parent == "ghost:9"


class TestNoopEnvelope:
    def test_noop_client_sends_byte_identical_frames(self, clock):
        transport = LoopbackTransport()
        server = RpcServer(name="objectserver")
        server.register_object(Store())
        frames = []

        def recording(frame):
            frames.append(frame)
            return server.handle_frame(frame)

        transport.register(ENDPOINT, recording)
        client = RpcClient(transport)  # defaults to NOOP_TRACER
        client.call(ENDPOINT, "globedoc.get", key="x")
        bare = Request(op="globedoc.get", args={"key": "x"}).to_bytes()
        assert frames[0] == bare  # zero envelope growth

    def test_traced_client_grows_envelope_with_parseable_context(self, clock):
        transport = LoopbackTransport()
        server = RpcServer(name="objectserver")
        server.register_object(Store())
        frames = []

        def recording(frame):
            frames.append(frame)
            return server.handle_frame(frame)

        transport.register(ENDPOINT, recording)
        tracer = Tracer(clock=clock, origin="client")
        client = RpcClient(transport, tracer=tracer)
        client.call(ENDPOINT, "globedoc.get", key="x")
        bare = Request(op="globedoc.get", args={"key": "x"}).to_bytes()
        assert len(frames[0]) > len(bare)
        decoded = Request.from_bytes(frames[0])
        assert decoded.ctx["trace"].startswith("client-")
        assert decoded.ctx["span"].startswith("client:")


class TestRetryPropagation:
    def policy(self):
        return RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0, seed=0)

    def test_retries_stay_in_one_trace_with_distinct_attempts(self, clock):
        client, tracer, client_ring, server_ring = wire(
            FlakyTransport(failures=1), clock
        )
        retrying = RetryingRpcClient(
            client, policy=self.policy(), clock=clock, tracer=tracer
        )
        with tracer.span("session.fetch") as root:
            assert retrying.call(ENDPOINT, "globedoc.get", key="r") == "value-r"

        attempts = client_ring.named("rpc.attempt")
        assert [s.attributes["attempt"] for s in attempts] == [1, 2]
        assert len({s.span_id for s in attempts}) == 2
        assert all(s.trace_id == root.trace_id for s in attempts)
        # The failed try records its chosen backoff; the success doesn't.
        assert attempts[0].is_error
        assert attempts[0].attributes["backoff_s"] == pytest.approx(0.1)
        assert "backoff_s" not in attempts[1].attributes
        # The wait happens *between* the attempt spans, not inside one.
        assert attempts[1].start - attempts[0].end == pytest.approx(0.1)
        # The one successful server span joined the same trace.
        handle = server_ring.named("server.handle")[0]
        assert handle.trace_id == root.trace_id

        traces = stitched(client_ring, server_ring)
        assert len(traces) == 1
        assert traces[0].stitch_rate == 1.0

    def test_security_error_fails_closed_in_one_attempt(self, clock):
        client, tracer, client_ring, _ = wire(LoopbackTransport(), clock)
        retrying = RetryingRpcClient(
            client, policy=self.policy(), clock=clock, tracer=tracer
        )
        with tracer.span("session.fetch"):
            with pytest.raises(AuthenticityError):
                retrying.call(ENDPOINT, "globedoc.tampered")
        attempts = client_ring.named("rpc.attempt")
        assert len(attempts) == 1  # never retried
        assert attempts[0].error_type == "AuthenticityError"
        assert retrying.counters.retries == 0

    def test_batched_retry_rounds_share_the_trace(self, clock):
        transport = BatchingTransport()
        transport.fail_round_one = {1}
        client, tracer, client_ring, server_ring = wire(transport, clock)
        retrying = RetryingRpcClient(
            client, policy=self.policy(), clock=clock, tracer=tracer
        )
        calls = [
            BatchCall(ENDPOINT, "globedoc.get", {"key": str(i)})
            for i in range(3)
        ]
        with tracer.span("pipeline.schedule") as root:
            outcomes = retrying.call_many(calls)
        assert [o.value for o in outcomes] == ["value-0", "value-1", "value-2"]

        attempts = client_ring.named("rpc.attempt")
        assert [s.attributes["attempt"] for s in attempts] == [1, 2]
        assert [s.attributes["calls"] for s in attempts] == [3, 1]
        assert all(s.attributes["op"] == "<batch>" for s in attempts)
        assert all(s.trace_id == root.trace_id for s in attempts)
        # 2 server handles in round one + 1 in round two, all stitched.
        handles = server_ring.named("server.handle")
        assert len(handles) == 3
        assert all(s.trace_id == root.trace_id for s in handles)
        traces = stitched(client_ring, server_ring)
        assert len(traces) == 1
        assert traces[0].stitch_rate == 1.0


class TestWindowedPipelining:
    def test_each_window_parents_its_requests(self, clock):
        transport = BatchingTransport()
        client, tracer, client_ring, server_ring = wire(transport, clock)
        calls = [
            BatchCall(ENDPOINT, "globedoc.get", {"key": str(i)})
            for i in range(5)
        ]
        with tracer.span("pipeline.schedule") as root:
            outcomes = client.call_many(calls, window=2)
        assert all(o.ok for o in outcomes)

        windows = client_ring.named("rpc.call_many")
        assert [s.attributes["calls"] for s in windows] == [2, 2, 1]
        assert all(s.trace_id == root.trace_id for s in windows)
        # Every server span names the window that carried it — the
        # window is the causal unit of a pipelined batch.
        by_window = {}
        for handle in server_ring.named("server.handle"):
            assert handle.trace_id == root.trace_id
            by_window.setdefault(handle.remote_parent, 0)
            by_window[handle.remote_parent] += 1
        assert by_window == {w.ref: w.attributes["calls"] for w in windows}

    def test_contact_address_targets_propagate_too(self, clock):
        transport = BatchingTransport()
        client, tracer, client_ring, server_ring = wire(transport, clock)
        address = ContactAddress(endpoint=ENDPOINT, replica_id="r1")
        with tracer.span("pipeline.schedule") as root:
            outcomes = client.call_many(
                [BatchCall(address, "globedoc.get", {"key": "c"})]
            )
        assert outcomes[0].value == "value-c"
        handle = server_ring.named("server.handle")[0]
        assert handle.trace_id == root.trace_id


class TestMidFetchFailover:
    def test_failover_keeps_one_cross_process_trace(self):
        from repro.globedoc.element import PageElement
        from repro.globedoc.owner import DocumentOwner
        from repro.globedoc.urls import HybridUrl
        from repro.harness.experiment import Testbed
        from repro.proxy.binding import BoundObject
        from repro.proxy.metrics import AccessTimer
        from repro.proxy.session import SecureSession
        from repro.server.localrep import ProxyLR
        from tests.conftest import fast_keys

        clock = SimClock(0.0)
        client_ring, server_ring = RingBufferSink(), RingBufferSink()
        client_tracer = Tracer(clock=clock, sinks=(client_ring,), origin="client")
        server_tracer = Tracer(clock=clock, sinks=(server_ring,), origin="server")
        testbed = Testbed(clock=clock, tracer=server_tracer)
        owner = DocumentOwner("vu.nl/research", keys=fast_keys(), clock=clock)
        owner.put_element(PageElement("index.html", b"<html>hi</html>"))
        published = testbed.publish(owner, validity=3600)
        stack = testbed.client_stack("canardo.inria.fr", tracer=client_tracer)

        bound = stack.binder.bind(
            HybridUrl.parse(published.url("index.html")), AccessTimer(clock)
        )
        session = SecureSession(
            binder=stack.binder, checker=stack.checker, bound=bound,
            tracer=client_tracer,
        )
        session.fetch("index.html")  # warm: binding verified and cached
        client_ring.clear()
        server_ring.clear()

        dead = ContactAddress(
            endpoint=Endpoint(
                host="ginger.cs.vu.nl", service="crashed-objectserver"
            ),
            replica_id="dead",
        )
        good = session.bound.addresses
        session.bound = BoundObject(
            oid=session.bound.oid,
            addresses=[dead] + list(good),
            address_index=0,
            lr=ProxyLR(stack.binder.rpc, dead),
        )
        result = session.fetch("index.html")
        assert result.content == b"<html>hi</html>"
        assert session.failovers == 1

        traces = stitched(client_ring, server_ring)
        fetch_traces = [t for t in traces if t.named("session.fetch")]
        assert len(fetch_traces) == 1
        trace = fetch_traces[0]
        # Before, during, and after the failover: one trace, fully
        # stitched across both processes.
        assert trace.root is not None and trace.root.name == "session.fetch"
        assert trace.named("session.failover")
        assert trace.named("server.handle")
        assert trace.origins == ["client", "server"]
        assert trace.stitch_rate == 1.0
        assert len({s.trace_id for s in trace.spans}) == 1
