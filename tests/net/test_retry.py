"""Retry/backoff RPC: idempotent-only retries that always fail closed."""

from __future__ import annotations

import pytest

from repro.errors import (
    AuthenticityError,
    RpcError,
    SecurityError,
    TransportError,
)
from repro.net.address import Endpoint
from repro.net.health import ReplicaHealthTracker
from repro.net.retry import (
    RetryingRpcClient,
    RetryPolicy,
    is_idempotent,
)
from repro.sim.clock import SimClock
from repro.sim.random import make_rng

TARGET = Endpoint(host="replica.example", service="objectserver")


class ScriptedClient:
    """An RpcClient stand-in that fails a scripted number of times."""

    def __init__(self, failures, value="payload"):
        self.failures = list(failures)  # exceptions raised, in order
        self.value = value
        self.calls = 0
        self.transport = object()

    def call(self, target, op, **args):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        return self.value


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0)
        rng = make_rng(0)
        delays = [policy.delay_for(a, rng) for a in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_backoff_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.5, jitter=0.0)
        assert policy.delay_for(5, make_rng(0)) == 2.5

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.2)
        a = [policy.delay_for(1, make_rng(7)) for _ in range(3)]
        b = [policy.delay_for(1, make_rng(7)) for _ in range(3)]
        assert a == b  # same seed, same jitter
        for delay in a:
            assert 0.8 <= delay <= 1.2

    def test_idempotency_classification(self):
        assert is_idempotent("globedoc.get_element")
        assert is_idempotent("naming.resolve")
        assert is_idempotent("location.lookup_all")
        assert not is_idempotent("admin.execute")
        assert not is_idempotent("location.insert")
        assert not is_idempotent("ssl.key_exchange")


class TestRetryingRpcClient:
    def policy(self, **kwargs):
        kwargs.setdefault("max_attempts", 3)
        kwargs.setdefault("base_delay", 0.1)
        kwargs.setdefault("jitter", 0.0)
        return RetryPolicy(**kwargs)

    def test_operational_failure_retried_to_success(self):
        inner = ScriptedClient([TransportError("drop"), TransportError("drop")])
        clock = SimClock()
        client = RetryingRpcClient(inner, self.policy(), clock=clock)
        assert client.call(TARGET, "globedoc.get_element", name="x") == "payload"
        assert inner.calls == 3
        assert client.counters.retries == 2
        assert client.counters.backoff_seconds == pytest.approx(0.3)

    def test_backoff_charged_to_sim_clock(self):
        inner = ScriptedClient([TransportError("drop")])
        clock = SimClock()
        client = RetryingRpcClient(inner, self.policy(), clock=clock)
        client.call(TARGET, "globedoc.get_element")
        assert clock.now() == pytest.approx(0.1)

    def test_attempts_exhausted_reraises(self):
        inner = ScriptedClient([TransportError(f"drop {i}") for i in range(5)])
        client = RetryingRpcClient(inner, self.policy(), clock=SimClock())
        with pytest.raises(TransportError, match="drop 2"):
            client.call(TARGET, "globedoc.get_element")
        assert inner.calls == 3
        assert client.counters.giveups == 1

    def test_security_error_never_retried(self):
        """Fail closed: a violation is a replica property, not weather."""
        inner = ScriptedClient([AuthenticityError("tampered")])
        client = RetryingRpcClient(inner, self.policy(), clock=SimClock())
        with pytest.raises(SecurityError):
            client.call(TARGET, "globedoc.get_element")
        assert inner.calls == 1
        assert client.counters.retries == 0

    def test_non_idempotent_never_retried(self):
        inner = ScriptedClient([TransportError("drop")])
        client = RetryingRpcClient(inner, self.policy(), clock=SimClock())
        with pytest.raises(TransportError):
            client.call(TARGET, "admin.execute", command="create_replica")
        assert inner.calls == 1

    def test_rpc_error_is_retryable_operationally(self):
        inner = ScriptedClient([RpcError("unknown operation")])
        client = RetryingRpcClient(inner, self.policy(), clock=SimClock())
        assert client.call(TARGET, "globedoc.get_element") == "payload"
        assert inner.calls == 2

    def test_deadline_stops_retrying(self):
        inner = ScriptedClient([TransportError(f"d{i}") for i in range(9)])
        clock = SimClock()
        client = RetryingRpcClient(
            inner,
            self.policy(max_attempts=10, base_delay=1.0, multiplier=1.0, deadline=2.5),
            clock=clock,
        )
        with pytest.raises(TransportError):
            client.call(TARGET, "globedoc.get_element")
        # 1 s + 1 s backoffs fit in 2.5 s; the third wait would not.
        assert inner.calls == 3
        assert client.counters.giveups == 1

    def test_health_tracker_sees_every_attempt(self):
        inner = ScriptedClient([TransportError("d1"), TransportError("d2")])
        clock = SimClock()
        health = ReplicaHealthTracker(clock=clock, failure_threshold=3)
        client = RetryingRpcClient(inner, self.policy(), clock=clock, health=health)
        client.call(TARGET, "globedoc.get_element")
        record = health.record(str(TARGET))
        assert record.total_failures == 2
        assert record.total_successes == 1
        assert record.consecutive_failures == 0  # reset by final success

    def test_transport_passthrough(self):
        inner = ScriptedClient([])
        client = RetryingRpcClient(inner, self.policy(), clock=SimClock())
        assert client.transport is inner.transport
