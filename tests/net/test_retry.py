"""Retry/backoff RPC: idempotent-only retries that always fail closed."""

from __future__ import annotations

import pytest

from repro.errors import (
    AuthenticityError,
    RpcError,
    SecurityError,
    TransportError,
)
from repro.net.address import Endpoint
from repro.net.health import ReplicaHealthTracker
from repro.net.retry import (
    RetryingRpcClient,
    RetryPolicy,
    is_idempotent,
)
from repro.sim.clock import SimClock
from repro.sim.random import make_rng

TARGET = Endpoint(host="replica.example", service="objectserver")


class ScriptedClient:
    """An RpcClient stand-in that fails a scripted number of times."""

    def __init__(self, failures, value="payload"):
        self.failures = list(failures)  # exceptions raised, in order
        self.value = value
        self.calls = 0
        self.transport = object()

    def call(self, target, op, **args):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        return self.value


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0)
        rng = make_rng(0)
        delays = [policy.delay_for(a, rng) for a in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_backoff_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.5, jitter=0.0)
        assert policy.delay_for(5, make_rng(0)) == 2.5

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.2)
        a = [policy.delay_for(1, make_rng(7)) for _ in range(3)]
        b = [policy.delay_for(1, make_rng(7)) for _ in range(3)]
        assert a == b  # same seed, same jitter
        for delay in a:
            assert 0.8 <= delay <= 1.2

    def test_idempotency_classification(self):
        assert is_idempotent("globedoc.get_element")
        assert is_idempotent("naming.resolve")
        assert is_idempotent("location.lookup_all")
        assert not is_idempotent("admin.execute")
        assert not is_idempotent("location.insert")
        assert not is_idempotent("ssl.key_exchange")


class TestRetryingRpcClient:
    def policy(self, **kwargs):
        kwargs.setdefault("max_attempts", 3)
        kwargs.setdefault("base_delay", 0.1)
        kwargs.setdefault("jitter", 0.0)
        return RetryPolicy(**kwargs)

    def test_operational_failure_retried_to_success(self):
        inner = ScriptedClient([TransportError("drop"), TransportError("drop")])
        clock = SimClock()
        client = RetryingRpcClient(inner, self.policy(), clock=clock)
        assert client.call(TARGET, "globedoc.get_element", name="x") == "payload"
        assert inner.calls == 3
        assert client.counters.retries == 2
        assert client.counters.backoff_seconds == pytest.approx(0.3)

    def test_backoff_charged_to_sim_clock(self):
        inner = ScriptedClient([TransportError("drop")])
        clock = SimClock()
        client = RetryingRpcClient(inner, self.policy(), clock=clock)
        client.call(TARGET, "globedoc.get_element")
        assert clock.now() == pytest.approx(0.1)

    def test_attempts_exhausted_reraises(self):
        inner = ScriptedClient([TransportError(f"drop {i}") for i in range(5)])
        client = RetryingRpcClient(inner, self.policy(), clock=SimClock())
        with pytest.raises(TransportError, match="drop 2"):
            client.call(TARGET, "globedoc.get_element")
        assert inner.calls == 3
        assert client.counters.giveups == 1

    def test_security_error_never_retried(self):
        """Fail closed: a violation is a replica property, not weather."""
        inner = ScriptedClient([AuthenticityError("tampered")])
        client = RetryingRpcClient(inner, self.policy(), clock=SimClock())
        with pytest.raises(SecurityError):
            client.call(TARGET, "globedoc.get_element")
        assert inner.calls == 1
        assert client.counters.retries == 0

    def test_non_idempotent_never_retried(self):
        inner = ScriptedClient([TransportError("drop")])
        client = RetryingRpcClient(inner, self.policy(), clock=SimClock())
        with pytest.raises(TransportError):
            client.call(TARGET, "admin.execute", command="create_replica")
        assert inner.calls == 1

    def test_rpc_error_is_retryable_operationally(self):
        inner = ScriptedClient([RpcError("unknown operation")])
        client = RetryingRpcClient(inner, self.policy(), clock=SimClock())
        assert client.call(TARGET, "globedoc.get_element") == "payload"
        assert inner.calls == 2

    def test_deadline_stops_retrying(self):
        inner = ScriptedClient([TransportError(f"d{i}") for i in range(9)])
        clock = SimClock()
        client = RetryingRpcClient(
            inner,
            self.policy(max_attempts=10, base_delay=1.0, multiplier=1.0, deadline=2.5),
            clock=clock,
        )
        with pytest.raises(TransportError):
            client.call(TARGET, "globedoc.get_element")
        # 1 s + 1 s backoffs fit in 2.5 s; the third wait would not.
        assert inner.calls == 3
        assert client.counters.giveups == 1

    def test_health_tracker_sees_every_attempt(self):
        inner = ScriptedClient([TransportError("d1"), TransportError("d2")])
        clock = SimClock()
        health = ReplicaHealthTracker(clock=clock, failure_threshold=3)
        client = RetryingRpcClient(inner, self.policy(), clock=clock, health=health)
        client.call(TARGET, "globedoc.get_element")
        record = health.record(str(TARGET))
        assert record.total_failures == 2
        assert record.total_successes == 1
        assert record.consecutive_failures == 0  # reset by final success

    def test_transport_passthrough(self):
        inner = ScriptedClient([])
        client = RetryingRpcClient(inner, self.policy(), clock=SimClock())
        assert client.transport is inner.transport


class ScriptedBatchClient:
    """Inner client whose ``call_many`` fails scripted (round, op) slots."""

    def __init__(self, fail_rounds):
        # fail_rounds: {round_number: {op: exception}} — op slots that
        # fail in that round; everything else succeeds with its op name.
        self.fail_rounds = fail_rounds
        self.rounds = 0
        self.seen = []  # ops per round
        self.transport = object()

    def call_many(self, calls, window=8):
        from repro.net.rpc import BatchOutcome

        self.rounds += 1
        self.seen.append([call.op for call in calls])
        failures = self.fail_rounds.get(self.rounds, {})
        outcomes = []
        for call in calls:
            error = failures.get(call.op)
            if error is not None:
                outcomes.append(BatchOutcome(call=call, error=error))
            else:
                outcomes.append(BatchOutcome(call=call, value=call.op))
        return outcomes


def batch(op, **args):
    from repro.net.rpc import BatchCall

    return BatchCall(TARGET, op, args)


class TestCallManyRetries:
    def test_only_failed_slots_reissued(self):
        inner = ScriptedBatchClient(
            {1: {"globedoc.get_element": TransportError("drop")}}
        )
        client = RetryingRpcClient(
            inner,
            RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
            clock=SimClock(),
        )
        outcomes = client.call_many(
            [batch("globedoc.get_public_key"), batch("globedoc.get_element")]
        )
        assert [o.value for o in outcomes] == [
            "globedoc.get_public_key",
            "globedoc.get_element",
        ]
        assert inner.seen == [
            ["globedoc.get_public_key", "globedoc.get_element"],
            ["globedoc.get_element"],
        ]
        assert client.counters.retries == 1

    def test_round_backoff_advances_clock_once(self):
        clock = SimClock()
        inner = ScriptedBatchClient(
            {
                1: {
                    "globedoc.get_element": TransportError("a"),
                    "globedoc.get_public_key": TransportError("b"),
                }
            }
        )
        client = RetryingRpcClient(
            inner,
            RetryPolicy(max_attempts=2, base_delay=0.5, jitter=0.0),
            clock=clock,
        )
        client.call_many(
            [batch("globedoc.get_public_key"), batch("globedoc.get_element")]
        )
        # One shared wait per round (the waits overlap like the calls),
        # not one per failed slot.
        assert clock.now() == pytest.approx(0.5)

    def test_security_error_never_reissued(self):
        inner = ScriptedBatchClient(
            {1: {"globedoc.get_element": AuthenticityError("tampered")}}
        )
        client = RetryingRpcClient(
            inner,
            RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.0),
            clock=SimClock(),
        )
        outcomes = client.call_many([batch("globedoc.get_element")])
        assert inner.rounds == 1  # failed closed, no retry round
        assert isinstance(outcomes[0].error, AuthenticityError)

    def test_non_idempotent_not_reissued(self):
        inner = ScriptedBatchClient({1: {"admin.execute": TransportError("x")}})
        client = RetryingRpcClient(
            inner,
            RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0),
            clock=SimClock(),
        )
        outcomes = client.call_many([batch("admin.execute")])
        assert inner.rounds == 1
        assert isinstance(outcomes[0].error, TransportError)
        assert client.counters.giveups == 1

    def test_attempts_exhausted_gives_up(self):
        inner = ScriptedBatchClient(
            {
                1: {"globedoc.get_element": TransportError("1")},
                2: {"globedoc.get_element": TransportError("2")},
            }
        )
        client = RetryingRpcClient(
            inner,
            RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0),
            clock=SimClock(),
        )
        outcomes = client.call_many([batch("globedoc.get_element")])
        assert inner.rounds == 2
        assert isinstance(outcomes[0].error, TransportError)
        assert client.counters.giveups == 1

    def test_health_tracker_sees_batch_outcomes(self):
        health = ReplicaHealthTracker(clock=SimClock())
        inner = ScriptedBatchClient(
            {1: {"globedoc.get_element": TransportError("x")}}
        )
        client = RetryingRpcClient(
            inner,
            RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0),
            clock=SimClock(),
            health=health,
        )
        client.call_many(
            [batch("globedoc.get_public_key"), batch("globedoc.get_element")]
        )
        record = health.record(str(TARGET))
        assert record.total_failures >= 1
        assert record.total_successes >= 2
