"""Protocol robustness: fuzzing the wire codecs and URL parser.

A hostile network can hand the stack arbitrary bytes; nothing may
crash with anything other than the library's typed errors.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, TransportError, UrlError
from repro.globedoc.urls import HybridUrl
from repro.net.message import Request, Response
from repro.util.encoding import from_canonical_bytes

# Arguments that survive the canonical codec.
_args = st.dictionaries(
    st.text(max_size=12).filter(lambda k: k != "__b64__"),
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(max_size=32),
        st.binary(max_size=32),
        st.lists(st.integers(min_value=0, max_value=9), max_size=4),
    ),
    max_size=5,
)


class TestRequestFuzz:
    @given(st.text(min_size=1, max_size=40), _args)
    @settings(max_examples=100)
    def test_request_roundtrip(self, op, args):
        restored = Request.from_bytes(Request(op=op, args=args).to_bytes())
        assert restored.op == op
        assert dict(restored.args) == args

    @given(st.binary(max_size=200))
    @settings(max_examples=150)
    def test_arbitrary_bytes_never_crash(self, junk):
        try:
            Request.from_bytes(junk)
        except TransportError:
            pass  # the only acceptable failure mode

    @given(st.binary(max_size=200))
    @settings(max_examples=150)
    def test_response_arbitrary_bytes(self, junk):
        try:
            Response.from_bytes(junk)
        except TransportError:
            pass


class TestResponseFuzz:
    @given(
        st.one_of(
            st.none(),
            st.integers(min_value=-(2**40), max_value=2**40),
            st.binary(max_size=64),
            _args,
        )
    )
    @settings(max_examples=100)
    def test_success_roundtrip(self, value):
        restored = Response.from_bytes(Response.success(value).to_bytes())
        assert restored.unwrap() == value

    @given(st.text(max_size=64))
    def test_error_roundtrip(self, message):
        resp = Response.failure(ValueError(message))
        restored = Response.from_bytes(resp.to_bytes())
        assert not restored.ok
        assert restored.error == str(ValueError(message))


class TestUrlFuzz:
    @given(st.text(max_size=80))
    @settings(max_examples=300)
    def test_parse_never_crashes_unexpectedly(self, junk):
        """Arbitrary text: parse or a typed UrlError, never anything
        else. (Malformed URLs from hostile HTML must not kill the
        proxy.)"""
        try:
            parsed = HybridUrl.parse(junk)
        except UrlError:
            return
        except ReproError:
            pytest.fail(f"non-UrlError ReproError for {junk!r}")
        assert parsed.raw == junk

    @given(st.binary(max_size=60))
    def test_frame_decode_garbage(self, junk):
        from repro.errors import EncodingError

        try:
            from_canonical_bytes(junk)
        except EncodingError:
            pass
