"""Per-document strategies side by side (§2): "GlobeDoc allows
replication of Web documents without imposing any single global
replication policy on all documents." One coordinator, two documents,
two different policies — each behaves per its own policy."""

from __future__ import annotations

import pytest

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.location.service import LocationClient
from repro.naming.records import OidRecord
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.replication.coordinator import ReplicationCoordinator, SitePort
from repro.replication.policy import RequestObservation
from repro.replication.strategies import HotspotReplication, NoReplication
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from tests.conftest import fast_keys

REMOTE_SITE = "root/us/cornell"
REMOTE_HOST = "ensamble02.cornell.edu"


@pytest.fixture
def world():
    testbed = Testbed()

    def make_doc(name):
        owner = DocumentOwner(name, keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", f"<html>{name}</html>".encode()))
        document = owner.publish(validity=3600)
        testbed.object_server.keystore.authorize(name, owner.public_key)
        testbed.naming.register(OidRecord(name=name, oid=owner.oid))
        return owner, document

    static_owner, static_doc = make_doc("vu.nl/archive-page")
    hot_owner, hot_doc = make_doc("vu.nl/breaking-news")

    remote = ObjectServer(host=REMOTE_HOST, site=REMOTE_SITE, clock=testbed.clock)
    for owner in (static_owner, hot_owner):
        remote.keystore.authorize(owner.name, owner.public_key)
    testbed.network.register(
        Endpoint(REMOTE_HOST, "objectserver"), remote.rpc_server().handle_frame
    )

    rpc = RpcClient(testbed.network.transport_for("sporty.cs.vu.nl"))
    # Admin placement is authenticated per owner key, so each document
    # gets its own coordinator (as each owner would run in practice).
    coordinators = {}
    for owner in (static_owner, hot_owner):
        c = ReplicationCoordinator(
            LocationClient(
                rpc, testbed.location_endpoint, "root/europe/vu", clock=testbed.clock
            )
        )
        for site, host in (
            ("root/europe/vu", "ginger.cs.vu.nl"),
            (REMOTE_SITE, REMOTE_HOST),
        ):
            c.add_site(
                SitePort(
                    site=site,
                    admin=AdminClient(
                        rpc, Endpoint(host, "objectserver"), owner.keys, testbed.clock
                    ),
                )
            )
        coordinators[owner.name] = c

    coordinators[static_owner.name].manage(
        static_owner, static_doc, NoReplication(), home_site="root/europe/vu"
    )
    coordinators[hot_owner.name].manage(
        hot_owner,
        hot_doc,
        HotspotReplication(create_rate=1.0, destroy_rate=0.05, window=10.0),
        home_site="root/europe/vu",
    )
    return testbed, remote, static_owner, hot_owner, coordinators


class TestPerDocumentPolicies:
    def test_same_traffic_different_outcomes(self, world):
        """Identical Cornell traffic hits both documents; only the one
        with the hotspot policy grows a replica there."""
        testbed, remote, static_owner, hot_owner, coordinators = world
        for i in range(15):
            now = testbed.clock.now()
            for owner in (static_owner, hot_owner):
                coordinators[owner.name].observe_request(
                    owner.oid, RequestObservation(site=REMOTE_SITE, time=now)
                )
            testbed.clock.advance(0.3)

        assert remote.hosts_oid(hot_owner.oid.hex)
        assert not remote.hosts_oid(static_owner.oid.hex)

    def test_both_documents_still_verified_everywhere(self, world):
        testbed, remote, static_owner, hot_owner, coordinators = world
        for i in range(15):
            now = testbed.clock.now()
            coordinators[hot_owner.name].observe_request(
                hot_owner.oid, RequestObservation(site=REMOTE_SITE, time=now)
            )
            testbed.clock.advance(0.3)
        stack = testbed.client_stack(REMOTE_HOST)
        for owner in (static_owner, hot_owner):
            response = stack.proxy.handle(f"globe://{owner.name}!/index.html")
            assert response.ok
            assert owner.name.encode() in response.content
