"""Strategy catalogue behaviour."""

from __future__ import annotations

import pytest

from repro.errors import ReplicationError
from repro.replication.policy import ActionKind, RequestObservation
from repro.replication.strategies import (
    HotspotReplication,
    NoReplication,
    StaticReplication,
    TtlCacheStrategy,
    best_strategy_for,
)


def obs(site: str, time: float) -> RequestObservation:
    return RequestObservation(site=site, time=time)


class TestStaticStrategies:
    def test_no_replication_never_acts(self):
        policy = NoReplication()
        assert policy.initial_sites("root/home", ["root/a", "root/b"]) == []
        assert policy.on_request(obs("root/a", 1.0), ["root/home"]) == []

    def test_static_initial_sites(self):
        policy = StaticReplication(sites=["root/a", "root/b", "root/home"])
        assert policy.initial_sites("root/home", []) == ["root/a", "root/b"]
        assert policy.on_request(obs("root/a", 1.0), ["root/home"]) == []

    def test_ttl_cache_places_nothing(self):
        policy = TtlCacheStrategy(ttl=60.0)
        assert policy.initial_sites("root/home", ["root/a"]) == []
        assert policy.on_request(obs("root/a", 1.0), ["root/home"]) == []


class TestHotspot:
    def make(self, **kwargs) -> HotspotReplication:
        defaults = dict(create_rate=1.0, destroy_rate=0.1, window=10.0, max_replicas=3)
        defaults.update(kwargs)
        return HotspotReplication(**defaults)

    def test_validation(self):
        with pytest.raises(ReplicationError):
            HotspotReplication(create_rate=1.0, destroy_rate=1.0)
        with pytest.raises(ReplicationError):
            HotspotReplication(max_replicas=0)

    def test_cold_site_no_action(self):
        policy = self.make()
        actions = policy.on_request(obs("root/a", 0.0), ["root/home"])
        assert actions == []

    def test_hot_site_triggers_create(self):
        policy = self.make()
        actions = []
        for i in range(12):
            actions = policy.on_request(obs("root/a", i * 0.5), ["root/home"])
        creates = [a for a in actions if a.kind is ActionKind.CREATE]
        assert creates and creates[0].site == "root/a"

    def test_existing_replica_not_recreated(self):
        policy = self.make()
        for i in range(12):
            actions = policy.on_request(
                obs("root/a", i * 0.5), ["root/home", "root/a"]
            )
        assert all(a.kind is not ActionKind.CREATE for a in actions)

    def test_capacity_respected(self):
        policy = self.make(max_replicas=2)
        current = ["root/home", "root/b"]
        for i in range(12):
            actions = policy.on_request(obs("root/a", i * 0.5), current)
        # root/b stays (its stats are cold → destroy), but no create for a.
        assert all(a.kind is not ActionKind.CREATE for a in actions)

    def test_cold_replica_destroyed(self):
        policy = self.make()
        # root/a got traffic long ago; now quiet.
        for i in range(12):
            policy.on_request(obs("root/a", i * 0.5), ["root/home"])
        actions = policy.on_request(obs("root/b", 100.0), ["root/home", "root/a"])
        destroys = [a for a in actions if a.kind is ActionKind.DESTROY]
        assert destroys and destroys[0].site == "root/a"

    def test_home_site_never_destroyed(self):
        policy = self.make()
        actions = policy.on_request(obs("root/b", 100.0), ["root/home"])
        assert all(a.site != "root/home" for a in actions)


class TestBestStrategy:
    LATENCY = {"root/a": 0.05, "root/b": 0.05}

    def test_empty_trace(self):
        assert best_strategy_for([], "root/home", self.LATENCY) == "no-replication"

    def test_cold_document_stays_central(self):
        # Requests sparser than the cache TTL: every access is a miss, so
        # caching adds only overhead.
        trace = [obs("root/a", float(i * 400)) for i in range(4)]
        choice = best_strategy_for(trace, "root/home", self.LATENCY)
        assert choice == "no-replication"

    def test_hot_document_replicates(self):
        trace = [obs("root/a", float(i) * 0.1) for i in range(500)]
        choice = best_strategy_for(trace, "root/home", self.LATENCY)
        assert choice in ("hotspot", "ttl-cache")

    def test_hot_and_fast_updating_avoids_cache(self):
        trace = [obs("root/a", float(i) * 0.1) for i in range(500)]
        choice = best_strategy_for(
            trace, "root/home", self.LATENCY, update_interval=10.0
        )
        assert choice == "hotspot"
