"""Hosting negotiation (§6): requirements vs quotes, coordinated placement."""

from __future__ import annotations

import pytest

from repro.errors import ReplicationError
from repro.replication.negotiation import (
    QosRequirements,
    choose_site,
    evaluate_offer,
)


def quote(site="root/a", host="h-a", disk_free=10_000, slots_free=2,
          bandwidth_limit=None, bandwidth_in_use=0.0):
    return {
        "site": site,
        "host": host,
        "limits": {"bandwidth_bytes_per_sec": bandwidth_limit},
        "disk_used": 0,
        "disk_free": disk_free,
        "replicas_hosted": 0,
        "replica_slots_free": slots_free,
        "bandwidth_in_use": bandwidth_in_use,
    }


class TestEvaluateOffer:
    def test_acceptable(self):
        result = evaluate_offer(QosRequirements(disk_bytes=1000), quote())
        assert result.acceptable
        assert result.reasons == ()
        assert result.score == 10_000

    def test_disk_shortage(self):
        result = evaluate_offer(QosRequirements(disk_bytes=20_000), quote())
        assert not result.acceptable
        assert any("disk" in r for r in result.reasons)

    def test_no_slots(self):
        result = evaluate_offer(QosRequirements(), quote(slots_free=0))
        assert not result.acceptable
        assert any("slots" in r for r in result.reasons)

    def test_unlimited_server_accepts(self):
        unlimited = quote(disk_free=None, slots_free=None)
        result = evaluate_offer(QosRequirements(disk_bytes=10**12), unlimited)
        assert result.acceptable

    def test_bandwidth_headroom(self):
        offer = quote(bandwidth_limit=1000.0, bandwidth_in_use=900.0)
        ok = evaluate_offer(
            QosRequirements(min_bandwidth_bytes_per_sec=50.0), offer
        )
        assert ok.acceptable
        too_much = evaluate_offer(
            QosRequirements(min_bandwidth_bytes_per_sec=200.0), offer
        )
        assert not too_much.acceptable

    def test_site_constraints(self):
        req = QosRequirements(required_sites=("root/b",))
        assert not evaluate_offer(req, quote(site="root/a")).acceptable
        assert evaluate_offer(req, quote(site="root/b")).acceptable
        forbidden = QosRequirements(forbidden_sites=("root/a",))
        assert not evaluate_offer(forbidden, quote(site="root/a")).acceptable

    def test_multiple_reasons_accumulate(self):
        result = evaluate_offer(
            QosRequirements(disk_bytes=10**9, required_sites=("root/z",)),
            quote(slots_free=0),
        )
        assert len(result.reasons) == 3

    def test_requirements_roundtrip(self):
        req = QosRequirements(
            disk_bytes=5, min_bandwidth_bytes_per_sec=10.0,
            required_sites=("a",), forbidden_sites=("b",),
        )
        assert QosRequirements.from_dict(req.to_dict()) == req


class TestChooseSite:
    def test_picks_most_headroom(self):
        quotes = [
            quote(site="root/a", disk_free=1_000),
            quote(site="root/b", disk_free=9_000),
        ]
        chosen = choose_site(QosRequirements(disk_bytes=500), quotes)
        assert chosen.site == "root/b"

    def test_skips_unacceptable(self):
        quotes = [
            quote(site="root/a", disk_free=100),
            quote(site="root/b", disk_free=9_000),
        ]
        chosen = choose_site(QosRequirements(disk_bytes=500), quotes)
        assert chosen.site == "root/b"

    def test_no_offer_raises_with_reasons(self):
        quotes = [quote(site="root/a", disk_free=100)]
        with pytest.raises(ReplicationError, match="root/a"):
            choose_site(QosRequirements(disk_bytes=500), quotes)

    def test_empty_quotes(self):
        with pytest.raises(ReplicationError):
            choose_site(QosRequirements(), [])


class TestNegotiatedPlacement:
    """End to end: coordinator asks servers for quotes, places on the
    best acceptable one, is refused by full servers."""

    @pytest.fixture
    def world(self, clock, make_owner):
        from repro.harness.experiment import Testbed
        from repro.location.service import LocationClient
        from repro.net.address import Endpoint
        from repro.net.rpc import RpcClient
        from repro.replication.coordinator import ReplicationCoordinator, SitePort
        from repro.replication.strategies import NoReplication
        from repro.server.admin import AdminClient
        from repro.server.objectserver import ObjectServer
        from repro.server.resources import ResourceLimits

        testbed = Testbed()
        owner = make_owner("vu.nl/doc", {"index.html": b"x" * 4000})
        # Re-key the owner's clock to the testbed's.
        owner.clock = testbed.clock
        document = owner.publish(validity=3600)

        rpc = RpcClient(testbed.network.transport_for("sporty.cs.vu.nl"))
        coordinator = ReplicationCoordinator(
            LocationClient(
                rpc, testbed.location_endpoint, "root/europe/vu", clock=testbed.clock
            )
        )
        servers = {}
        site_specs = {
            "root/europe/vu": ("ginger.cs.vu.nl", None),  # home, unlimited
            "root/europe/inria": ("canardo.inria.fr", ResourceLimits(disk_bytes=1000)),
            "root/us/cornell": (
                "ensamble02.cornell.edu",
                ResourceLimits(disk_bytes=100_000),
            ),
        }
        for site, (host, limits) in site_specs.items():
            if host == "ginger.cs.vu.nl":
                server = testbed.object_server
            else:
                server = ObjectServer(
                    host=host, site=site, clock=testbed.clock, limits=limits
                )
                testbed.network.register(
                    Endpoint(host, "objectserver"), server.rpc_server().handle_frame
                )
            server.keystore.authorize("owner", owner.public_key)
            servers[site] = server
            coordinator.add_site(
                SitePort(
                    site=site,
                    admin=AdminClient(
                        rpc, Endpoint(host, "objectserver"), owner.keys, testbed.clock
                    ),
                )
            )
        coordinator.manage(owner, document, NoReplication(), home_site="root/europe/vu")
        return testbed, owner, document, servers, coordinator

    def test_negotiation_picks_server_with_capacity(self, world):
        testbed, owner, document, servers, coordinator = world
        agreement = coordinator.negotiate_placement(owner.oid, __req__())
        # The 4 KB document does not fit INRIA's 1 KB limit.
        assert agreement.site == "root/us/cornell"
        assert servers["root/us/cornell"].hosts_oid(owner.oid.hex)
        assert not servers["root/europe/inria"].hosts_oid(owner.oid.hex)

    def test_negotiation_respects_forbidden_sites(self, world):
        testbed, owner, document, servers, coordinator = world
        with pytest.raises(ReplicationError):
            coordinator.negotiate_placement(
                owner.oid, __req__(forbidden_sites=("root/us/cornell",))
            )

    def test_disk_requirement_autofilled(self, world):
        """disk_bytes defaults to the document size when unset."""
        testbed, owner, document, servers, coordinator = world
        agreement = coordinator.negotiate_placement(owner.oid, __req__())
        assert agreement.requirements.disk_bytes == document.total_size


def __req__(**kwargs):
    from repro.replication.negotiation import QosRequirements

    return QosRequirements(**kwargs)
