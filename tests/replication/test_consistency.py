"""Consistency models and staleness accounting."""

from __future__ import annotations

import pytest

from repro.replication.consistency import (
    PushInvalidation,
    StalenessTracker,
    TtlConsistency,
)
from repro.sim.clock import SimClock


class FakePush:
    def __init__(self):
        self.pushed = []

    def __call__(self, site, document):
        self.pushed.append((site, document))


class TestPushInvalidation:
    def test_pushes_everywhere(self, make_owner):
        doc = make_owner().publish(validity=60)
        push = FakePush()
        updated = PushInvalidation().on_publish(doc, ["root/a", "root/b"], push)
        assert updated == ["root/a", "root/b"]
        assert [site for site, _ in push.pushed] == ["root/a", "root/b"]


class TestTtlConsistency:
    def test_pushes_nothing_by_default(self, make_owner):
        doc = make_owner().publish(validity=60)
        push = FakePush()
        updated = TtlConsistency().on_publish(doc, ["root/a", "root/b"], push)
        assert updated == []
        assert push.pushed == []

    def test_refresh_sites_pushed(self, make_owner):
        doc = make_owner().publish(validity=60)
        push = FakePush()
        model = TtlConsistency(refresh_sites=("root/a",))
        updated = model.on_publish(doc, ["root/a", "root/b"], push)
        assert updated == ["root/a"]


class TestStalenessTracker:
    def test_fresh_serves(self):
        clock = SimClock(0.0)
        tracker = StalenessTracker(clock=clock)
        tracker.on_publish(1)
        tracker.on_serve(1)
        assert tracker.fresh_serves == 1
        assert tracker.stale_fraction == 0.0

    def test_stale_serves_accumulate(self):
        clock = SimClock(0.0)
        tracker = StalenessTracker(clock=clock)
        tracker.on_publish(1)
        clock.advance(10.0)
        tracker.on_publish(2)
        clock.advance(5.0)
        tracker.on_serve(1)  # v2 published 5 s ago → 5 s stale
        assert tracker.stale_serves == 1
        assert tracker.mean_staleness == pytest.approx(5.0)
        assert tracker.stale_fraction == 1.0

    def test_mixed(self):
        clock = SimClock(0.0)
        tracker = StalenessTracker(clock=clock)
        tracker.on_publish(1)
        tracker.on_publish(2)
        tracker.on_serve(2)
        tracker.on_serve(1)
        assert tracker.serves == 2
        assert tracker.stale_fraction == pytest.approx(0.5)

    def test_no_serves(self):
        tracker = StalenessTracker(clock=SimClock(0.0))
        assert tracker.stale_fraction == 0.0
        assert tracker.mean_staleness == 0.0
