"""The replication coordinator: placements driven by policies, end to
end against real object servers, location service, and admin auth."""

from __future__ import annotations

import pytest

from repro.errors import ReplicationError
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import HOST_SITE, Testbed
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.location.service import LocationClient
from repro.replication.coordinator import ReplicationCoordinator, SitePort
from repro.replication.policy import PlacementAction, RequestObservation
from repro.replication.strategies import HotspotReplication, NoReplication, StaticReplication
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from tests.conftest import fast_keys

SITES = {
    "root/europe/vu": "ginger.cs.vu.nl",
    "root/europe/inria": "canardo.inria.fr",
    "root/us/cornell": "ensamble02.cornell.edu",
}


@pytest.fixture
def world():
    """A testbed with an object server at every site and a coordinator
    authorised (via each keystore) to manage placements."""
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/doc", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"content"))
    document = owner.publish(validity=3600)

    servers = {}
    rpc = RpcClient(testbed.network.transport_for("sporty.cs.vu.nl"))
    location = LocationClient(
        rpc, testbed.location_endpoint, origin_site="root/europe/vu", clock=testbed.clock
    )
    coordinator = ReplicationCoordinator(location)

    for site, host in SITES.items():
        if host == "ginger.cs.vu.nl":
            server = testbed.object_server  # reuse the testbed's server
        else:
            server = ObjectServer(host=host, site=site, clock=testbed.clock)
            testbed.network.register(
                Endpoint(host, "objectserver"), server.rpc_server().handle_frame
            )
        server.keystore.authorize("owner", owner.public_key)
        servers[site] = server
        admin = AdminClient(
            rpc, Endpoint(host, "objectserver"), owner.keys, testbed.clock
        )
        coordinator.add_site(SitePort(site=site, admin=admin))

    return testbed, owner, document, servers, coordinator


class TestManage:
    def test_home_placement(self, world):
        testbed, owner, document, servers, coordinator = world
        managed = coordinator.manage(
            owner, document, NoReplication(), home_site="root/europe/vu"
        )
        assert managed.sites == ["root/europe/vu"]
        assert servers["root/europe/vu"].hosts_oid(owner.oid.hex)
        # Location service knows the replica.
        addresses, _ = testbed.location_service.tree.lookup(
            owner.oid.hex, "root/europe/vu"
        )
        assert len(addresses) == 1

    def test_static_initial_placement(self, world):
        _, owner, document, servers, coordinator = world
        policy = StaticReplication(sites=["root/us/cornell"])
        managed = coordinator.manage(
            owner, document, policy, home_site="root/europe/vu"
        )
        assert "root/us/cornell" in managed.sites
        assert servers["root/us/cornell"].hosts_oid(owner.oid.hex)
        assert managed.placements == 2

    def test_unknown_home_site_rejected(self, world):
        _, owner, document, _, coordinator = world
        with pytest.raises(ReplicationError):
            coordinator.manage(owner, document, NoReplication(), home_site="root/mars")


class TestDynamicPlacement:
    def test_hotspot_creates_and_destroys(self, world):
        testbed, owner, document, servers, coordinator = world
        policy = HotspotReplication(
            create_rate=1.0, destroy_rate=0.1, window=10.0, max_replicas=3
        )
        coordinator.manage(owner, document, policy, home_site="root/europe/vu")

        # Heat up Cornell: 15 requests over 5 simulated seconds.
        for i in range(15):
            coordinator.observe_request(
                owner.oid,
                RequestObservation(site="root/us/cornell", time=testbed.clock.now()),
            )
            testbed.clock.advance(0.33)
        assert servers["root/us/cornell"].hosts_oid(owner.oid.hex)
        managed = coordinator.document(owner.oid)
        assert "root/us/cornell" in managed.sites

        # Cool down: a lone request elsewhere much later.
        testbed.clock.advance(100.0)
        coordinator.observe_request(
            owner.oid,
            RequestObservation(site="root/europe/inria", time=testbed.clock.now()),
        )
        assert not servers["root/us/cornell"].hosts_oid(owner.oid.hex)
        assert managed.removals == 1
        # Location record pruned as well.
        assert (
            testbed.location_service.tree.addresses_at(
                owner.oid.hex, "root/us/cornell"
            )
            == []
        )

    def test_clients_find_new_replica(self, world):
        """After dynamic placement, a Cornell client binds locally."""
        testbed, owner, document, servers, coordinator = world
        policy = HotspotReplication(create_rate=1.0, destroy_rate=0.1, window=10.0)
        coordinator.manage(owner, document, policy, home_site="root/europe/vu")
        for i in range(15):
            coordinator.observe_request(
                owner.oid,
                RequestObservation(site="root/us/cornell", time=testbed.clock.now()),
            )
            testbed.clock.advance(0.33)

        testbed.naming.register(
            __import__("repro.naming.records", fromlist=["OidRecord"]).OidRecord(
                name=owner.name, oid=owner.oid
            )
        )
        stack = testbed.client_stack("ensamble02.cornell.edu")
        response = stack.proxy.handle(f"globe://vu.nl/doc!/index.html")
        assert response.ok
        assert response.content == b"content"

    def test_destroy_home_rejected(self, world):
        _, owner, document, _, coordinator = world
        managed = coordinator.manage(
            owner, document, NoReplication(), home_site="root/europe/vu"
        )
        with pytest.raises(ReplicationError):
            coordinator._execute(managed, PlacementAction.destroy("root/europe/vu"))


class TestUpdates:
    def test_push_invalidation_updates_all_replicas(self, world):
        testbed, owner, document, servers, coordinator = world
        policy = StaticReplication(sites=["root/us/cornell", "root/europe/inria"])
        coordinator.manage(owner, document, policy, home_site="root/europe/vu")

        owner.put_element(PageElement("index.html", b"v2"))
        new_doc = owner.publish(validity=3600)
        updated = coordinator.publish_update(owner.oid, new_doc)
        assert set(updated) == set(SITES)
        for site, server in servers.items():
            replica = server.replica_for_oid(owner.oid.hex)
            assert replica.lr.get_element("index.html").content == b"v2"

    def test_stale_update_rejected(self, world):
        _, owner, document, _, coordinator = world
        coordinator.manage(owner, document, NoReplication(), home_site="root/europe/vu")
        with pytest.raises(ReplicationError):
            coordinator.publish_update(owner.oid, document)  # same version

    def test_unmanaged_document_rejected(self, world):
        _, owner, document, _, coordinator = world
        with pytest.raises(ReplicationError):
            coordinator.publish_update(owner.oid, document)
