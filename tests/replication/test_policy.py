"""Policy substrate: actions, sliding-window stats."""

from __future__ import annotations

import pytest

from repro.replication.policy import (
    ActionKind,
    PlacementAction,
    RequestObservation,
    SiteStats,
)


class TestPlacementAction:
    def test_constructors(self):
        create = PlacementAction.create("root/x")
        destroy = PlacementAction.destroy("root/y")
        assert create.kind is ActionKind.CREATE and create.site == "root/x"
        assert destroy.kind is ActionKind.DESTROY and destroy.site == "root/y"


class TestSiteStats:
    def test_rate_over_window(self):
        stats = SiteStats(window=10.0)
        for t in (0.0, 1.0, 2.0, 3.0):
            stats.observe(t)
        assert stats.count(3.0) == 4
        assert stats.rate(3.0) == pytest.approx(0.4)

    def test_old_requests_expire(self):
        stats = SiteStats(window=10.0)
        stats.observe(0.0)
        stats.observe(20.0)
        assert stats.count(20.0) == 1

    def test_boundary_exactly_window_old(self):
        stats = SiteStats(window=10.0)
        stats.observe(0.0)
        assert stats.count(10.0) == 1  # still inside [now-window, now]
        assert stats.count(10.5) == 0

    def test_empty(self):
        assert SiteStats(window=5.0).rate(100.0) == 0.0


class TestRequestObservation:
    def test_fields(self):
        obs = RequestObservation(site="root/x", time=1.5, bytes_served=100)
        assert obs.site == "root/x" and obs.time == 1.5 and obs.bytes_served == 100
