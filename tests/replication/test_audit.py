"""Replica auditing: detection and eviction of corrupt replicas (§3.3)."""

from __future__ import annotations

import pytest

from repro.attacks.malicious_server import (
    ElementSwapRenamedBehavior,
    MaliciousReplica,
    StaleReplayBehavior,
    TamperBehavior,
)
from repro.errors import ReproError
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.location.service import LocationClient
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.replication.audit import ReplicaAuditor, ReplicaHealth
from tests.conftest import fast_keys

EVIL_HOST = "canardo.inria.fr"
EVIL_SITE = "root/europe/inria"


@pytest.fixture
def world():
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/audited", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"<html>v1 page</html>"))
    owner.put_element(PageElement("extra.html", b"<html>extra</html>"))
    v1 = owner.publish(validity=120.0)
    owner.put_element(PageElement("index.html", b"<html>v2 page</html>"))
    published = testbed.publish(owner, validity=3600.0)
    return testbed, owner, v1, published


@pytest.fixture
def auditor(world):
    testbed, *_ = world
    rpc = RpcClient(testbed.network.transport_for("sporty.cs.vu.nl"))
    location = LocationClient(
        rpc, testbed.location_endpoint, "root/europe/vu", clock=testbed.clock
    )
    return ReplicaAuditor(rpc, location, testbed.clock)


def deploy_evil(testbed, published, behavior):
    replica = MaliciousReplica(
        host=EVIL_HOST, document=published.document, behavior=behavior
    )
    testbed.network.register(
        Endpoint(EVIL_HOST, "objectserver"), replica.rpc_server().handle_frame
    )
    testbed.location_service.tree.insert(
        published.owner.oid.hex, EVIL_SITE, replica.contact_address()
    )
    return replica


class TestAudit:
    def test_clean_deployment(self, world, auditor):
        testbed, owner, v1, published = world
        summary = auditor.audit(owner.oid)
        assert summary.clean
        assert len(summary.healthy) == 1
        assert summary.healthy[0].version == 2
        assert summary.healthy[0].elements_checked == 2

    def test_tampering_replica_flagged(self, world, auditor):
        testbed, owner, v1, published = world
        deploy_evil(testbed, published, TamperBehavior("index.html"))
        summary = auditor.audit(owner.oid)
        assert len(summary.corrupt) == 1
        assert "AuthenticityError" in summary.corrupt[0].violation
        assert len(summary.healthy) == 1  # the genuine one still fine

    def test_stale_replay_flagged_after_expiry(self, world, auditor):
        testbed, owner, v1, published = world
        deploy_evil(testbed, published, StaleReplayBehavior(v1))
        testbed.clock.advance(121.0)
        summary = auditor.audit(owner.oid)
        assert len(summary.corrupt) == 1
        assert "FreshnessError" in summary.corrupt[0].violation

    def test_renamed_swap_flagged(self, world, auditor):
        testbed, owner, v1, published = world
        deploy_evil(
            testbed, published, ElementSwapRenamedBehavior("index.html", "extra.html")
        )
        summary = auditor.audit(owner.oid)
        assert len(summary.corrupt) == 1

    def test_unreachable_replica_flagged(self, world, auditor):
        testbed, owner, v1, published = world
        # A registered address with nothing behind it.
        from repro.net.address import ContactAddress, Endpoint as Ep

        ghost = ContactAddress(
            endpoint=Ep(host="ensamble02.cornell.edu", service="objectserver"),
            replica_id="ghost",
        )
        testbed.location_service.tree.insert(owner.oid.hex, "root/us/cornell", ghost)
        summary = auditor.audit(owner.oid)
        assert len(summary.unreachable) == 1

    def test_sampling_bounds_work(self, world, auditor):
        testbed, owner, v1, published = world
        summary = auditor.audit(owner.oid, sample_elements=1)
        assert summary.healthy[0].elements_checked == 1

    def test_unregistered_oid_audits_empty(self, world, auditor):
        from repro.globedoc.oid import ObjectId

        phantom = ObjectId.from_public_key(fast_keys().public)
        summary = auditor.audit(phantom)
        assert summary.verdicts == []


class TestEviction:
    def test_evict_corrupt_restores_clean_state(self, world, auditor):
        testbed, owner, v1, published = world
        deploy_evil(testbed, published, TamperBehavior("index.html"))
        site_of = {EVIL_HOST: EVIL_SITE, "ginger.cs.vu.nl": "root/europe/vu"}
        summary = auditor.audit_and_evict(owner.oid, site_of)
        assert len(summary.corrupt) == 1
        # The corrupt address is gone from the location service…
        assert (
            testbed.location_service.tree.addresses_at(owner.oid.hex, EVIL_SITE) == []
        )
        # …and a Paris client now binds to the genuine replica directly.
        stack = testbed.client_stack(EVIL_HOST)
        response = stack.proxy.handle(published.url("index.html"))
        assert response.ok
        assert response.content == b"<html>v2 page</html>"

    def test_refuses_to_evict_healthy(self, world, auditor):
        testbed, owner, v1, published = world
        summary = auditor.audit(owner.oid)
        with pytest.raises(ReproError, match="healthy"):
            auditor.evict(owner.oid, summary.healthy[0], "root/europe/vu")


class TestHealthIntegration:
    """The auditor and the client stack share one replica-health view."""

    def tracked_auditor(self, testbed, health):
        rpc = RpcClient(testbed.network.transport_for("sporty.cs.vu.nl"))
        location = LocationClient(
            rpc, testbed.location_endpoint, "root/europe/vu", clock=testbed.clock
        )
        return ReplicaAuditor(rpc, location, testbed.clock, health=health)

    def test_audit_verdicts_feed_tracker(self, world):
        from repro.net.health import ReplicaHealthTracker

        testbed, owner, v1, published = world
        health = ReplicaHealthTracker(clock=testbed.clock, failure_threshold=2)
        auditor = self.tracked_auditor(testbed, health)
        evil = deploy_evil(testbed, published, TamperBehavior("index.html"))
        for _ in range(2):
            summary = auditor.audit(owner.oid)
        assert len(summary.corrupt) == 1
        assert health.is_quarantined(str(evil.contact_address()))
        # The genuine replica's successes were recorded too.
        genuine = summary.healthy[0].address
        assert health.record(str(genuine)).total_successes == 2

    def test_audit_success_does_not_clear_client_quarantine(self, world):
        from repro.net.health import ReplicaHealthTracker

        testbed, owner, v1, published = world
        health = ReplicaHealthTracker(clock=testbed.clock, failure_threshold=3)
        auditor = self.tracked_auditor(testbed, health)
        summary = auditor.audit(owner.oid)
        genuine = str(summary.healthy[0].address)
        # Clients hammered this replica into quarantine…
        for _ in range(3):
            health.record_failure(genuine)
        assert health.is_quarantined(genuine)
        # …and one good audit round trip must not un-quarantine it.
        auditor.audit(owner.oid)
        assert health.is_quarantined(genuine)

    def test_evict_quarantined_removes_flapping_replica(self, world):
        from repro.net.health import ReplicaHealthTracker

        testbed, owner, v1, published = world
        health = ReplicaHealthTracker(clock=testbed.clock, failure_threshold=3)
        auditor = self.tracked_auditor(testbed, health)
        summary = auditor.audit(owner.oid)
        genuine = summary.healthy[0].address
        for _ in range(3):
            health.record_failure(str(genuine))
        site_of = {genuine.host: "root/europe/vu"}
        # Without the flag the audit-healthy replica survives.
        auditor.audit_and_evict(owner.oid, site_of)
        assert (
            testbed.location_service.tree.addresses_at(owner.oid.hex, "root/europe/vu")
            != []
        )
        # With it, the client-earned quarantine wins over the one good
        # audit round trip.
        auditor.audit_and_evict(owner.oid, site_of, evict_quarantined=True)
        assert (
            testbed.location_service.tree.addresses_at(owner.oid.hex, "root/europe/vu")
            == []
        )
