"""Flash-crowd detection."""

from __future__ import annotations

import pytest

from repro.errors import ReplicationError
from repro.replication.flashcrowd import FlashCrowdDetector


class TestValidation:
    def test_windows(self):
        with pytest.raises(ReplicationError):
            FlashCrowdDetector(short_window=10.0, long_window=10.0)

    def test_surge_factor(self):
        with pytest.raises(ReplicationError):
            FlashCrowdDetector(surge_factor=1.0)


class TestDetection:
    def make(self) -> FlashCrowdDetector:
        return FlashCrowdDetector(
            short_window=10.0, long_window=300.0, surge_factor=5.0, min_baseline=0.2
        )

    def test_quiet_traffic_no_event(self):
        detector = self.make()
        for i in range(10):
            assert detector.observe(float(i * 30)) is None
        assert not detector.active

    def test_surge_fires_onset(self):
        detector = self.make()
        # Background: a request every 30 s.
        t = 0.0
        for i in range(10):
            detector.observe(t)
            t += 30.0
        # Surge: 30 requests in 3 s (10 req/s >> 5 * baseline).
        events = []
        for i in range(30):
            event = detector.observe(t + i * 0.1)
            if event:
                events.append(event)
        assert any(e.kind == "onset" for e in events)
        assert detector.active

    def test_subsidence(self):
        detector = self.make()
        t = 0.0
        for i in range(50):
            detector.observe(t + i * 0.1)  # burst from time zero
        assert detector.active
        # Long quiet period, then one request → rate collapsed.
        event = detector.observe(t + 200.0)
        assert event is not None and event.kind == "subsided"
        assert not detector.active

    def test_hysteresis_no_flapping(self):
        detector = self.make()
        # A single spike at threshold boundary should not toggle twice.
        events = [e for e in (detector.observe(i * 0.1) for i in range(100)) if e]
        kinds = [e.kind for e in events]
        assert kinds.count("onset") <= 1

    def test_rates_passive(self):
        detector = self.make()
        detector.observe(0.0)
        short, baseline = detector.rates(1.0)
        assert short > 0
        assert baseline >= 0.2
