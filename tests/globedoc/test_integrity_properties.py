"""Property-based tests on the integrity certificate: for arbitrary
documents, the §3.2.1 guarantees hold against arbitrary single-element
tampering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import KeyPair
from repro.errors import AuthenticityError, ConsistencyError, FreshnessError
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import IntegrityCertificate
from repro.sim.clock import SimClock

# One shared key pair: these properties are about hashing/table logic,
# not key generation.
_KEYS = KeyPair.generate(1024)
_OID = "ab" * 20

_names = st.from_regex(r"[a-z0-9]{1,10}(\.[a-z]{1,4})?", fullmatch=True)
_documents = st.dictionaries(_names, st.binary(max_size=64), min_size=1, max_size=8)


def build(elements_map, expires_at=1000.0):
    elements = [PageElement(n, c) for n, c in elements_map.items()]
    cert = IntegrityCertificate.for_elements(
        _KEYS, _OID, elements, expires_at=expires_at
    )
    return elements, cert


class TestProperties:
    @given(_documents)
    @settings(max_examples=40, deadline=None)
    def test_every_genuine_element_verifies(self, elements_map):
        elements, cert = build(elements_map)
        cert.verify_signature(_KEYS.public)
        clock = SimClock(0.0)
        for element in elements:
            entry = cert.check_element(element.name, element, clock)
            assert entry.content_hash == element.content_hash(cert.suite)

    @given(_documents, st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_tampering_detected(self, elements_map, data):
        elements, cert = build(elements_map)
        victim = data.draw(st.sampled_from(elements))
        mutation = data.draw(st.binary(min_size=1, max_size=8))
        tampered = victim.with_content(victim.content + mutation)
        with pytest.raises(AuthenticityError):
            cert.check_element(victim.name, tampered, SimClock(0.0))

    @given(_documents, st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_swap_detected(self, elements_map, data):
        """Serving element B for a request of A fails, for every (A, B)
        pair with distinct content — by the name check, or (when renamed)
        by the hash check."""
        elements, cert = build(elements_map)
        if len(elements) < 2:
            return
        a, b = data.draw(
            st.tuples(st.sampled_from(elements), st.sampled_from(elements)).filter(
                lambda pair: pair[0].name != pair[1].name
                and pair[0].content != pair[1].content
            )
        )
        clock = SimClock(0.0)
        with pytest.raises((ConsistencyError, AuthenticityError)):
            cert.check_element(a.name, b, clock)
        renamed = PageElement(a.name, b.content)
        with pytest.raises(AuthenticityError):
            cert.check_element(a.name, renamed, clock)

    @given(_documents, st.floats(min_value=0.1, max_value=1e6))
    @settings(max_examples=30, deadline=None)
    def test_freshness_boundary_exact(self, elements_map, validity):
        elements, cert = build(elements_map, expires_at=validity)
        element = elements[0]
        cert.check_element(element.name, element, SimClock(validity))  # inclusive
        with pytest.raises(FreshnessError):
            cert.check_element(
                element.name, element, SimClock(validity * (1 + 1e-9) + 1e-6)
            )

    @given(_documents)
    @settings(max_examples=30, deadline=None)
    def test_wire_roundtrip_preserves_checks(self, elements_map):
        elements, cert = build(elements_map)
        restored = IntegrityCertificate.from_dict(cert.to_dict())
        restored.verify_signature(_KEYS.public)
        clock = SimClock(0.0)
        for element in elements:
            restored.check_element(element.name, element, clock)
