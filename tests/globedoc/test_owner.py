"""Owner tooling: publishing lifecycle, versioning, serialization."""

from __future__ import annotations

import pytest

from repro.crypto.identity import CertificateAuthority
from repro.errors import ReproError
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner, SignedDocument
from tests.conftest import EPOCH, fast_keys


class TestLifecycle:
    def test_oid_is_self_certifying(self, make_owner):
        owner = make_owner()
        assert owner.oid.matches_key(owner.public_key)

    def test_publish_increments_version(self, make_owner):
        owner = make_owner()
        assert owner.version == 0
        assert owner.publish(validity=60).version == 1
        assert owner.publish(validity=60).version == 2
        assert owner.version == 2

    def test_publish_empty_rejected(self, clock):
        owner = DocumentOwner("vu.nl/empty", keys=fast_keys(), clock=clock)
        with pytest.raises(ReproError):
            owner.publish()

    def test_nonpositive_validity_rejected(self, make_owner):
        with pytest.raises(ReproError):
            make_owner().publish(validity=0)

    def test_empty_name_rejected(self):
        with pytest.raises(ReproError):
            DocumentOwner("", keys=fast_keys())

    def test_element_editing(self, make_owner):
        owner = make_owner(elements={"a.html": b"1"})
        owner.put_element(PageElement("b.html", b"2"))
        assert owner.element_names() == ["a.html", "b.html"]
        owner.remove_element("a.html")
        assert owner.element_names() == ["b.html"]
        with pytest.raises(ReproError):
            owner.remove_element("ghost")

    def test_expiry_from_clock(self, make_owner, clock):
        signed = make_owner().publish(validity=120)
        entry = signed.integrity.entry_for("index.html")
        assert entry.expires_at == EPOCH + 120

    def test_update_changes_hash_not_oid(self, make_owner):
        owner = make_owner(elements={"index.html": b"v1"})
        first = owner.publish(validity=60)
        owner.put_element(PageElement("index.html", b"v2"))
        second = owner.publish(validity=60)
        assert first.oid == second.oid
        assert (
            first.integrity.entry_for("index.html").content_hash
            != second.integrity.entry_for("index.html").content_hash
        )


class TestSignedDocument:
    def test_state_validates(self, make_owner):
        state = make_owner().publish(validity=60).state()
        state.validate()

    def test_contains_no_private_key(self, make_owner):
        """What ships to untrusted servers must hold no secrets."""
        signed = make_owner().publish(validity=60)
        wire = signed.to_dict()
        assert "private" not in str(sorted(wire.keys())).lower()
        restored = SignedDocument.from_dict(wire)
        assert not hasattr(restored, "keys")

    def test_dict_roundtrip(self, make_owner):
        owner = make_owner(elements={"a.html": b"x", "img/b.png": b"y"})
        signed = owner.publish(validity=60)
        restored = SignedDocument.from_dict(signed.to_dict())
        assert restored.oid == signed.oid
        assert restored.public_key == signed.public_key
        assert set(restored.elements) == {"a.html", "img/b.png"}
        restored.state().validate()

    def test_total_size(self, make_owner):
        signed = make_owner(elements={"a": b"1234", "b": b"56"}).publish(validity=60)
        assert signed.total_size == 6


class TestIdentity:
    def test_request_identity_certificate(self, make_owner, session_ca):
        owner = make_owner("vu.nl/shop")
        cert = owner.request_identity_certificate(session_ca)
        assert cert.subject_name == "vu.nl/shop"
        assert cert.subject_key == owner.public_key
        signed = owner.publish(validity=60)
        assert len(signed.identity_certs) == 1
        # Identity proofs travel with the signed document.
        restored_state = signed.state()
        assert restored_state.identity_certs[0].subject_name == "vu.nl/shop"
