"""Page elements: naming rules, hashing, content types."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashes import SHA1, SHA256
from repro.errors import ReproError
from repro.globedoc.element import (
    PageElement,
    guess_content_type,
    validate_element_name,
)


class TestNameValidation:
    @pytest.mark.parametrize(
        "name",
        ["index.html", "img/logo.png", "a/b/c.txt", "UPPER.HTML", "dash-name_1.js"],
    )
    def test_valid_names(self, name):
        assert validate_element_name(name) == name

    @pytest.mark.parametrize(
        "name",
        [
            "",
            "/absolute.html",
            "has\\backslash",
            "dot/./segment",
            "dot/../segment",
            "trailing/",
            "//double",
            "ctrl\x01char",
        ],
    )
    def test_invalid_names(self, name):
        with pytest.raises(ReproError):
            validate_element_name(name)

    def test_overlong_rejected(self):
        with pytest.raises(ReproError):
            validate_element_name("x" * 2000)

    def test_non_string_rejected(self):
        with pytest.raises(ReproError):
            validate_element_name(42)  # type: ignore[arg-type]


class TestContentType:
    @pytest.mark.parametrize(
        "name,ctype",
        [
            ("index.html", "text/html"),
            ("a.htm", "text/html"),
            ("story.txt", "text/plain"),
            ("pic.png", "image/png"),
            ("pic.JPG", "image/jpeg"),
            ("app.class", "application/java-vm"),
            ("mystery.bin", "application/octet-stream"),
        ],
    )
    def test_guesses(self, name, ctype):
        assert guess_content_type(name) == ctype

    def test_element_inherits_guess(self):
        assert PageElement("x.png", b"").content_type == "image/png"

    def test_explicit_type_kept(self):
        elem = PageElement("x.bin", b"", content_type="application/wasm")
        assert elem.content_type == "application/wasm"


class TestPageElement:
    def test_size(self):
        assert PageElement("a.txt", b"12345").size == 5

    def test_content_coerced_to_bytes(self):
        elem = PageElement("a.txt", bytearray(b"ab"))
        assert isinstance(elem.content, bytes)

    def test_content_hash_suites(self):
        elem = PageElement("a.txt", b"data")
        assert elem.content_hash(SHA1) == SHA1.digest(b"data")
        assert elem.content_hash(SHA256) == SHA256.digest(b"data")

    def test_with_content(self):
        original = PageElement("a.txt", b"v1")
        updated = original.with_content(b"v2")
        assert updated.name == "a.txt"
        assert updated.content == b"v2"
        assert original.content == b"v1"  # immutable

    def test_dict_roundtrip(self):
        elem = PageElement("a/b.png", b"\x89PNG", metadata={"author": "vu"})
        restored = PageElement.from_dict(elem.to_dict())
        assert restored == elem

    def test_invalid_name_rejected_at_construction(self):
        with pytest.raises(ReproError):
            PageElement("../escape.html", b"")

    @given(st.binary(max_size=256))
    def test_hash_matches_content(self, content):
        elem = PageElement("f.bin", content)
        assert elem.content_hash() == SHA1.digest(content)
