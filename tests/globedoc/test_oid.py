"""Self-certifying OIDs: derivation, matching, the 160-bit property."""

from __future__ import annotations

import pytest

from repro.crypto.hashes import SHA1, SHA256
from repro.errors import AuthenticityError, ReproError
from repro.globedoc.oid import ObjectId


class TestDerivation:
    def test_160_bits(self, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        assert oid.bits == 160  # "a 160-bit number" (§2)
        assert len(oid.hex) == 40

    def test_deterministic(self, shared_keys):
        a = ObjectId.from_public_key(shared_keys.public)
        b = ObjectId.from_public_key(shared_keys.public)
        assert a == b

    def test_distinct_keys_distinct_oids(self, shared_keys, other_keys):
        assert ObjectId.from_public_key(shared_keys.public) != ObjectId.from_public_key(
            other_keys.public
        )

    def test_sha256_variant(self, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public, SHA256)
        assert oid.bits == 256

    def test_wrong_digest_length_rejected(self):
        with pytest.raises(ReproError):
            ObjectId(digest=b"short")

    def test_hex_roundtrip(self, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        assert ObjectId.from_hex(oid.hex) == oid

    def test_invalid_hex_rejected(self):
        with pytest.raises(ReproError):
            ObjectId.from_hex("zz" * 20)

    def test_dict_roundtrip(self, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public, SHA256)
        assert ObjectId.from_dict(oid.to_dict()) == oid


class TestSelfCertification:
    def test_matches_own_key(self, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        assert oid.matches_key(shared_keys.public)
        assert oid.check_key(shared_keys.public) is shared_keys.public

    def test_rejects_other_key(self, shared_keys, other_keys):
        """The keystone check: a replica presenting a different key is
        provably not part of the object (§3.1.2)."""
        oid = ObjectId.from_public_key(shared_keys.public)
        assert not oid.matches_key(other_keys.public)
        with pytest.raises(AuthenticityError):
            oid.check_key(other_keys.public)

    def test_suite_mismatch_means_no_match(self, shared_keys):
        oid_sha256 = ObjectId.from_public_key(shared_keys.public, SHA256)
        # Same key, but the OID pins its own suite; matching uses it.
        assert oid_sha256.matches_key(shared_keys.public)
        assert oid_sha256.hex != ObjectId.from_public_key(shared_keys.public, SHA1).hex
