"""The integrity certificate: the paper's Fig. 2 artifact and its checks."""

from __future__ import annotations

import pytest

from repro.crypto.hashes import SHA256
from repro.errors import (
    AuthenticityError,
    CertificateError,
    ConsistencyError,
    FreshnessError,
)
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import ElementEntry, IntegrityCertificate
from repro.globedoc.oid import ObjectId
from repro.sim.clock import SimClock
from tests.conftest import EPOCH


@pytest.fixture
def elements():
    return [
        PageElement("index.html", b"<html>main</html>"),
        PageElement("img/a.png", b"\x89PNG-A"),
        PageElement("img/b.png", b"\x89PNG-B"),
    ]


@pytest.fixture
def oid_hex(shared_keys):
    return ObjectId.from_public_key(shared_keys.public).hex


@pytest.fixture
def cert(shared_keys, oid_hex, elements):
    return IntegrityCertificate.for_elements(
        shared_keys, oid_hex, elements, expires_at=EPOCH + 3600
    )


class TestBuild:
    def test_entries_per_element(self, cert, elements):
        assert cert.element_names == sorted(e.name for e in elements)
        for element in elements:
            entry = cert.entry_for(element.name)
            assert entry.content_hash == element.content_hash(cert.suite)
            assert entry.expires_at == EPOCH + 3600

    def test_version_and_oid(self, cert, oid_hex):
        assert cert.version == 1
        assert cert.oid_hex == oid_hex

    def test_empty_rejected(self, shared_keys, oid_hex):
        with pytest.raises(CertificateError):
            IntegrityCertificate.build(shared_keys, oid_hex, [])

    def test_duplicate_names_rejected(self, shared_keys, oid_hex):
        entry = ElementEntry(name="a", content_hash=b"\x00" * 20, expires_at=1.0)
        with pytest.raises(CertificateError):
            IntegrityCertificate.build(shared_keys, oid_hex, [entry, entry])

    def test_per_element_expiry(self, shared_keys, oid_hex, elements):
        cert = IntegrityCertificate.for_elements(
            shared_keys,
            oid_hex,
            elements,
            expires_at=EPOCH + 3600,
            per_element_expiry={"index.html": EPOCH + 60},
        )
        assert cert.entry_for("index.html").expires_at == EPOCH + 60
        assert cert.entry_for("img/a.png").expires_at == EPOCH + 3600

    def test_expiry_override_unknown_element_rejected(
        self, shared_keys, oid_hex, elements
    ):
        with pytest.raises(CertificateError):
            IntegrityCertificate.for_elements(
                shared_keys,
                oid_hex,
                elements,
                expires_at=EPOCH + 3600,
                per_element_expiry={"ghost.html": EPOCH + 60},
            )

    def test_sha256_suite(self, shared_keys, oid_hex, elements):
        cert = IntegrityCertificate.for_elements(
            shared_keys, oid_hex, elements, expires_at=EPOCH + 10, suite=SHA256
        )
        assert cert.suite.name == "sha256"
        cert.verify_signature(shared_keys.public)
        assert len(cert.entry_for("index.html").content_hash) == 32


class TestSignature:
    def test_verifies_under_object_key(self, cert, shared_keys):
        cert.verify_signature(shared_keys.public)

    def test_rejects_other_key(self, cert, other_keys):
        with pytest.raises(AuthenticityError):
            cert.verify_signature(other_keys.public)

    def test_dict_roundtrip_preserves_signature(self, cert, shared_keys):
        restored = IntegrityCertificate.from_dict(cert.to_dict())
        restored.verify_signature(shared_keys.public)
        assert restored.entries == cert.entries

    def test_from_dict_rejects_wrong_type(self, shared_keys):
        from repro.crypto.certificates import Certificate

        other = Certificate.issue(shared_keys, "not/integrity", {})
        with pytest.raises(CertificateError):
            IntegrityCertificate.from_dict(other.to_dict())


class TestElementChecks:
    """The §3.2.2 client checks, one by one."""

    def test_genuine_element_passes(self, cert, elements):
        entry = cert.check_element("index.html", elements[0], SimClock(EPOCH + 10))
        assert entry.name == "index.html"

    def test_tampered_content_fails_authenticity(self, cert, elements):
        tampered = elements[0].with_content(b"<html>evil</html>")
        with pytest.raises(AuthenticityError):
            cert.check_element("index.html", tampered, SimClock(EPOCH + 10))

    def test_expired_fails_freshness(self, cert, elements):
        with pytest.raises(FreshnessError):
            cert.check_element("index.html", elements[0], SimClock(EPOCH + 3601))

    def test_exactly_at_expiry_passes(self, cert, elements):
        cert.check_element("index.html", elements[0], SimClock(EPOCH + 3600))

    def test_swapped_name_fails_consistency(self, cert, elements):
        # Server returns img/a.png for a request of index.html.
        with pytest.raises(ConsistencyError):
            cert.check_element("index.html", elements[1], SimClock(EPOCH + 10))

    def test_unknown_element_fails_consistency(self, cert):
        foreign = PageElement("not-in-cert.html", b"data")
        with pytest.raises(ConsistencyError):
            cert.check_element("not-in-cert.html", foreign, SimClock(EPOCH + 10))

    def test_entry_for_unknown_raises(self, cert):
        with pytest.raises(ConsistencyError):
            cert.entry_for("ghost.html")


class TestWireSize:
    def test_eleven_element_cert_near_2kb(self, shared_keys, oid_hex):
        """§4: the key + certificate prefetch is 'about 2KB of extra
        information' — our 11-entry certificate must be in that league."""
        elements = [PageElement(f"e{i}.png", bytes([i])) for i in range(11)]
        cert = IntegrityCertificate.for_elements(
            shared_keys, oid_hex, elements, expires_at=EPOCH + 10
        )
        assert 1000 < cert.wire_size < 4096
