"""Hyperlink extraction and rewriting."""

from __future__ import annotations

from repro.globedoc.links import extract_links, intra_object_links, rewrite_links

HTML = (
    '<html><body>'
    '<a href="img/photo.png">relative</a>'
    '<a href="globe://vu.nl/other!/index.html">absolute globedoc</a>'
    '<a href="http://example.com/x">absolute http</a>'
    '<img src="icons/star.gif">'
    '<a href="#section">fragment</a>'
    "</body></html>"
)


class TestExtraction:
    def test_finds_all_links(self):
        links = extract_links(HTML)
        assert [l.target for l in links] == [
            "img/photo.png",
            "globe://vu.nl/other!/index.html",
            "http://example.com/x",
            "icons/star.gif",
            "#section",
        ]

    def test_attr_kinds(self):
        links = extract_links(HTML)
        assert links[0].attr == "href"
        assert links[3].attr == "src"

    def test_classification(self):
        links = extract_links(HTML)
        assert links[0].is_relative and not links[0].is_absolute
        assert links[1].is_absolute and links[1].is_globedoc
        assert links[2].is_absolute and not links[2].is_globedoc
        assert not links[4].is_relative  # fragments are not element refs

    def test_as_hybrid(self):
        links = extract_links(HTML)
        hybrid = links[1].as_hybrid()
        assert hybrid is not None
        assert hybrid.object_name == "vu.nl/other"
        assert links[0].as_hybrid() is None

    def test_single_quotes(self):
        links = extract_links("<a href='x.html'>y</a>")
        assert links[0].target == "x.html"

    def test_no_links(self):
        assert extract_links("<p>plain text</p>") == []


class TestIntraObjectLinks:
    def test_only_relative(self):
        assert intra_object_links(HTML) == ["img/photo.png", "icons/star.gif"]


class TestRewriting:
    def test_rewrite_selected(self):
        out = rewrite_links(
            HTML,
            lambda t: "globe://new/target!/x.html" if t.startswith("http://") else None,
        )
        assert "http://example.com/x" not in out
        assert "globe://new/target!/x.html" in out
        # Untouched links survive verbatim.
        assert 'href="img/photo.png"' in out

    def test_identity_rewrite(self):
        assert rewrite_links(HTML, lambda t: None) == HTML

    def test_rewrite_all(self):
        out = rewrite_links("<a href='a'></a><a href='b'></a>", lambda t: t.upper())
        assert "href='A'" in out and "href='B'" in out

    def test_rewrite_preserves_surrounding_html(self):
        html = "<p>before</p><a href='x'>l</a><p>after</p>"
        out = rewrite_links(html, lambda t: "y")
        assert out == "<p>before</p><a href='y'>l</a><p>after</p>"
