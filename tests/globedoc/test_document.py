"""Document state: element management and the state/cert invariant."""

from __future__ import annotations

import pytest

from repro.errors import ConsistencyError, ReproError
from repro.globedoc.document import DocumentState, GlobeDocInterface
from repro.globedoc.element import PageElement
from repro.server.localrep import ReplicaLR


class TestDocumentState:
    def test_add_and_get(self, shared_keys):
        state = DocumentState(public_key=shared_keys.public)
        elem = PageElement("a.html", b"data")
        state.add_element(elem)
        assert state.element("a.html") == elem
        assert state.element_names == ["a.html"]

    def test_missing_element_raises_consistency(self, shared_keys):
        state = DocumentState(public_key=shared_keys.public)
        with pytest.raises(ConsistencyError):
            state.element("ghost.html")

    def test_remove(self, shared_keys):
        state = DocumentState(public_key=shared_keys.public)
        state.add_element(PageElement("a.html", b""))
        state.remove_element("a.html")
        assert state.element_names == []
        with pytest.raises(ReproError):
            state.remove_element("a.html")

    def test_total_size(self, shared_keys):
        state = DocumentState(public_key=shared_keys.public)
        state.add_element(PageElement("a", b"12345"))
        state.add_element(PageElement("b", b"123"))
        assert state.total_size == 8


class TestValidation:
    def test_signed_document_state_validates(self, make_owner):
        owner = make_owner(elements={"a.html": b"x", "b.png": b"y"})
        state = owner.publish(validity=60).state()
        state.validate()  # no raise

    def test_missing_certificate_rejected(self, shared_keys):
        state = DocumentState(public_key=shared_keys.public)
        state.add_element(PageElement("a", b""))
        with pytest.raises(ReproError, match="no integrity certificate"):
            state.validate()

    def test_element_set_mismatch_rejected(self, make_owner):
        owner = make_owner(elements={"a.html": b"x"})
        state = owner.publish(validity=60).state()
        state.add_element(PageElement("extra.html", b"z"))
        with pytest.raises(ReproError, match="differs"):
            state.validate()

    def test_hash_mismatch_rejected(self, make_owner):
        owner = make_owner(elements={"a.html": b"x"})
        state = owner.publish(validity=60).state()
        state.elements["a.html"] = PageElement("a.html", b"tampered")
        with pytest.raises(ReproError, match="does not match"):
            state.validate()

    def test_copy_is_independent(self, make_owner):
        owner = make_owner(elements={"a.html": b"x"})
        state = owner.publish(validity=60).state()
        clone = state.copy()
        clone.add_element(PageElement("b.html", b"y"))
        assert "b.html" not in state.elements


class TestInterfaceConformance:
    def test_replica_lr_satisfies_protocol(self, make_owner):
        owner = make_owner()
        lr = ReplicaLR(owner.publish(validity=60).state())
        assert isinstance(lr, GlobeDocInterface)
        assert lr.get_public_key() == owner.public_key
        assert lr.list_elements() == ["index.html"]
