"""Hybrid URLs: both forms, passthrough, roundtrips."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UrlError
from repro.globedoc.oid import ObjectId
from repro.globedoc.urls import GLOBE_PREFIX, HybridUrl


class TestNameForm:
    def test_simple_host(self):
        url = HybridUrl.parse("globe://vu.nl/index.html")
        assert url.is_globedoc
        assert url.object_name == "vu.nl"
        assert url.element_name == "index.html"
        assert url.oid is None

    def test_pathful_object_name(self):
        url = HybridUrl.parse("globe://vu.nl/research/report!/img/fig1.png")
        assert url.object_name == "vu.nl/research/report"
        assert url.element_name == "img/fig1.png"

    def test_default_element(self):
        assert HybridUrl.parse("globe://vu.nl").element_name == "index.html"
        assert HybridUrl.parse("globe://vu.nl/").element_name == "index.html"

    def test_constructor_roundtrip_simple(self):
        url = HybridUrl.for_name("vu.nl", "a.html")
        parsed = HybridUrl.parse(url.raw)
        assert parsed.object_name == "vu.nl"
        assert parsed.element_name == "a.html"

    def test_constructor_roundtrip_pathful(self):
        url = HybridUrl.for_name("vu.nl/research/report", "img/x.png")
        parsed = HybridUrl.parse(url.raw)
        assert parsed.object_name == "vu.nl/research/report"
        assert parsed.element_name == "img/x.png"

    def test_empty_object_name_rejected(self):
        with pytest.raises(UrlError):
            HybridUrl.for_name("", "a.html")


class TestOidForm:
    def test_roundtrip(self, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        url = HybridUrl.for_oid(oid, "img/logo.png")
        parsed = HybridUrl.parse(url.raw)
        assert parsed.oid == oid
        assert parsed.element_name == "img/logo.png"
        assert parsed.object_name is None

    def test_malformed_oid_form_rejected(self):
        with pytest.raises(UrlError):
            HybridUrl.parse("globe://oid/deadbeef")  # missing element

    def test_bad_hex_rejected(self):
        with pytest.raises(UrlError):
            HybridUrl.parse("globe://oid/nothex!/x.html")


class TestPassthrough:
    @pytest.mark.parametrize(
        "url", ["http://example.com/a.html", "https://example.com/"]
    )
    def test_http_is_passthrough(self, url):
        parsed = HybridUrl.parse(url)
        assert not parsed.is_globedoc
        assert parsed.raw == url

    def test_unknown_scheme_rejected(self):
        with pytest.raises(UrlError):
            HybridUrl.parse("ftp://example.com/file")

    def test_empty_rejected(self):
        with pytest.raises(UrlError):
            HybridUrl.parse("")

    def test_missing_host_rejected(self):
        with pytest.raises(UrlError):
            HybridUrl.parse("globe:///index.html")


class TestSibling:
    def test_sibling_name_form(self):
        url = HybridUrl.for_name("vu.nl/doc", "index.html")
        sibling = url.sibling("img/x.png")
        assert sibling.object_name == "vu.nl/doc"
        assert sibling.element_name == "img/x.png"

    def test_sibling_oid_form(self, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        sibling = HybridUrl.for_oid(oid, "a.html").sibling("b.html")
        assert sibling.oid == oid
        assert sibling.element_name == "b.html"

    def test_sibling_of_passthrough_rejected(self):
        with pytest.raises(UrlError):
            HybridUrl.parse("http://x.com/a").sibling("b")


_names = st.from_regex(r"[a-z][a-z0-9]{0,8}(\.[a-z]{2,3})?(/[a-z0-9]{1,8}){0,2}", fullmatch=True)
_elements = st.from_regex(r"[a-z0-9]{1,8}(/[a-z0-9]{1,8}){0,2}\.[a-z]{2,4}", fullmatch=True)


class TestProperties:
    @given(_names, _elements)
    def test_name_form_roundtrip(self, object_name, element_name):
        url = HybridUrl.for_name(object_name, element_name)
        parsed = HybridUrl.parse(url.raw)
        assert parsed.object_name == object_name.lower() or parsed.object_name == object_name
        assert parsed.element_name == element_name

    @given(_elements)
    def test_oid_form_roundtrip(self, element_name):
        oid = ObjectId(digest=bytes(range(20)))
        parsed = HybridUrl.parse(HybridUrl.for_oid(oid, element_name).raw)
        assert parsed.oid == oid
        assert parsed.element_name == element_name
