"""Canonical encoding: determinism, invertibility, rejection of the
unencodable. Signatures live and die by this module, so the property
tests are strict."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.util.encoding import (
    b64decode,
    b64encode,
    canonical_bytes,
    canonical_json,
    from_canonical_bytes,
)

# Strategy for canonically-encodable values: JSON scalars + bytes,
# nested in lists and string-keyed dicts.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=64),
    st.binary(max_size=64),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(
            st.text(max_size=16).filter(lambda k: k != "__b64__"), children, max_size=5
        ),
    ),
    max_leaves=20,
)


class TestCanonicalJson:
    def test_sorted_keys(self):
        a = canonical_json({"b": 1, "a": 2})
        b = canonical_json({"a": 2, "b": 1})
        assert a == b == '{"a":2,"b":1}'

    def test_no_whitespace(self):
        assert " " not in canonical_json({"a": [1, 2, {"b": "c"}]})

    def test_bytes_envelope(self):
        encoded = canonical_json({"data": b"\x00\x01"})
        assert "__b64__" in encoded

    def test_nested_dict_ordering_deterministic(self):
        v1 = {"outer": {"z": 1, "a": {"m": 2, "b": 3}}}
        v2 = {"outer": {"a": {"b": 3, "m": 2}, "z": 1}}
        assert canonical_bytes(v1) == canonical_bytes(v2)

    def test_tuple_encodes_as_list(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])


class TestRejections:
    def test_nan_rejected(self):
        with pytest.raises(EncodingError):
            canonical_bytes(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(EncodingError):
            canonical_bytes(float("inf"))

    def test_non_string_keys_rejected(self):
        with pytest.raises(EncodingError):
            canonical_bytes({1: "a"})

    def test_reserved_key_rejected(self):
        with pytest.raises(EncodingError):
            canonical_bytes({"__b64__": "sneaky"})

    def test_object_rejected(self):
        with pytest.raises(EncodingError):
            canonical_bytes(object())

    def test_set_rejected(self):
        with pytest.raises(EncodingError):
            canonical_bytes({1, 2})

    def test_invalid_payload_decode(self):
        with pytest.raises(EncodingError):
            from_canonical_bytes(b"\xff\xfe not json")

    def test_malformed_bytes_envelope(self):
        with pytest.raises(EncodingError):
            from_canonical_bytes(b'{"__b64__": 42}')


class TestBase64:
    def test_roundtrip(self):
        assert b64decode(b64encode(b"\x00\xffhello")) == b"\x00\xffhello"

    def test_invalid_rejected(self):
        with pytest.raises(EncodingError):
            b64decode("not!!base64***")


class TestProperties:
    @given(_values)
    @settings(max_examples=200)
    def test_roundtrip(self, value):
        assert from_canonical_bytes(canonical_bytes(value)) == value

    @given(_values)
    @settings(max_examples=100)
    def test_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)

    @given(st.binary(max_size=256))
    def test_bytes_roundtrip_exact(self, raw):
        assert from_canonical_bytes(canonical_bytes({"k": raw}))["k"] == raw
