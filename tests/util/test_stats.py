"""Statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import geometric_mean, percentile, summarize


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_single_sample(self):
        s = summarize([7.0])
        assert s.mean == s.median == s.minimum == s.maximum == 7.0
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_bounds_invariant(self, samples):
        s = summarize(samples)
        eps = 1e-6  # float accumulation slack in the mean
        assert s.minimum <= s.median <= s.maximum
        assert s.minimum - eps <= s.mean <= s.maximum + eps
        assert s.minimum <= s.p95 <= s.maximum


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_linear_interpolation(self):
        # NumPy's default: midway between the two order statistics.
        assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert percentile([float(i) for i in range(1, 11)], 50) == pytest.approx(5.5)
        assert percentile([float(i) for i in range(1, 11)], 95) == pytest.approx(9.55)

    def test_single_sample_every_q(self):
        for q in (0, 25, 50, 95, 100):
            assert percentile([42.0], q) == 42.0

    def test_extremes_are_min_and_max(self):
        samples = [5.0, 1.0, 9.0, 3.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 9.0

    def test_q_out_of_range_rejected(self):
        for q in (-0.1, 100.1, 200):
            with pytest.raises(ValueError, match=r"\[0, 100\]"):
                percentile([1.0, 2.0], q)

    def test_nan_samples_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            percentile([1.0, float("nan")], 50)

    def test_order_invariant(self):
        assert percentile([3.0, 1.0, 2.0], 95) == percentile([1.0, 2.0, 3.0], 95)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_within_bounds(self, samples, q):
        assert min(samples) <= percentile(samples, q) <= max(samples)


class TestSummarizeNaN:
    def test_nan_samples_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            summarize([1.0, float("nan"), 3.0])


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, samples):
        g = geometric_mean(samples)
        assert min(samples) - 1e-9 <= g <= max(samples) + 1e-9
