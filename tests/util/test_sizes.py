"""Size constants and formatting."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.sizes import KB, MB, format_size, parse_size


class TestFormatSize:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (KB, "1KB"),
            (10 * KB, "10KB"),
            (300 * KB, "300KB"),
            (MB, "1MB"),
            (5 * MB, "5MB"),
        ],
    )
    def test_exact_multiples(self, value, expected):
        assert format_size(value) == expected

    def test_fractional_kb(self):
        assert format_size(1536) == "1.5KB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-1)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1KB", KB),
            ("1 kb", KB),
            ("1MB", MB),
            ("512", 512),
            ("512B", 512),
            ("1.5KB", 1536),
        ],
    )
    def test_values(self, text, expected):
        assert parse_size(text) == expected

    @given(st.integers(min_value=0, max_value=10 * MB))
    def test_roundtrip_through_format(self, n):
        # format_size is lossy for fractional displays, but exact
        # multiples and raw bytes must round-trip.
        formatted = format_size(n)
        if formatted.endswith(("KB", "MB", "B")) and "." not in formatted:
            assert parse_size(formatted) == n
