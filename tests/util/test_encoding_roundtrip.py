"""Seeded property-style round-trips for the canonical encoder.

~200 random documents per seed: decode(encode(x)) must equal x, the
canonical bytes must be identical regardless of dict insertion order,
and digests over the canonical form must be stable — the properties the
whole signature scheme rests on (§3.2.2 signs canonical bytes).
"""

from __future__ import annotations

import hashlib

import pytest

from repro.sim.random import make_rng
from repro.util.encoding import (
    canonical_bytes,
    canonical_json,
    from_canonical_bytes,
    from_wire,
    to_wire,
)

SEEDS = [0, 1, 7]
DOCS_PER_SEED = 200

#: A script-diverse alphabet so string escaping is exercised beyond ASCII.
ALPHABET = "abc XYZ 012 _-/.\"\\\n\t é ß λ Ж 漢 🙂"


def random_string(rng, max_len: int = 12) -> str:
    length = int(rng.integers(0, max_len))
    return "".join(
        ALPHABET[int(i)] for i in rng.integers(0, len(ALPHABET), size=length)
    )


def random_value(rng, depth: int = 0):
    """A random JSON-able document (bytes included via the tagged form)."""
    kinds = ["none", "bool", "int", "float", "str", "bytes"]
    if depth < 3:
        kinds += ["list", "dict"]
    kind = kinds[int(rng.integers(0, len(kinds)))]
    if kind == "none":
        return None
    if kind == "bool":
        return bool(rng.integers(0, 2))
    if kind == "int":
        return int(rng.integers(-(2**48), 2**48))
    if kind == "float":
        return float(rng.normal()) * 10 ** int(rng.integers(-6, 7))
    if kind == "str":
        return random_string(rng)
    if kind == "bytes":
        return bytes(rng.integers(0, 256, size=int(rng.integers(0, 16))).tolist())
    if kind == "list":
        return [random_value(rng, depth + 1) for _ in range(int(rng.integers(0, 5)))]
    keys = []
    for _ in range(int(rng.integers(0, 5))):
        key = random_string(rng) or "k"
        if key not in keys:  # dedup without set-iteration (hash-seed) order
            keys.append(key)
    return {key: random_value(rng, depth + 1) for key in keys}


def reordered(value, rng):
    """The same document with every dict's insertion order shuffled."""
    if isinstance(value, dict):
        keys = list(value)
        rng.shuffle(keys)
        return {key: reordered(value[key], rng) for key in keys}
    if isinstance(value, list):
        return [reordered(item, rng) for item in value]
    return value


@pytest.mark.parametrize("seed", SEEDS)
class TestCanonicalRoundTrip:
    def test_decode_encode_identity(self, seed):
        rng = make_rng(seed)
        for _ in range(DOCS_PER_SEED):
            value = random_value(rng)
            assert from_canonical_bytes(canonical_bytes(value)) == value

    def test_wire_roundtrip_matches_canonical(self, seed):
        rng = make_rng(seed)
        for _ in range(DOCS_PER_SEED):
            value = random_value(rng)
            assert from_wire(to_wire(value)) == value

    def test_insertion_order_invariance(self, seed):
        rng = make_rng(seed)
        for _ in range(DOCS_PER_SEED):
            value = random_value(rng)
            shuffled = reordered(value, rng)
            assert shuffled == value  # semantic equality…
            assert canonical_bytes(shuffled) == canonical_bytes(value)  # …and byte

    def test_digest_stability_within_run(self, seed):
        """Hashing the canonical form twice gives the same digest — the
        signature-verification precondition."""
        rng = make_rng(seed)
        for _ in range(DOCS_PER_SEED):
            value = random_value(rng)
            first = hashlib.sha1(canonical_bytes(value)).hexdigest()
            again = hashlib.sha1(canonical_bytes(reordered(value, rng))).hexdigest()
            assert first == again


class TestCorpusDigest:
    """A golden digest over the whole seed-0 corpus: any change to the
    canonical encoding (key order, float formatting, bytes tagging,
    separators) breaks every existing signature in the world, so it must
    show up as a loud test failure, not a silent drift."""

    GOLDEN = "3d5292677bf921673f98d839ad9a14e82d13191fcd95a4f2664a2aad2a084338"

    def corpus_digest(self) -> str:
        rng = make_rng(0)
        h = hashlib.sha256()
        for _ in range(DOCS_PER_SEED):
            h.update(canonical_bytes(random_value(rng)))
        return h.hexdigest()

    def test_corpus_digest_pinned(self):
        assert self.corpus_digest() == self.GOLDEN

    def test_corpus_generation_deterministic(self):
        assert self.corpus_digest() == self.corpus_digest()


class TestCanonicalJson:
    def test_sorted_keys_and_compact(self):
        assert canonical_json({"b": 1, "a": [True, None]}) == '{"a":[true,null],"b":1}'

    def test_bytes_tagged(self):
        encoded = canonical_json({"blob": b"\x00\x01"})
        assert "__b64__" in encoded
        assert from_canonical_bytes(encoded.encode()) == {"blob": b"\x00\x01"}
