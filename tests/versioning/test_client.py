"""The verified reader: binding discipline, cache purge, withholding."""

from __future__ import annotations

import pytest

from repro.crypto.keys import PublicKey
from repro.errors import BranchWithholdingError
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from repro.proxy.checks import SecurityChecker
from repro.proxy.contentcache import ContentCache
from repro.server.objectserver import ObjectServer
from repro.versioning import DeltaDag
from repro.versioning.client import VersionedReader


@pytest.fixture
def world(clock, owner_keys, oid, make_writer):
    transport = LoopbackTransport()
    rpc = RpcClient(transport)
    server = ObjectServer(host="ginger.cs.vu.nl", site="root/site/vu", clock=clock)
    transport.register(server.endpoint, server.rpc_server().handle_frame)
    server.versioning.register_object(owner_keys.public)
    writer, grant = make_writer("alice")
    server.versioning.put_grant(oid.hex, grant)
    view = DeltaDag()
    server.versioning.put_delta(oid.hex, writer.put(view, "body", b"version-one"))
    cache = ContentCache(clock=clock, ttl=300.0)
    reader = VersionedReader(rpc, SecurityChecker(clock), content_cache=cache)
    return {
        "server": server, "rpc": rpc, "transport": transport, "writer": writer,
        "view": view, "cache": cache, "reader": reader, "oid": oid,
    }


class TestBinding:
    def test_read_merges_and_binds(self, world):
        access = world["reader"].read(world["server"].endpoint, world["oid"])
        assert access.merged.elements["body"].content == b"version-one"
        assert access.deltas_fetched == 1
        assert world["reader"].known_frontier(world["oid"].hex) is not None

    def test_incremental_reread_fetches_nothing(self, world):
        reader, server, oid = world["reader"], world["server"], world["oid"]
        reader.read(server.endpoint, oid)
        again = reader.read(server.endpoint, oid)
        assert again.deltas_fetched == 0
        assert again.merged.elements["body"].content == b"version-one"


class TestCachePurge:
    def test_newer_frontier_purges_stale_entries(self, world):
        """Regression: a strictly newer verified frontier must evict
        every cached element of the object before re-caching the new
        merge — a reader may never serve pre-merge bytes as current."""
        reader, server, oid = world["reader"], world["server"], world["oid"]
        reader.read(server.endpoint, oid)
        cached = reader.cached_element(oid.hex, "body")
        assert cached is not None and cached.content == b"version-one"

        server.versioning.put_delta(
            oid.hex, world["writer"].put(world["view"], "body", b"version-two")
        )
        access = reader.read(server.endpoint, oid)
        assert access.cache_purged >= 1
        assert reader.cached_element(oid.hex, "body").content == b"version-two"

    def test_unchanged_frontier_purges_nothing(self, world):
        reader, server, oid = world["reader"], world["server"], world["oid"]
        reader.read(server.endpoint, oid)
        again = reader.read(server.endpoint, oid)
        assert again.cache_purged == 0
        assert reader.cached_element(oid.hex, "body").content == b"version-one"

    def test_deleted_element_leaves_no_cache_ghost(self, world):
        reader, server, oid = world["reader"], world["server"], world["oid"]
        server.versioning.put_delta(
            oid.hex, world["writer"].put(world["view"], "extra", b"short-lived")
        )
        reader.read(server.endpoint, oid)
        assert reader.cached_element(oid.hex, "extra") is not None
        server.versioning.put_delta(
            oid.hex, world["writer"].delete(world["view"], "extra")
        )
        reader.read(server.endpoint, oid)
        assert reader.cached_element(oid.hex, "extra") is None


class TestServedIdsFallback:
    def test_no_news_reread_without_claimed_id_list(self, world):
        """Regression: a server that omits ``peer_delta_ids`` must not
        turn every incremental no-news read into a false withholding
        alarm — the check falls back to DAG membership."""

        class StrippingRpc:
            def __init__(self, inner):
                self.inner = inner

            def call(self, endpoint, op, **kwargs):
                answer = self.inner.call(endpoint, op, **kwargs)
                if op == "versioning.fetch" and isinstance(answer, dict):
                    answer = {
                        k: v for k, v in answer.items() if k != "peer_delta_ids"
                    }
                return answer

        reader, server, oid = world["reader"], world["server"], world["oid"]
        reader.rpc = StrippingRpc(world["rpc"])
        reader.read(server.endpoint, oid)
        again = reader.read(server.endpoint, oid)
        assert again.deltas_fetched == 0
        assert again.merged.elements["body"].content == b"version-one"

    def test_store_fetch_carries_claimed_id_list(self, world):
        """The bare store's bundle guarantees the claimed-id field — no
        RPC wrapper needed for withholding judgements."""
        from repro.versioning import SignedDelta

        bundle = world["server"].versioning.fetch(world["oid"].hex)
        assert bundle["peer_delta_ids"] == [
            SignedDelta.from_dict(d).delta_id for d in bundle["deltas"]
        ]


class TestRekey:
    def test_rekeyed_writer_history_stays_readable(
        self, world, owner_keys, clock
    ):
        """Regression: an owner re-key (new grant, same writer id) must
        not make the writer's earlier deltas unverifiable — both grants
        travel, and each key's deltas verify under its own grant."""
        from repro.versioning import DocumentWriter, WriterGrant

        from tests.conftest import fast_keys

        reader, server, oid = world["reader"], world["server"], world["oid"]
        reader.read(server.endpoint, oid)
        new_keys = fast_keys()
        server.versioning.put_grant(
            oid.hex,
            WriterGrant.issue(
                owner_keys, oid, "alice", new_keys.public,
                granted_at=clock.now(),
            ),
        )
        rekeyed = DocumentWriter(new_keys, "alice", oid, clock)
        server.versioning.put_delta(
            oid.hex, rekeyed.put(world["view"], "body", b"version-two")
        )
        access = reader.read(server.endpoint, oid)
        assert access.merged.elements["body"].content == b"version-two"


class TestWithholding:
    def rolled_back_server(self, world):
        """A second server holding only the first delta — the state a
        rolled-back (or branch-withholding) replica would serve."""
        server, oid = world["server"], world["oid"]
        old = ObjectServer(
            host="canardo.inria.fr", site="root/site/inria", clock=server.clock
        )
        world["transport"].register(old.endpoint, old.rpc_server().handle_frame)
        full = server.versioning.fetch(oid.hex)
        from repro.versioning import SignedDelta, WriterGrant

        old.versioning.register_object(
            PublicKey(der=bytes(full["object_key_der"]))
        )
        for grant in full["grants"]:
            old.versioning.put_grant(oid.hex, WriterGrant.from_dict(grant))
        first = full["deltas"][0]
        old.versioning.put_delta(oid.hex, SignedDelta.from_dict(first))
        return old

    def test_rollback_after_bind_rejected(self, world):
        reader, server, oid = world["reader"], world["server"], world["oid"]
        server.versioning.put_delta(
            oid.hex, world["writer"].put(world["view"], "body", b"version-two")
        )
        reader.read(server.endpoint, oid)
        stale = self.rolled_back_server(world)
        with pytest.raises(BranchWithholdingError):
            reader.read(stale.endpoint, oid)

    def test_rejected_read_leaves_baseline_untouched(self, world):
        reader, server, oid = world["reader"], world["server"], world["oid"]
        server.versioning.put_delta(
            oid.hex, world["writer"].put(world["view"], "body", b"version-two")
        )
        reader.read(server.endpoint, oid)
        frontier = reader.known_frontier(oid.hex)
        stale = self.rolled_back_server(world)
        with pytest.raises(BranchWithholdingError):
            reader.read(stale.endpoint, oid)
        assert reader.known_frontier(oid.hex) == frontier
        assert reader.cached_element(oid.hex, "body").content == b"version-two"
