"""Shared multi-writer fixtures: an owner, its OID, and granted writers."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyPair
from repro.globedoc.oid import ObjectId
from repro.versioning import DocumentWriter, WriterGrant

from tests.conftest import fast_keys


@pytest.fixture(scope="module")
def owner_keys() -> KeyPair:
    return fast_keys()


@pytest.fixture(scope="module")
def oid(owner_keys) -> ObjectId:
    return ObjectId.from_public_key(owner_keys.public)


@pytest.fixture
def make_writer(owner_keys, oid, clock):
    """Factory: ``make_writer("alice")`` → (DocumentWriter, WriterGrant)."""

    def build(writer_id: str):
        keys = fast_keys()
        grant = WriterGrant.issue(
            owner_keys, oid, writer_id, keys.public, granted_at=clock.now()
        )
        return DocumentWriter(keys, writer_id, oid, clock), grant

    return build
