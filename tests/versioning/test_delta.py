"""Signed deltas: content-addressed, writer-signed DAG nodes."""

from __future__ import annotations

import pytest

from repro.errors import CertificateError, DeltaForgeryError, DeltaReplayError
from repro.globedoc.oid import ObjectId
from repro.versioning import DeltaOp, SignedDelta
from repro.versioning.delta import OP_DELETE, OP_PUT

from tests.conftest import fast_keys


def build_delta(keys, oid, clock, lamport=1, parents=(), name="body",
                content=b"hello"):
    return SignedDelta.build(
        keys, oid, "alice", lamport, parents,
        [DeltaOp(OP_PUT, name, content)], issued_at=clock.now(),
    )


class TestBuild:
    def test_delta_id_is_content_address(self, oid, clock):
        keys = fast_keys()
        first = build_delta(keys, oid, clock)
        same = SignedDelta.from_dict(first.to_dict())
        assert first.delta_id == same.delta_id
        different = build_delta(keys, oid, clock, content=b"other")
        assert first.delta_id != different.delta_id

    def test_empty_ops_refused(self, oid, clock):
        with pytest.raises(CertificateError):
            SignedDelta.build(
                fast_keys(), oid, "alice", 1, (), [], issued_at=clock.now()
            )

    def test_nonpositive_lamport_refused(self, oid, clock):
        with pytest.raises(CertificateError):
            build_delta(fast_keys(), oid, clock, lamport=0)

    def test_order_key_total_order(self, oid, clock):
        keys = fast_keys()
        low = build_delta(keys, oid, clock, lamport=1)
        high = build_delta(keys, oid, clock, lamport=2)
        assert high.order_key > low.order_key


class TestVerify:
    def test_genuine_delta_verifies(self, oid, clock):
        build_delta(fast_keys(), oid, clock).verify(oid)

    def test_cross_object_replay_rejected(self, oid, clock):
        other = ObjectId.from_public_key(fast_keys().public)
        delta = build_delta(fast_keys(), oid, clock)
        with pytest.raises(DeltaReplayError):
            delta.verify(other)

    def test_tampered_content_rejected(self, oid, clock):
        delta = build_delta(fast_keys(), oid, clock)
        data = delta.to_dict()
        for body in (data["body"], data["envelope"]["payload"]["body"]):
            body["ops"][0]["content"] = b"EVIL"
        with pytest.raises(DeltaForgeryError):
            SignedDelta.from_dict(data).verify(oid)

    def test_swapped_writer_key_rejected(self, oid, clock):
        # Re-pointing the embedded key at another identity breaks the
        # signature: the delta only ever verifies under its true signer.
        delta = build_delta(fast_keys(), oid, clock)
        data = delta.to_dict()
        for body in (data["body"], data["envelope"]["payload"]["body"]):
            body["writer_key_der"] = fast_keys().public.der
        with pytest.raises(DeltaForgeryError):
            SignedDelta.from_dict(data).verify(oid)

    def test_delete_op_roundtrips(self, oid, clock):
        delta = SignedDelta.build(
            fast_keys(), oid, "alice", 1, (),
            [DeltaOp(OP_DELETE, "body")], issued_at=clock.now(),
        )
        revived = SignedDelta.from_dict(delta.to_dict()).verify(oid)
        assert revived.ops[0].op == OP_DELETE
