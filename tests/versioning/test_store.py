"""The server-side delta store: admission, durability, fail-closed recovery."""

from __future__ import annotations

import zlib

import pytest

from repro.errors import (
    RecoveryIntegrityError,
    ReplicaError,
    SecurityError,
    UnauthorizedWriterError,
)
from repro.storage.store import DurableStore
from repro.storage.wal import FRAME_HEADER
from repro.util.encoding import canonical_bytes, from_canonical_bytes
from repro.versioning import (
    DeltaDag,
    VersionedObjectStore,
    WriterGrant,
    merge_deltas,
)
from repro.versioning.store import gossip_once

from tests.conftest import fast_keys


@pytest.fixture
def store(clock):
    return VersionedObjectStore(clock=clock)


def registered(store, owner_keys, oid, make_writer, writer_id="alice"):
    store.register_object(owner_keys.public)
    writer, grant = make_writer(writer_id)
    store.put_grant(oid.hex, grant)
    return writer


class TestAdmission:
    def test_register_is_idempotent(self, store, owner_keys, oid):
        assert store.register_object(owner_keys.public) == oid.hex
        assert store.register_object(owner_keys.public) == oid.hex

    def test_grant_for_unregistered_object_refused(
        self, store, owner_keys, oid, make_writer
    ):
        _, grant = make_writer("alice")
        with pytest.raises(ReplicaError):
            store.put_grant(oid.hex, grant)

    def test_forged_grant_refused(self, store, owner_keys, oid, clock):
        store.register_object(owner_keys.public)
        mallory = fast_keys()
        forged = WriterGrant.issue(
            mallory,
            type(oid).from_public_key(mallory.public),
            "alice",
            fast_keys().public,
            granted_at=clock.now(),
        )
        with pytest.raises(SecurityError):
            store.put_grant(oid.hex, forged)

    def test_delta_dedup_and_serving(self, store, owner_keys, oid, make_writer):
        writer = registered(store, owner_keys, oid, make_writer)
        dag = DeltaDag()
        delta = writer.put(dag, "body", b"first")
        assert store.put_delta(oid.hex, delta) is True
        assert store.put_delta(oid.hex, delta) is False
        bundle = store.fetch(oid.hex)
        assert [d["body"]["writer_id"] for d in bundle["deltas"]] == ["alice"]

    def test_ungranted_writer_refused(self, store, owner_keys, oid, clock):
        store.register_object(owner_keys.public)
        from repro.versioning import DocumentWriter

        eve = DocumentWriter(fast_keys(), "eve", oid, clock)
        with pytest.raises(UnauthorizedWriterError):
            store.put_delta(oid.hex, eve.put(DeltaDag(), "body", b"evil"))

    def test_fetch_have_ids_ships_only_the_difference(
        self, store, owner_keys, oid, make_writer
    ):
        writer = registered(store, owner_keys, oid, make_writer)
        dag = DeltaDag()
        first = writer.put(dag, "body", b"one")
        second = writer.put(dag, "body", b"two")
        store.put_delta(oid.hex, first)
        store.put_delta(oid.hex, second)
        bundle = store.fetch(oid.hex, have_ids=[first.delta_id])
        assert [d["body"]["lamport"] for d in bundle["deltas"]] == [2]


class TestFrontierCert:
    def test_granted_writer_cert_accepted(self, store, owner_keys, oid, make_writer):
        writer = registered(store, owner_keys, oid, make_writer)
        dag = DeltaDag()
        store.put_delta(oid.hex, writer.put(dag, "body", b"x"))
        merged = merge_deltas(dag.deltas, oid_hex=oid.hex)
        assert store.put_frontier_cert(oid.hex, writer.certify_frontier(merged))
        assert store.fetch(oid.hex)["frontier_cert"] is not None

    def test_cert_over_unknown_heads_refused(
        self, store, owner_keys, oid, make_writer
    ):
        writer = registered(store, owner_keys, oid, make_writer)
        dag = DeltaDag()
        delta = writer.put(dag, "body", b"never published")
        merged = merge_deltas(dag.deltas, oid_hex=oid.hex)
        cert = writer.certify_frontier(merged)
        with pytest.raises(ReplicaError):
            store.put_frontier_cert(oid.hex, cert)
        assert delta.delta_id not in store.delta_ids(oid.hex)

    def test_stale_lower_lamport_cert_dropped(
        self, store, owner_keys, oid, make_writer
    ):
        writer = registered(store, owner_keys, oid, make_writer)
        dag = DeltaDag()
        store.put_delta(oid.hex, writer.put(dag, "body", b"one"))
        old = writer.certify_frontier(merge_deltas(dag.deltas, oid_hex=oid.hex))
        store.put_delta(oid.hex, writer.put(dag, "body", b"two"))
        new = writer.certify_frontier(merge_deltas(dag.deltas, oid_hex=oid.hex))
        assert store.put_frontier_cert(oid.hex, new) is True
        assert store.put_frontier_cert(oid.hex, old) is False

    def concurrent_roots(self, clock, owner_keys, oid, make_writer):
        """Two writers, two concurrent root deltas, both at lamport 1."""
        alice, alice_grant = make_writer("alice")
        bob, bob_grant = make_writer("bob")
        d_alice = alice.put(DeltaDag(), "a", b"alice-root")
        d_bob = bob.put(DeltaDag(), "b", b"bob-root")

        def build_store():
            store = VersionedObjectStore(clock=clock)
            store.register_object(owner_keys.public)
            store.put_grant(oid.hex, alice_grant)
            store.put_grant(oid.hex, bob_grant)
            store.put_delta(oid.hex, d_alice)
            store.put_delta(oid.hex, d_bob)
            return store

        return alice, d_alice, d_bob, build_store

    def test_equal_lamport_tie_is_arrival_order_independent(
        self, clock, owner_keys, oid, make_writer
    ):
        """Regression: two concurrent certs with the same Lamport bound
        must settle on the same held cert on every replica, whatever
        order they arrived in."""
        alice, d_alice, d_bob, build_store = self.concurrent_roots(
            clock, owner_keys, oid, make_writer
        )
        cert_a = alice.certify_frontier(merge_deltas([d_alice], oid_hex=oid.hex))
        cert_b = alice.certify_frontier(merge_deltas([d_bob], oid_hex=oid.hex))
        assert cert_a.lamport == cert_b.lamport
        held = []
        for first, second in ((cert_a, cert_b), (cert_b, cert_a)):
            store = build_store()
            store.put_frontier_cert(oid.hex, first)
            store.put_frontier_cert(oid.hex, second)
            held.append(store.fetch(oid.hex)["frontier_cert"])
        assert held[0] == held[1]

    def test_equal_lamport_dominating_frontier_wins(
        self, clock, owner_keys, oid, make_writer
    ):
        """A stale pre-gossip frontier at the same Lamport bound never
        displaces the dominating one."""
        alice, d_alice, d_bob, build_store = self.concurrent_roots(
            clock, owner_keys, oid, make_writer
        )
        partial = alice.certify_frontier(merge_deltas([d_alice], oid_hex=oid.hex))
        full = alice.certify_frontier(
            merge_deltas([d_alice, d_bob], oid_hex=oid.hex)
        )
        assert partial.lamport == full.lamport
        store = build_store()
        assert store.put_frontier_cert(oid.hex, full) is True
        assert store.put_frontier_cert(oid.hex, partial) is False
        store = build_store()
        assert store.put_frontier_cert(oid.hex, partial) is True
        assert store.put_frontier_cert(oid.hex, full) is True


class TestRekey:
    """Owner re-key: historical grants must keep old deltas verifiable."""

    def rekey_alice(self, store, owner_keys, oid, clock):
        from repro.versioning import DocumentWriter

        new_keys = fast_keys()
        grant = WriterGrant.issue(
            owner_keys, oid, "alice", new_keys.public, granted_at=clock.now()
        )
        assert store.put_grant(oid.hex, grant) is True
        return DocumentWriter(new_keys, "alice", oid, clock)

    def test_rekey_retains_both_grants_and_old_deltas(
        self, store, owner_keys, oid, make_writer, clock
    ):
        writer = registered(store, owner_keys, oid, make_writer)
        dag = DeltaDag()
        old_delta = writer.put(dag, "body", b"under-old-key")
        store.put_delta(oid.hex, old_delta)
        rekeyed = self.rekey_alice(store, owner_keys, oid, clock)
        store.put_delta(oid.hex, rekeyed.put(dag, "body", b"under-new-key"))
        bundle = store.fetch(oid.hex)
        assert len(bundle["grants"]) == 2
        assert len(bundle["deltas"]) == 2
        assert old_delta.delta_id in bundle["peer_delta_ids"]

    def test_rekey_survives_compaction_and_recovery(
        self, clock, owner_keys, oid, make_writer, tmp_path
    ):
        """Regression: the snapshot must retain the pre-re-key grant, or
        recovery replays the old-key deltas against the new grant alone
        and bricks startup with RecoveryIntegrityError."""
        store = VersionedObjectStore(
            clock=clock, store=DurableStore(str(tmp_path), sync=False)
        )
        writer = registered(store, owner_keys, oid, make_writer)
        dag = DeltaDag()
        store.put_delta(oid.hex, writer.put(dag, "body", b"old-key-history"))
        rekeyed = self.rekey_alice(store, owner_keys, oid, clock)
        store.put_delta(oid.hex, rekeyed.put(dag, "body", b"new-key-history"))
        store.store.compact(store._snapshot_state())
        store.close()
        revived = VersionedObjectStore(
            clock=clock, store=DurableStore(str(tmp_path), sync=False)
        )
        assert revived.delta_count(oid.hex) == 2
        assert len(revived.fetch(oid.hex)["grants"]) == 2
        revived.close()

    def test_recovery_tolerates_since_expired_grant(
        self, clock, owner_keys, oid, tmp_path
    ):
        """A genuine grant whose not_after lapsed after admission must
        not fail recovery closed — freshness is a client-side concern;
        recovery re-proves signatures."""
        from repro.versioning import DocumentWriter

        store = VersionedObjectStore(
            clock=clock, store=DurableStore(str(tmp_path), sync=False)
        )
        store.register_object(owner_keys.public)
        keys = fast_keys()
        store.put_grant(
            oid.hex,
            WriterGrant.issue(
                owner_keys, oid, "shortlived", keys.public,
                granted_at=clock.now(), not_after=clock.now() + 10.0,
            ),
        )
        writer = DocumentWriter(keys, "shortlived", oid, clock)
        store.put_delta(oid.hex, writer.put(DeltaDag(), "body", b"in-time"))
        store.close()
        clock.advance(1000.0)
        revived = VersionedObjectStore(
            clock=clock, store=DurableStore(str(tmp_path), sync=False)
        )
        assert revived.recovered_deltas == 1
        assert revived.recovered_grants == 1
        revived.close()


class TestGossip:
    def test_one_round_converges_two_stores(
        self, clock, owner_keys, oid, make_writer
    ):
        left = VersionedObjectStore(clock=clock)
        right = VersionedObjectStore(clock=clock)
        alice, alice_grant = make_writer("alice")
        bob, bob_grant = make_writer("bob")
        for store in (left, right):
            store.register_object(owner_keys.public)
        left.put_grant(oid.hex, alice_grant)
        right.put_grant(oid.hex, bob_grant)
        left.put_delta(oid.hex, alice.put(DeltaDag(), "a", b"from-alice"))
        right.put_delta(oid.hex, bob.put(DeltaDag(), "b", b"from-bob"))

        from repro.net.rpc import RpcClient
        from repro.net.transport import LoopbackTransport
        from repro.server.objectserver import ObjectServer

        transport = LoopbackTransport()
        rpc = RpcClient(transport)
        peer = ObjectServer(host="peer.example", site="root/site/peer", clock=clock)
        peer.versioning = right
        transport.register(peer.endpoint, peer.rpc_server().handle_frame)

        stats = gossip_once(left, rpc, peer.endpoint, oid.hex)
        assert stats["pulled"] == 1 and stats["pushed"] == 1
        assert sorted(left.delta_ids(oid.hex)) == sorted(right.delta_ids(oid.hex))


class TestDurability:
    def publish(self, clock, owner_keys, oid, make_writer, data_dir):
        store = VersionedObjectStore(
            clock=clock, store=DurableStore(str(data_dir), sync=False)
        )
        writer = registered(store, owner_keys, oid, make_writer)
        dag = DeltaDag()
        store.put_delta(oid.hex, writer.put(dag, "body", b"durable-one"))
        store.put_delta(oid.hex, writer.put(dag, "body", b"durable-two"))
        merged = merge_deltas(dag.deltas, oid_hex=oid.hex)
        store.put_frontier_cert(oid.hex, writer.certify_frontier(merged))
        store.close()
        return merged.digest_hex

    def test_restart_recovers_and_reverifies(
        self, clock, owner_keys, oid, make_writer, tmp_path
    ):
        digest = self.publish(clock, owner_keys, oid, make_writer, tmp_path)
        revived = VersionedObjectStore(
            clock=clock, store=DurableStore(str(tmp_path), sync=False)
        )
        assert revived.recovered_deltas == 2
        assert revived.reverified_deltas == 2
        assert revived.recovered_grants == 1
        bundle = revived.fetch(oid.hex)
        from repro.versioning import SignedDelta

        merged = merge_deltas(
            [SignedDelta.from_dict(d) for d in bundle["deltas"]], oid_hex=oid.hex
        )
        assert merged.digest_hex == digest
        assert bundle["frontier_cert"] is not None
        revived.close()

    def test_crc_valid_tamper_fails_closed(
        self, clock, owner_keys, oid, make_writer, tmp_path
    ):
        """An at-rest rewrite with a recomputed checksum must still be
        caught: recovery re-verifies signatures, not just CRCs."""
        self.publish(clock, owner_keys, oid, make_writer, tmp_path)
        wal_path = tmp_path / "wal.log"
        data = wal_path.read_bytes()
        out = bytearray()
        offset = 0
        while offset < len(data):
            length, _ = FRAME_HEADER.unpack_from(data, offset)
            start = offset + FRAME_HEADER.size
            record = from_canonical_bytes(data[start:start + length])
            inner = record.get("__record__") or {}
            if inner.get("op") == "delta":
                inner["delta"]["body"]["ops"][0]["content"] = b"EVIL"
                inner["delta"]["envelope"]["payload"]["body"]["ops"][0][
                    "content"
                ] = b"EVIL"
            payload = canonical_bytes(record)
            out += FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
            out += payload
            offset = start + length
        assert bytes(out) != data
        wal_path.write_bytes(bytes(out))
        with pytest.raises(RecoveryIntegrityError):
            VersionedObjectStore(
                clock=clock, store=DurableStore(str(tmp_path), sync=False)
            )
