"""Property sweep: the LWW merge is a join — replicas must converge.

Strong eventual consistency needs merge to be a pure function of the
delta *set* with the algebraic laws of a join semilattice:

* **commutative / order-free** — any permutation of the same history
  merges to byte-identical state;
* **associative / partition-free** — merging any two covering subsets'
  union equals merging the whole;
* **idempotent** — duplicated deltas change nothing.

Rather than proving the laws, we bombard them: 200+ seeded random
multi-writer histories (random writer count, branching, concurrent
edits to the same elements, deletes), each checked under random
permutations and random partitions. RSA signing would dominate the
sweep, so histories are built from a tiny pool of pre-signed writers
and the per-delta signature is exercised once in ``test_pool_deltas_verify``.
"""

from __future__ import annotations

import random

import pytest

from repro.globedoc.oid import ObjectId
from repro.versioning import DeltaDag, DeltaOp, SignedDelta, merge_deltas
from repro.versioning.delta import OP_DELETE, OP_PUT

from tests.conftest import fast_keys

SEEDS = range(220)
ELEMENT_POOL = ["index.html", "style.css", "logo.png"]

_OWNER = fast_keys()
_OID = ObjectId.from_public_key(_OWNER.public)
_WRITER_KEYS = {f"w{i}": fast_keys() for i in range(3)}


def random_history(seed: int):
    """One seeded multi-writer history as a list of signed deltas.

    Each step picks a writer, a random subset of current heads as
    parents (creating branches and merges), and 1-2 random put/delete
    ops — concurrent same-element edits are common by construction.
    """
    rng = random.Random(seed)
    dag = DeltaDag()
    writers = rng.sample(sorted(_WRITER_KEYS), rng.randint(1, len(_WRITER_KEYS)))
    for step in range(rng.randint(2, 10)):
        writer_id = rng.choice(writers)
        heads = dag.heads()
        parents = rng.sample(heads, rng.randint(0, len(heads)))
        ops = []
        for _ in range(rng.randint(1, 2)):
            name = rng.choice(ELEMENT_POOL)
            if rng.random() < 0.2:
                ops.append(DeltaOp(OP_DELETE, name))
            else:
                content = bytes(f"{writer_id}/{step}/{rng.random():.9f}", "ascii")
                ops.append(DeltaOp(OP_PUT, name, content))
        dag.add(
            SignedDelta.build(
                _WRITER_KEYS[writer_id], _OID, writer_id,
                dag.lamport_max() + 1, parents, ops, issued_at=float(step),
            )
        )
    return dag.deltas


def digest_of(deltas) -> str:
    return merge_deltas(deltas, oid_hex=_OID.hex).digest_hex


def test_pool_deltas_verify():
    """The shared pool signs genuinely (sampled once, not per seed)."""
    for delta in random_history(0):
        delta.verify(_OID)


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_laws_hold(seed):
    deltas = random_history(seed)
    rng = random.Random(seed * 7919 + 1)
    reference = digest_of(deltas)

    # Commutativity: three random permutations, byte-identical merges.
    for _ in range(3):
        shuffled = list(deltas)
        rng.shuffle(shuffled)
        assert digest_of(shuffled) == reference

    # Idempotence: duplicating a random sample changes nothing.
    duplicated = list(deltas) + rng.sample(deltas, rng.randint(1, len(deltas)))
    assert digest_of(duplicated) == reference

    # Associativity / partition-independence: two overlapping covers
    # merge element-wise to the same winners as the whole.
    split = rng.randint(0, len(deltas))
    left, right = deltas[:split], deltas[split:]
    overlap = rng.sample(deltas, rng.randint(0, len(deltas)))
    merged = merge_deltas(
        list(left) + list(overlap) + list(right), oid_hex=_OID.hex
    )
    assert merged.digest_hex == reference


@pytest.mark.parametrize("seed", [3, 17, 99])
def test_replica_exchange_converges(seed):
    """Two DAGs covering different subsets converge after exchange."""
    deltas = random_history(seed)
    rng = random.Random(seed)
    ids = [d.delta_id for d in deltas]
    replica_a, replica_b = DeltaDag(), DeltaDag()
    replica_a.add_all(deltas)  # full replica
    # B holds an ancestor-closed subset (any replica's state is one).
    known = replica_a.ancestors(rng.sample(ids, rng.randint(0, len(ids))))
    replica_b.add_all(d for d in deltas if d.delta_id in known)
    # Anti-entropy: B pulls what it lacks from A.
    replica_b.add_all(replica_a.missing_from(replica_b.delta_ids))
    assert sorted(replica_b.delta_ids) == sorted(replica_a.delta_ids)
    assert digest_of(replica_b.deltas) == digest_of(replica_a.deltas)
