"""Writer grants: the owner-signed capability that admits a writer."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticityError, CertificateError, SecurityError
from repro.globedoc.oid import ObjectId
from repro.versioning import WriterGrant

from tests.conftest import fast_keys


class TestIssue:
    def test_grant_verifies_under_object_key(self, owner_keys, oid, clock):
        writer = fast_keys()
        grant = WriterGrant.issue(
            owner_keys, oid, "alice", writer.public, granted_at=clock.now()
        )
        grant.verify(owner_keys.public, oid, clock=clock)
        assert grant.writer_id == "alice"
        assert grant.writer_key == writer.public

    def test_non_owner_cannot_issue(self, oid, clock):
        mallory = fast_keys()
        with pytest.raises(AuthenticityError):
            WriterGrant.issue(
                mallory, oid, "alice", fast_keys().public, granted_at=clock.now()
            )

    def test_empty_writer_id_refused(self, owner_keys, oid, clock):
        with pytest.raises(CertificateError):
            WriterGrant.issue(
                owner_keys, oid, "", fast_keys().public, granted_at=clock.now()
            )


class TestVerify:
    def test_wrong_object_key_rejected(self, owner_keys, oid, clock):
        grant = WriterGrant.issue(
            owner_keys, oid, "alice", fast_keys().public, granted_at=clock.now()
        )
        with pytest.raises(SecurityError):
            grant.verify(fast_keys().public, oid, clock=clock)

    def test_cross_object_grant_rejected(self, owner_keys, oid, clock):
        grant = WriterGrant.issue(
            owner_keys, oid, "alice", fast_keys().public, granted_at=clock.now()
        )
        other_keys = fast_keys()
        other_oid = ObjectId.from_public_key(other_keys.public)
        with pytest.raises(SecurityError):
            grant.verify(other_keys.public, other_oid, clock=clock)

    def test_wire_roundtrip_preserves_verification(self, owner_keys, oid, clock):
        grant = WriterGrant.issue(
            owner_keys, oid, "alice", fast_keys().public, granted_at=clock.now()
        )
        revived = WriterGrant.from_dict(grant.to_dict())
        revived.verify(owner_keys.public, oid, clock=clock)
        assert revived.writer_id == grant.writer_id

    def test_tampered_writer_id_rejected(self, owner_keys, oid, clock):
        grant = WriterGrant.issue(
            owner_keys, oid, "alice", fast_keys().public, granted_at=clock.now()
        )
        data = grant.to_dict()
        data["body"]["writer_id"] = "mallory"
        data["envelope"]["payload"]["body"]["writer_id"] = "mallory"
        with pytest.raises(SecurityError):
            WriterGrant.from_dict(data).verify(owner_keys.public, oid, clock=clock)
