"""The delta DAG: parents-first admission, frontier, anti-entropy."""

from __future__ import annotations

import pytest

from repro.errors import VersioningError
from repro.versioning import DeltaDag, DeltaOp, Frontier, SignedDelta
from repro.versioning.delta import OP_PUT

from tests.conftest import fast_keys


@pytest.fixture(scope="module")
def writer_keys():
    return fast_keys()


def make_delta(keys, oid, lamport, parents, name="body", content=b"x"):
    return SignedDelta.build(
        keys, oid, "alice", lamport, parents,
        [DeltaOp(OP_PUT, name, content)], issued_at=float(lamport),
    )


class TestAdmission:
    def test_add_is_idempotent(self, writer_keys, oid):
        dag = DeltaDag()
        delta = make_delta(writer_keys, oid, 1, ())
        assert dag.add(delta) is True
        assert dag.add(delta) is False
        assert len(dag) == 1

    def test_dangling_parent_refused(self, writer_keys, oid):
        dag = DeltaDag()
        root = make_delta(writer_keys, oid, 1, ())
        child = make_delta(writer_keys, oid, 2, [root.delta_id])
        with pytest.raises(VersioningError):
            dag.add(child)

    def test_add_all_resolves_any_order(self, writer_keys, oid):
        root = make_delta(writer_keys, oid, 1, ())
        mid = make_delta(writer_keys, oid, 2, [root.delta_id])
        tip = make_delta(writer_keys, oid, 3, [mid.delta_id])
        dag = DeltaDag()
        assert dag.add_all([tip, mid, root]) == 3
        # Admission order is topological even for a reversed batch.
        assert dag.delta_ids == [root.delta_id, mid.delta_id, tip.delta_id]

    def test_add_all_reports_withheld_ancestor(self, writer_keys, oid):
        root = make_delta(writer_keys, oid, 1, ())
        tip = make_delta(writer_keys, oid, 2, [root.delta_id])
        dag = DeltaDag()
        with pytest.raises(VersioningError):
            dag.add_all([tip])  # root withheld


class TestStructure:
    def test_heads_and_frontier(self, writer_keys, oid):
        dag = DeltaDag()
        root = make_delta(writer_keys, oid, 1, ())
        left = make_delta(writer_keys, oid, 2, [root.delta_id], name="a")
        right = make_delta(writer_keys, oid, 2, [root.delta_id], name="b")
        dag.add_all([root, left, right])
        assert dag.heads() == sorted([left.delta_id, right.delta_id])
        assert dag.frontier() == Frontier.of(dag.heads())
        assert dag.lamport_max() == 2

    def test_ancestors_is_inclusive_closure(self, writer_keys, oid):
        dag = DeltaDag()
        root = make_delta(writer_keys, oid, 1, ())
        tip = make_delta(writer_keys, oid, 2, [root.delta_id])
        dag.add_all([root, tip])
        assert dag.ancestors([tip.delta_id]) == {root.delta_id, tip.delta_id}

    def test_missing_from_is_the_gossip_payload(self, writer_keys, oid):
        dag = DeltaDag()
        root = make_delta(writer_keys, oid, 1, ())
        tip = make_delta(writer_keys, oid, 2, [root.delta_id])
        dag.add_all([root, tip])
        shipped = dag.missing_from([root.delta_id])
        assert [d.delta_id for d in shipped] == [tip.delta_id]

    def test_dominates_judges_head_containment(self, writer_keys, oid):
        dag = DeltaDag()
        root = make_delta(writer_keys, oid, 1, ())
        tip = make_delta(writer_keys, oid, 2, [root.delta_id])
        dag.add(root)
        assert dag.dominates(Frontier.of([root.delta_id]))
        assert not dag.dominates(Frontier.of([tip.delta_id]))
        assert dag.dominates(Frontier.empty())
