"""Discrete-event scheduler: ordering, cancellation, reentrancy."""

from __future__ import annotations

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        log = []
        sched.at(3.0, lambda: log.append("c"))
        sched.at(1.0, lambda: log.append("a"))
        sched.at(2.0, lambda: log.append("b"))
        sched.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_in_submission_order(self):
        sched = EventScheduler()
        log = []
        for tag in ("first", "second", "third"):
            sched.at(1.0, lambda t=tag: log.append(t))
        sched.run()
        assert log == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler(SimClock(0.0))
        seen = []
        sched.at(5.0, lambda: seen.append(sched.clock.now()))
        sched.run()
        assert seen == [5.0]

    def test_after_is_relative(self):
        sched = EventScheduler(SimClock(100.0))
        seen = []
        sched.after(2.5, lambda: seen.append(sched.clock.now()))
        sched.run()
        assert seen == [102.5]

    def test_scheduling_in_past_rejected(self):
        sched = EventScheduler(SimClock(10.0))
        with pytest.raises(ValueError):
            sched.at(9.0, lambda: None)

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            sched.after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = EventScheduler()
        log = []
        event = sched.at(1.0, lambda: log.append("x"))
        event.cancel()
        sched.run()
        assert log == []
        assert sched.processed == 0


class TestReentrancy:
    def test_events_can_schedule_events(self):
        sched = EventScheduler()
        log = []

        def first():
            log.append("first")
            sched.after(1.0, lambda: log.append("second"))

        sched.at(1.0, first)
        sched.run()
        assert log == ["first", "second"]
        assert sched.clock.now() == 2.0

    def test_chain_of_events(self):
        sched = EventScheduler()
        counter = {"n": 0}

        def tick():
            counter["n"] += 1
            if counter["n"] < 5:
                sched.after(1.0, tick)

        sched.after(1.0, tick)
        sched.run()
        assert counter["n"] == 5
        assert sched.clock.now() == 5.0


class TestRunBounds:
    def test_run_until(self):
        sched = EventScheduler()
        log = []
        sched.at(1.0, lambda: log.append(1))
        sched.at(5.0, lambda: log.append(5))
        executed = sched.run(until=3.0)
        assert executed == 1
        assert log == [1]
        # Clock parked exactly at the horizon.
        assert sched.clock.now() == 3.0
        assert sched.pending == 1

    def test_run_max_events(self):
        sched = EventScheduler()
        for i in range(10):
            sched.at(float(i + 1), lambda: None)
        assert sched.run(max_events=4) == 4
        assert sched.pending == 6

    def test_step_on_empty_queue(self):
        assert EventScheduler().step() is False
