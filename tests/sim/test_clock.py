"""Clock semantics: monotonic simulated time, protocol conformance."""

from __future__ import annotations

import time

import pytest

from repro.sim.clock import Clock, RealClock, SimClock


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(42.0).now() == 42.0

    def test_advance(self):
        clock = SimClock(10.0)
        assert clock.advance(5.0) == 15.0
        assert clock.now() == 15.0

    def test_advance_zero_allowed(self):
        clock = SimClock(1.0)
        clock.advance(0.0)
        assert clock.now() == 1.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock(5.0)
        clock.advance_to(9.0)
        assert clock.now() == 9.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_advance_to_same_time_allowed(self):
        clock = SimClock(5.0)
        clock.advance_to(5.0)
        assert clock.now() == 5.0

    def test_protocol_conformance(self):
        assert isinstance(SimClock(), Clock)
        assert isinstance(RealClock(), Clock)


class TestRealClock:
    def test_tracks_wall_time(self):
        clock = RealClock()
        before = time.time()
        observed = clock.now()
        after = time.time()
        assert before <= observed <= after


class TestParallelRegion:
    def test_charges_max_of_parallel(self):
        clock = SimClock(100.0)
        with clock.parallel() as region:
            with region.branch():
                clock.advance(3.0)
            with region.branch():
                clock.advance(7.0)
            with region.branch():
                clock.advance(5.0)
        assert clock.now() == pytest.approx(107.0)

    def test_each_branch_starts_at_fork_time(self):
        clock = SimClock(50.0)
        starts = []
        with clock.parallel() as region:
            for cost in (1.0, 2.0):
                with region.branch():
                    starts.append(clock.now())
                    clock.advance(cost)
        assert starts == [50.0, 50.0]

    def test_empty_region_is_free(self):
        clock = SimClock(9.0)
        with clock.parallel():
            pass
        assert clock.now() == 9.0

    def test_elapsed_reports_longest_branch(self):
        clock = SimClock()
        with clock.parallel() as region:
            with region.branch():
                clock.advance(2.0)
            with region.branch():
                clock.advance(4.0)
            assert region.elapsed == pytest.approx(4.0)

    def test_regions_nest(self):
        # A branch may fan out again: the outer region charges the
        # slowest branch, where that branch's own cost is serial work
        # plus its inner region's max.
        clock = SimClock()
        with clock.parallel() as outer:
            with outer.branch():
                clock.advance(1.0)  # serial prologue
                with clock.parallel() as inner:
                    with inner.branch():
                        clock.advance(10.0)
                    with inner.branch():
                        clock.advance(4.0)
            with outer.branch():
                clock.advance(6.0)
        assert clock.now() == pytest.approx(11.0)

    def test_branches_must_not_overlap(self):
        clock = SimClock()
        with clock.parallel() as region:
            with region.branch():
                with pytest.raises(ValueError):
                    with region.branch():
                        pass

    def test_branch_after_close_rejected(self):
        clock = SimClock()
        with clock.parallel() as region:
            pass
        with pytest.raises(ValueError):
            with region.branch():
                pass

    def test_branch_exception_still_recorded(self):
        clock = SimClock()
        with pytest.raises(RuntimeError):
            with clock.parallel() as region:
                with region.branch():
                    clock.advance(5.0)
                    raise RuntimeError("branch died")
        # The failed branch's time was still committed on close.
        assert clock.now() == pytest.approx(5.0)
