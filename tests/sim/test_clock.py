"""Clock semantics: monotonic simulated time, protocol conformance."""

from __future__ import annotations

import time

import pytest

from repro.sim.clock import Clock, RealClock, SimClock


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(42.0).now() == 42.0

    def test_advance(self):
        clock = SimClock(10.0)
        assert clock.advance(5.0) == 15.0
        assert clock.now() == 15.0

    def test_advance_zero_allowed(self):
        clock = SimClock(1.0)
        clock.advance(0.0)
        assert clock.now() == 1.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock(5.0)
        clock.advance_to(9.0)
        assert clock.now() == 9.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_advance_to_same_time_allowed(self):
        clock = SimClock(5.0)
        clock.advance_to(5.0)
        assert clock.now() == 5.0

    def test_protocol_conformance(self):
        assert isinstance(SimClock(), Clock)
        assert isinstance(RealClock(), Clock)


class TestRealClock:
    def test_tracks_wall_time(self):
        clock = RealClock()
        before = time.time()
        observed = clock.now()
        after = time.time()
        assert before <= observed <= after
