"""Seeded RNG helpers: determinism and stream independence."""

from __future__ import annotations

import numpy as np

from repro.sim.random import derive_seed, make_rng


class TestMakeRng:
    def test_default_is_deterministic(self):
        a = make_rng().integers(0, 1000, size=10)
        b = make_rng().integers(0, 1000, size=10)
        assert (a == b).all()

    def test_seed_changes_stream(self):
        a = make_rng(1).integers(0, 1_000_000, size=10)
        b = make_rng(2).integers(0, 1_000_000, size=10)
        assert not (a == b).all()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(7)
        assert make_rng(rng) is rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derived_streams_decorrelated(self):
        rng_a = make_rng(derive_seed(0, "trace"))
        rng_b = make_rng(derive_seed(0, "latency"))
        a = rng_a.integers(0, 1_000_000, size=20)
        b = rng_b.integers(0, 1_000_000, size=20)
        assert not (a == b).all()
