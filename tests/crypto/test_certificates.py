"""Generic certificates: typing, validity windows, field binding."""

from __future__ import annotations

import pytest

from repro.crypto.certificates import Certificate
from repro.errors import CertificateError
from repro.sim.clock import SimClock


@pytest.fixture
def cert(shared_keys):
    return Certificate.issue(
        shared_keys, "test/type", {"field": "value"}, not_before=100.0, not_after=200.0
    )


class TestIssueVerify:
    def test_verify_within_window(self, cert, shared_keys):
        body = cert.verify(shared_keys.public, clock=SimClock(150.0))
        assert body == {"field": "value"}

    def test_expired_rejected(self, cert, shared_keys):
        with pytest.raises(CertificateError, match="expired"):
            cert.verify(shared_keys.public, clock=SimClock(201.0))

    def test_not_yet_valid_rejected(self, cert, shared_keys):
        with pytest.raises(CertificateError, match="not yet valid"):
            cert.verify(shared_keys.public, clock=SimClock(99.0))

    def test_boundary_times_valid(self, cert, shared_keys):
        cert.verify(shared_keys.public, clock=SimClock(100.0))
        cert.verify(shared_keys.public, clock=SimClock(200.0))

    def test_no_clock_skips_window(self, cert, shared_keys):
        # Verification without a clock checks signature only.
        cert.verify(shared_keys.public)

    def test_wrong_key_rejected(self, cert, other_keys):
        with pytest.raises(CertificateError):
            cert.verify(other_keys.public)

    def test_type_check(self, cert, shared_keys):
        cert.verify(shared_keys.public, expected_type="test/type")
        with pytest.raises(CertificateError, match="type"):
            cert.verify(shared_keys.public, expected_type="other/type")

    def test_empty_window_rejected_at_issue(self, shared_keys):
        with pytest.raises(CertificateError):
            Certificate.issue(
                shared_keys, "t", {}, not_before=200.0, not_after=100.0
            )

    def test_unbounded_certificate(self, shared_keys):
        cert = Certificate.issue(shared_keys, "t", {"x": 1})
        cert.verify(shared_keys.public, clock=SimClock(1e12))


class TestFieldBinding:
    """The outer dataclass fields must match the signed payload — no
    mix-and-match attacks."""

    def test_forged_window_rejected(self, cert, shared_keys):
        forged = Certificate(
            cert_type=cert.cert_type,
            body=cert.body,
            not_before=cert.not_before,
            not_after=1e12,  # attacker extends validity outside the signature
            envelope=cert.envelope,
        )
        with pytest.raises(CertificateError, match="do not match"):
            forged.verify(shared_keys.public, clock=SimClock(150.0))

    def test_forged_body_rejected(self, cert, shared_keys):
        forged = Certificate(
            cert_type=cert.cert_type,
            body={"field": "evil"},
            not_before=cert.not_before,
            not_after=cert.not_after,
            envelope=cert.envelope,
        )
        with pytest.raises(CertificateError):
            forged.verify(shared_keys.public)

    def test_forged_type_rejected(self, cert, shared_keys):
        forged = Certificate(
            cert_type="admin/root",
            body=cert.body,
            not_before=cert.not_before,
            not_after=cert.not_after,
            envelope=cert.envelope,
        )
        with pytest.raises(CertificateError):
            forged.verify(shared_keys.public)


class TestSerialization:
    def test_dict_roundtrip(self, cert, shared_keys):
        restored = Certificate.from_dict(cert.to_dict())
        restored.verify(shared_keys.public, clock=SimClock(150.0))
        assert restored.body == cert.body

    def test_malformed_rejected(self):
        with pytest.raises(CertificateError):
            Certificate.from_dict({"cert_type": "x"})

    def test_wire_size(self, cert):
        assert cert.wire_size > 100
