"""CAs, identity certificates, and the user trust store (§3.1.2)."""

from __future__ import annotations

import pytest

from repro.crypto.identity import CertificateAuthority, IdentityCertificate, TrustStore
from repro.errors import CertificateError
from repro.sim.clock import SimClock
from tests.conftest import fast_keys


@pytest.fixture
def subject_keys():
    return fast_keys()


class TestCertify:
    def test_issue_and_verify(self, session_ca, subject_keys):
        cert = session_ca.certify("VU Amsterdam", subject_keys.public)
        name = cert.verify(session_ca.public_key)
        assert name == "VU Amsterdam"
        assert cert.issuer_name == session_ca.name
        assert cert.subject_key == subject_keys.public

    def test_wrong_issuer_key_rejected(self, session_ca, subject_keys, other_keys):
        cert = session_ca.certify("VU Amsterdam", subject_keys.public)
        with pytest.raises(CertificateError):
            cert.verify(other_keys.public)

    def test_subject_key_binding(self, session_ca, subject_keys, other_keys):
        cert = session_ca.certify("VU Amsterdam", subject_keys.public)
        with pytest.raises(CertificateError, match="subject key"):
            cert.verify(
                session_ca.public_key, expected_subject_key=other_keys.public
            )

    def test_expiry(self, session_ca, subject_keys):
        cert = session_ca.certify("VU", subject_keys.public, not_after=1000.0)
        cert.verify(session_ca.public_key, clock=SimClock(999.0))
        with pytest.raises(CertificateError):
            cert.verify(session_ca.public_key, clock=SimClock(1001.0))

    def test_dict_roundtrip(self, session_ca, subject_keys):
        cert = session_ca.certify("VU", subject_keys.public)
        restored = IdentityCertificate.from_dict(cert.to_dict())
        assert restored.verify(session_ca.public_key) == "VU"

    def test_from_dict_rejects_wrong_type(self, shared_keys):
        from repro.crypto.certificates import Certificate

        not_identity = Certificate.issue(shared_keys, "other/type", {})
        with pytest.raises(CertificateError):
            IdentityCertificate.from_dict(not_identity.to_dict())

    def test_issued_count(self, subject_keys):
        ca = CertificateAuthority("Counter CA", keys=fast_keys())
        assert ca.issued_count == 0
        ca.certify("a", subject_keys.public)
        ca.certify("b", subject_keys.public)
        assert ca.issued_count == 2


class TestTrustStore:
    def test_add_and_query(self, session_ca):
        store = TrustStore()
        assert not store.trusts(session_ca.name)
        store.add_ca(session_ca)
        assert store.trusts(session_ca.name)
        assert store.trusted_key(session_ca.name) == session_ca.public_key
        assert len(store) == 1

    def test_remove(self, session_ca):
        store = TrustStore()
        store.add_ca(session_ca)
        store.remove(session_ca.name)
        assert not store.trusts(session_ca.name)

    def test_first_match_finds_trusted(self, session_ca, subject_keys):
        store = TrustStore()
        store.add_ca(session_ca)
        untrusted_ca = CertificateAuthority("Shady CA", keys=fast_keys())
        certs = [
            untrusted_ca.certify("Shady Name", subject_keys.public),
            session_ca.certify("Good Name", subject_keys.public),
        ]
        match = store.first_match(certs)
        assert match is not None
        assert match.subject_name == "Good Name"

    def test_first_match_none_when_untrusted(self, subject_keys):
        store = TrustStore()
        shady = CertificateAuthority("Shady CA", keys=fast_keys())
        certs = [shady.certify("Name", subject_keys.public)]
        assert store.first_match(certs) is None

    def test_first_match_skips_invalid(self, session_ca, subject_keys, other_keys):
        """A certificate claiming a trusted issuer but not signed by it
        must be skipped, not trusted."""
        store = TrustStore()
        store.add_ca(session_ca)
        impostor_ca = CertificateAuthority(session_ca.name, keys=fast_keys())
        forged = impostor_ca.certify("Forged Name", subject_keys.public)
        assert store.first_match([forged]) is None

    def test_first_match_subject_key_filter(self, session_ca, subject_keys, other_keys):
        """A valid certificate about a *different* key must not certify
        this object (stolen-certificate replay)."""
        store = TrustStore()
        store.add_ca(session_ca)
        cert_for_other = session_ca.certify("Other Entity", other_keys.public)
        assert (
            store.first_match([cert_for_other], expected_subject_key=subject_keys.public)
            is None
        )

    def test_first_match_respects_order(self, session_ca, subject_keys):
        store = TrustStore()
        store.add_ca(session_ca)
        first = session_ca.certify("First", subject_keys.public)
        second = session_ca.certify("Second", subject_keys.public)
        match = store.first_match([first, second])
        assert match.subject_name == "First"

    def test_names_sorted(self, session_ca):
        store = TrustStore()
        store.add("zeta", session_ca.public_key)
        store.add("alpha", session_ca.public_key)
        assert store.names() == ["alpha", "zeta"]
