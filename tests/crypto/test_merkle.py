"""Merkle trees: proofs, tamper detection, structural invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashes import SHA256
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.errors import CryptoError


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(CryptoError):
            MerkleTree([])

    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert tree.leaf_count == 1
        assert tree.height == 0
        proof = tree.proof(0)
        assert proof.length == 0
        assert tree.verify(b"only", proof, tree.root)

    def test_height_logarithmic(self):
        assert MerkleTree([b"x"] * 8).height == 3
        assert MerkleTree([b"x"] * 9).height == 4

    def test_root_deterministic(self):
        leaves = [b"a", b"b", b"c"]
        assert MerkleTree(leaves).root == MerkleTree(leaves).root

    def test_root_order_sensitive(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_leaf_change_changes_root(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_domain_separation(self):
        """A two-leaf tree's root must differ from a single leaf whose
        content is the concatenation of the two leaf hashes (the
        leaf/node prefix defence)."""
        two = MerkleTree([b"a", b"b"])
        concat = two.leaf_hash(0) + two.leaf_hash(1)
        one = MerkleTree([concat])
        assert two.root != one.root


class TestProofs:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_every_leaf_verifies(self, count):
        leaves = [f"leaf-{i}".encode() for i in range(count)]
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            proof = tree.proof(i)
            assert tree.verify(leaf, proof, tree.root), f"leaf {i} of {count}"
            assert MerkleTree.verify_detached(leaf, proof, tree.root)

    def test_wrong_leaf_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        proof = tree.proof(1)
        assert not tree.verify(b"tampered", proof, tree.root)

    def test_wrong_index_proof_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        assert not tree.verify(b"a", tree.proof(1), tree.root)

    def test_wrong_root_rejected(self):
        tree = MerkleTree([b"a", b"b"])
        other = MerkleTree([b"x", b"y"])
        assert not tree.verify(b"a", tree.proof(0), other.root)

    def test_out_of_range_rejected(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(CryptoError):
            tree.proof(1)
        with pytest.raises(CryptoError):
            tree.proof(-1)

    def test_proof_length_bounded_by_height(self):
        tree = MerkleTree([b"x"] * 33)
        for i in range(33):
            assert tree.proof(i).length <= tree.height

    def test_wire_size(self):
        proof = MerkleTree([b"a", b"b", b"c", b"d"]).proof(0)
        assert proof.wire_size == proof.length * 21 + 8  # sha1 + flag + header


class TestSuites:
    def test_sha256_tree(self):
        tree = MerkleTree([b"a", b"b", b"c"], suite=SHA256)
        assert len(tree.root) == 32
        proof = tree.proof(2)
        assert MerkleTree.verify_detached(b"c", proof, tree.root, suite=SHA256)
        # Cross-suite verification must fail.
        assert not MerkleTree.verify_detached(b"c", proof, tree.root)


class TestProperties:
    @given(st.lists(st.binary(max_size=32), min_size=1, max_size=40), st.data())
    @settings(max_examples=50)
    def test_random_trees_all_leaves_verify(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        assert tree.verify(leaves[index], tree.proof(index), tree.root)

    @given(
        st.lists(st.binary(min_size=1, max_size=32), min_size=2, max_size=20),
        st.data(),
    )
    @settings(max_examples=50)
    def test_tampered_leaf_never_verifies(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        tampered = leaves[index] + b"\x00"
        assert not tree.verify(tampered, tree.proof(index), tree.root)
