"""Batched verification: same verdicts as per-item verify, fewer RSA ops."""

from __future__ import annotations

import pytest

from repro.crypto.batch import BatchItem, verify_batch
from repro.crypto.keys import PublicKey
from repro.crypto.signing import SignedEnvelope
from repro.crypto.verifycache import VerificationCache
from repro.errors import SignatureError


def sequential_verdict(item, cache=None, now=None):
    """What the unbatched path would do with this exact item."""
    try:
        item.envelope.verify(
            item.key, cache=cache, now=now, expires_at=item.expires_at
        )
    except Exception as exc:
        return exc
    return None


def flip_signature(envelope):
    bad = bytes([envelope.signature[0] ^ 0xFF]) + envelope.signature[1:]
    return SignedEnvelope(
        payload=envelope.payload, signature=bad, suite_name=envelope.suite_name
    )


def swap_payload(envelope, payload):
    return SignedEnvelope(
        payload=payload, signature=envelope.signature, suite_name=envelope.suite_name
    )


@pytest.fixture
def rsa_counter(monkeypatch):
    """Counts real RSA verify operations (cache hits don't reach here)."""
    counts = {"ops": 0}
    original = PublicKey.verify

    def counting(self, *args, **kwargs):
        counts["ops"] += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(PublicKey, "verify", counting)
    return counts


class TestVerdictEquivalence:
    """Batching changes the amortization, never the verdict."""

    def tamper_modes(self, shared_keys, other_keys):
        genuine = SignedEnvelope.create(shared_keys, {"doc": "index", "rev": 3})
        return [
            ("valid", BatchItem(shared_keys.public, genuine)),
            ("wrong_key", BatchItem(other_keys.public, genuine)),
            ("flipped_signature", BatchItem(shared_keys.public, flip_signature(genuine))),
            (
                "tampered_payload",
                BatchItem(
                    shared_keys.public, swap_payload(genuine, {"doc": "evil", "rev": 3})
                ),
            ),
            (
                "added_field",
                BatchItem(
                    shared_keys.public,
                    swap_payload(genuine, {"doc": "index", "rev": 3, "x": 1}),
                ),
            ),
        ]

    @pytest.mark.parametrize("use_cache", [False, True], ids=["nocache", "cache"])
    def test_every_mode_matches_per_item_verify(
        self, shared_keys, other_keys, use_cache
    ):
        modes = self.tamper_modes(shared_keys, other_keys)
        cache = VerificationCache() if use_cache else None
        verdicts = verify_batch([item for _, item in modes], cache=cache)
        for (mode, item), verdict in zip(modes, verdicts):
            expected = sequential_verdict(item)
            if expected is None:
                assert verdict is None, f"{mode}: batch rejected a valid item"
            else:
                assert type(verdict) is type(expected), mode
                assert isinstance(verdict, SignatureError), mode

    def test_one_bad_item_does_not_poison_siblings(self, shared_keys):
        genuine = SignedEnvelope.create(shared_keys, {"n": 1})
        verdicts = verify_batch(
            [
                BatchItem(shared_keys.public, genuine),
                BatchItem(shared_keys.public, flip_signature(genuine)),
                BatchItem(shared_keys.public, genuine),
            ]
        )
        assert verdicts[0] is None
        assert isinstance(verdicts[1], SignatureError)
        assert verdicts[2] is None

    def test_never_raises_on_malformed_item(self, shared_keys):
        genuine = SignedEnvelope.create(shared_keys, {"n": 1})
        broken = SignedEnvelope(
            payload={"n": 1}, signature=b"\x00" * 4, suite_name="no-such-suite"
        )
        verdicts = verify_batch(
            [
                BatchItem(shared_keys.public, broken),
                BatchItem(shared_keys.public, genuine),
            ]
        )
        assert isinstance(verdicts[0], Exception)
        assert verdicts[1] is None

    def test_empty_batch(self):
        assert verify_batch([]) == []


class TestDeduplication:
    def test_identical_items_cost_one_rsa_op(self, shared_keys, rsa_counter):
        envelope = SignedEnvelope.create(shared_keys, {"n": 1})
        items = [BatchItem(shared_keys.public, envelope) for _ in range(6)]
        verdicts = verify_batch(items)
        assert verdicts == [None] * 6
        assert rsa_counter["ops"] == 1

    def test_distinct_payloads_verify_separately(self, shared_keys, rsa_counter):
        items = [
            BatchItem(shared_keys.public, SignedEnvelope.create(shared_keys, {"n": i}))
            for i in range(3)
        ]
        assert verify_batch(items) == [None] * 3
        assert rsa_counter["ops"] == 3

    def test_tampered_duplicate_fails_alone(self, shared_keys):
        genuine = SignedEnvelope.create(shared_keys, {"n": 1})
        verdicts = verify_batch(
            [
                BatchItem(shared_keys.public, genuine),
                BatchItem(shared_keys.public, flip_signature(genuine)),
                BatchItem(shared_keys.public, genuine),
            ]
        )
        # The forged copy must not share the genuine group's verdict.
        assert verdicts[0] is None and verdicts[2] is None
        assert isinstance(verdicts[1], SignatureError)


class TestCacheInterplay:
    def test_batch_success_lands_in_cache(self, shared_keys):
        cache = VerificationCache()
        envelope = SignedEnvelope.create(shared_keys, {"n": 1})
        verify_batch([BatchItem(shared_keys.public, envelope)], cache=cache)
        assert cache.stats.misses == 1
        # The sequential path now gets a hit off the batch's work.
        envelope.verify(shared_keys.public, cache=cache)
        assert cache.stats.hits == 1

    def test_warm_cache_costs_zero_rsa_ops(self, shared_keys, rsa_counter):
        cache = VerificationCache()
        envelope = SignedEnvelope.create(shared_keys, {"n": 1})
        verify_batch([BatchItem(shared_keys.public, envelope)], cache=cache)
        assert rsa_counter["ops"] == 1
        verify_batch(
            [BatchItem(shared_keys.public, envelope) for _ in range(4)], cache=cache
        )
        assert rsa_counter["ops"] == 1  # all four served from the cache

    def test_group_expiry_is_tightest_member(self, shared_keys):
        cache = VerificationCache()
        envelope = SignedEnvelope.create(shared_keys, {"n": 1})
        verify_batch(
            [
                BatchItem(shared_keys.public, envelope, expires_at=100.0),
                BatchItem(shared_keys.public, envelope, expires_at=10.0),
            ],
            cache=cache,
            now=0.0,
        )
        # Past the tighter expiry the shared entry must be dead.
        assert not cache.lookup(
            shared_keys.public,
            envelope.signature,
            envelope.signed_bytes,
            envelope.suite,
            now=50.0,
        )

    def test_expired_entry_reverifies_instead_of_serving_stale(
        self, shared_keys, rsa_counter
    ):
        cache = VerificationCache()
        envelope = SignedEnvelope.create(shared_keys, {"n": 1})
        item = BatchItem(shared_keys.public, envelope, expires_at=10.0)
        assert verify_batch([item], cache=cache, now=0.0) == [None]
        assert verify_batch([item], cache=cache, now=20.0) == [None]
        assert rsa_counter["ops"] == 2
        assert cache.stats.invalidations == 1
