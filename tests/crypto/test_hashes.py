"""Hash suites: known vectors, streaming equivalence, suite registry."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashes import SHA1, SHA256, digest, hexdigest, suite_by_name
from repro.errors import CryptoError


class TestKnownVectors:
    def test_sha1_abc(self):
        # FIPS 180-1 test vector, the standard the paper cites.
        assert SHA1.hexdigest(b"abc") == "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_sha256_abc(self):
        assert (
            SHA256.hexdigest(b"abc")
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_digest_sizes(self):
        assert SHA1.digest_size == 20
        assert SHA256.digest_size == 32
        assert len(SHA1.digest(b"")) == 20
        assert len(SHA256.digest(b"")) == 32


class TestApi:
    def test_default_suite_is_sha1(self):
        assert digest(b"x") == SHA1.digest(b"x")
        assert hexdigest(b"x") == SHA1.hexdigest(b"x")

    def test_multi_chunk_equals_concatenation(self):
        assert SHA1.digest(b"ab", b"cd") == SHA1.digest(b"abcd")

    def test_suite_by_name(self):
        assert suite_by_name("sha1") is SHA1
        assert suite_by_name("SHA256") is SHA256

    def test_unknown_suite_rejected(self):
        with pytest.raises(CryptoError):
            suite_by_name("md5")

    def test_signature_hash_types(self):
        assert SHA1.signature_hash().name == "sha1"
        assert SHA256.signature_hash().name == "sha256"


class TestStreaming:
    @given(st.lists(st.binary(max_size=128), max_size=10))
    def test_stream_equals_oneshot(self, chunks):
        whole = b"".join(chunks)
        assert SHA1.digest_stream(chunks) == SHA1.digest(whole)
        assert SHA256.digest_stream(chunks) == SHA256.digest(whole)

    @given(st.binary(max_size=1024))
    def test_matches_hashlib(self, data):
        assert SHA1.digest(data) == hashlib.sha1(data).digest()
        assert SHA256.digest(data) == hashlib.sha256(data).digest()
