"""Structured payload signing and the SignedEnvelope wire format."""

from __future__ import annotations

import pytest

from repro.crypto.hashes import SHA256
from repro.crypto.signing import SignedEnvelope, sign_payload, verify_payload
from repro.errors import SignatureError


class TestPayloadSigning:
    def test_roundtrip(self, shared_keys):
        payload = {"a": 1, "data": b"\x00\x01", "nested": {"x": [1, 2]}}
        sig = sign_payload(shared_keys, payload)
        verify_payload(shared_keys.public, sig, payload)

    def test_key_order_insensitive(self, shared_keys):
        sig = sign_payload(shared_keys, {"b": 2, "a": 1})
        verify_payload(shared_keys.public, sig, {"a": 1, "b": 2})

    def test_value_change_detected(self, shared_keys):
        sig = sign_payload(shared_keys, {"a": 1})
        with pytest.raises(SignatureError):
            verify_payload(shared_keys.public, sig, {"a": 2})

    def test_added_field_detected(self, shared_keys):
        sig = sign_payload(shared_keys, {"a": 1})
        with pytest.raises(SignatureError):
            verify_payload(shared_keys.public, sig, {"a": 1, "extra": True})


class TestSignedEnvelope:
    def test_create_and_verify(self, shared_keys):
        env = SignedEnvelope.create(shared_keys, {"msg": "hello"})
        assert env.verify(shared_keys.public) == {"msg": "hello"}

    def test_wrong_key_rejected(self, shared_keys, other_keys):
        env = SignedEnvelope.create(shared_keys, {"msg": "hello"})
        with pytest.raises(SignatureError):
            env.verify(other_keys.public)

    def test_tampered_payload_rejected(self, shared_keys):
        env = SignedEnvelope.create(shared_keys, {"msg": "hello"})
        forged = SignedEnvelope(
            payload={"msg": "evil"}, signature=env.signature, suite_name=env.suite_name
        )
        with pytest.raises(SignatureError):
            forged.verify(shared_keys.public)

    def test_dict_roundtrip(self, shared_keys):
        env = SignedEnvelope.create(shared_keys, {"msg": "hello", "raw": b"\x01"})
        restored = SignedEnvelope.from_dict(env.to_dict())
        assert restored.verify(shared_keys.public) == env.payload

    def test_roundtrip_through_wire_bytes(self, shared_keys):
        from repro.util.encoding import canonical_bytes, from_canonical_bytes

        env = SignedEnvelope.create(shared_keys, {"msg": "hello"})
        wire = canonical_bytes(env.to_dict())
        restored = SignedEnvelope.from_dict(from_canonical_bytes(wire))
        restored.verify(shared_keys.public)

    def test_malformed_dict_rejected(self):
        with pytest.raises(SignatureError):
            SignedEnvelope.from_dict({"payload": {}})

    def test_suite_carried(self, shared_keys):
        env = SignedEnvelope.create(shared_keys, {"m": 1}, suite=SHA256)
        assert env.suite_name == "sha256"
        restored = SignedEnvelope.from_dict(env.to_dict())
        restored.verify(shared_keys.public)

    def test_wire_size_positive(self, shared_keys):
        env = SignedEnvelope.create(shared_keys, {"m": 1})
        # Signature (128 B for RSA-1024) plus payload plus framing.
        assert env.wire_size > 128
