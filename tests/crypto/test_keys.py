"""Key pairs: generation, serialization, signing, verification."""

from __future__ import annotations

import pytest

from repro.crypto.hashes import SHA1, SHA256
from repro.crypto.keys import KeyPair, PublicKey, rsa_encrypt
from repro.errors import CryptoError, SignatureError
from tests.conftest import FAST_BITS


class TestGeneration:
    def test_bit_size(self, shared_keys):
        assert shared_keys.bit_size == FAST_BITS

    def test_rejects_weak_keys(self):
        with pytest.raises(CryptoError):
            KeyPair.generate(512)

    def test_unique_keys(self, shared_keys, other_keys):
        assert shared_keys.public != other_keys.public


class TestSignatures:
    def test_sign_verify_roundtrip(self, shared_keys):
        sig = shared_keys.sign(b"payload")
        shared_keys.public.verify(sig, b"payload")  # no raise

    def test_wrong_payload_rejected(self, shared_keys):
        sig = shared_keys.sign(b"payload")
        with pytest.raises(SignatureError):
            shared_keys.public.verify(sig, b"other payload")

    def test_wrong_key_rejected(self, shared_keys, other_keys):
        sig = shared_keys.sign(b"payload")
        with pytest.raises(SignatureError):
            other_keys.public.verify(sig, b"payload")

    def test_corrupted_signature_rejected(self, shared_keys):
        sig = bytearray(shared_keys.sign(b"payload"))
        sig[0] ^= 0xFF
        with pytest.raises(SignatureError):
            shared_keys.public.verify(bytes(sig), b"payload")

    def test_garbage_signature_rejected(self, shared_keys):
        with pytest.raises(SignatureError):
            shared_keys.public.verify(b"not a signature", b"payload")

    @pytest.mark.parametrize("suite", [SHA1, SHA256])
    def test_both_suites(self, shared_keys, suite):
        sig = shared_keys.sign(b"data", suite=suite)
        shared_keys.public.verify(sig, b"data", suite=suite)

    def test_suite_mismatch_rejected(self, shared_keys):
        sig = shared_keys.sign(b"data", suite=SHA1)
        with pytest.raises(SignatureError):
            shared_keys.public.verify(sig, b"data", suite=SHA256)


class TestSerialization:
    def test_pem_roundtrip(self, shared_keys):
        pem = shared_keys.to_pem()
        restored = KeyPair.from_pem(pem)
        assert restored.public == shared_keys.public

    def test_encrypted_pem_roundtrip(self, shared_keys):
        pem = shared_keys.to_pem(password=b"hunter2")
        restored = KeyPair.from_pem(pem, password=b"hunter2")
        assert restored.public == shared_keys.public

    def test_wrong_password_rejected(self, shared_keys):
        pem = shared_keys.to_pem(password=b"hunter2")
        with pytest.raises(CryptoError):
            KeyPair.from_pem(pem, password=b"wrong")

    def test_invalid_pem_rejected(self):
        with pytest.raises(CryptoError):
            KeyPair.from_pem(b"not pem at all")

    def test_public_key_der_stable(self, shared_keys):
        assert shared_keys.public.der == KeyPair.from_pem(shared_keys.to_pem()).public.der

    def test_invalid_public_der_rejected(self):
        with pytest.raises(CryptoError):
            PublicKey(der=b"garbage").verify(b"x", b"y")


class TestPublicKey:
    def test_fingerprint_size(self, shared_keys):
        assert len(shared_keys.public.fingerprint(SHA1)) == 20
        assert len(shared_keys.public.fingerprint(SHA256)) == 32

    def test_fingerprint_distinguishes_keys(self, shared_keys, other_keys):
        assert shared_keys.public.fingerprint() != other_keys.public.fingerprint()

    def test_hashable(self, shared_keys, other_keys):
        assert len({shared_keys.public, shared_keys.public, other_keys.public}) == 2


class TestRsaEncryption:
    def test_roundtrip(self, shared_keys):
        ct = rsa_encrypt(shared_keys.public, b"premaster-secret")
        assert shared_keys.decrypt(ct) == b"premaster-secret"

    def test_wrong_key_fails(self, shared_keys, other_keys):
        ct = rsa_encrypt(shared_keys.public, b"premaster-secret")
        with pytest.raises(CryptoError):
            # Either padding failure or garbage output; decrypt raises.
            result = other_keys.decrypt(ct)
            if result != b"premaster-secret":
                raise CryptoError("decryption produced wrong plaintext")
