"""The verification fast path: memoized RSA checks must never weaken
tamper evidence, and the cache must respect its bounds and expiries."""

from __future__ import annotations

import pytest

from repro.crypto.hashes import SHA1, SHA256
from repro.crypto.signing import SignedEnvelope
from repro.crypto.verifycache import VerificationCache
from repro.errors import SignatureError
from repro.util.encoding import canonical_bytes


@pytest.fixture
def cache():
    return VerificationCache()


def _sign(keys, payload):
    data = canonical_bytes(payload)
    return data, keys.sign(data, suite=SHA1)


class TestTamperEvidence:
    """A hit requires the *exact* (key, suite, payload, signature) tuple."""

    def test_hit_only_after_success(self, cache, shared_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        assert not cache.lookup(shared_keys.public, sig, data, SHA1)
        assert not cache.verify(shared_keys.public, sig, data, SHA1)  # real RSA ran
        assert cache.verify(shared_keys.public, sig, data, SHA1)  # now a hit

    def test_modified_payload_never_hits(self, cache, shared_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        cache.verify(shared_keys.public, sig, data, SHA1)
        tampered = canonical_bytes({"a": 2})
        assert not cache.lookup(shared_keys.public, sig, tampered, SHA1)
        with pytest.raises(SignatureError):
            cache.verify(shared_keys.public, sig, tampered, SHA1)

    def test_different_key_never_hits(self, cache, shared_keys, other_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        cache.verify(shared_keys.public, sig, data, SHA1)
        assert not cache.lookup(other_keys.public, sig, data, SHA1)
        with pytest.raises(SignatureError):
            cache.verify(other_keys.public, sig, data, SHA1)

    def test_different_suite_never_hits(self, cache, shared_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        cache.verify(shared_keys.public, sig, data, SHA1)
        assert not cache.lookup(shared_keys.public, sig, data, SHA256)

    def test_different_signature_never_hits(self, cache, shared_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        cache.verify(shared_keys.public, sig, data, SHA1)
        forged = bytes(len(sig))
        assert not cache.lookup(shared_keys.public, forged, data, SHA1)

    def test_failed_verification_not_recorded(self, cache, shared_keys, other_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        with pytest.raises(SignatureError):
            cache.verify(other_keys.public, sig, data, SHA1)
        assert len(cache) == 0
        # Retrying the same bad input re-pays (and re-fails) the RSA.
        with pytest.raises(SignatureError):
            cache.verify(other_keys.public, sig, data, SHA1)

    def test_wrong_payload_digest_cannot_poison(self, cache, shared_keys):
        # A caller passing the digest of payload A while recording
        # payload B would key the entry under A's digest — but lookups
        # for A still carry A's signature, which differs, so no alias.
        data_a, sig_a = _sign(shared_keys, {"a": 1})
        data_b, sig_b = _sign(shared_keys, {"b": 2})
        digest_a = cache.digest_suite.digest(data_a)
        cache.verify(shared_keys.public, sig_b, data_b, SHA1, payload_digest=digest_a)
        assert not cache.lookup(shared_keys.public, sig_a, data_a, SHA1)


class TestExpiry:
    def test_hit_refused_past_certificate_expiry(self, cache, shared_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        cache.verify(shared_keys.public, sig, data, SHA1, expires_at=100.0)
        assert cache.lookup(shared_keys.public, sig, data, SHA1, now=99.0)
        assert not cache.lookup(shared_keys.public, sig, data, SHA1, now=101.0)
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_invalidate_expired_sweep(self, cache, shared_keys):
        for i, expiry in enumerate((50.0, 150.0, None)):
            data, sig = _sign(shared_keys, {"i": i})
            cache.verify(shared_keys.public, sig, data, SHA1, expires_at=expiry)
        assert cache.invalidate_expired(now=100.0) == 1
        assert len(cache) == 2
        # Entries without expiry never age out via the sweep.
        assert cache.invalidate_expired(now=1e18) == 1
        assert len(cache) == 1


class TestBounds:
    def test_entry_bound_evicts_lru(self, shared_keys):
        cache = VerificationCache(max_entries=2)
        signed = [_sign(shared_keys, {"i": i}) for i in range(3)]
        for data, sig in signed:
            cache.verify(shared_keys.public, sig, data, SHA1)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        data0, sig0 = signed[0]
        assert not cache.lookup(shared_keys.public, sig0, data0, SHA1)
        data2, sig2 = signed[2]
        assert cache.lookup(shared_keys.public, sig2, data2, SHA1)

    def test_byte_bound_evicts(self, shared_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        probe = VerificationCache()
        probe.verify(shared_keys.public, sig, data, SHA1)
        entry_bytes = probe.bytes_used
        cache = VerificationCache(max_bytes=entry_bytes + entry_bytes // 2)
        for i in range(3):
            d, s = _sign(shared_keys, {"i": i})
            cache.verify(shared_keys.public, s, d, SHA1)
        assert len(cache) == 1
        assert cache.bytes_used <= cache.max_bytes
        assert cache.stats.evictions == 2

    def test_lookup_refreshes_lru_position(self, shared_keys):
        cache = VerificationCache(max_entries=2)
        signed = [_sign(shared_keys, {"i": i}) for i in range(3)]
        for data, sig in signed[:2]:
            cache.verify(shared_keys.public, sig, data, SHA1)
        data0, sig0 = signed[0]
        assert cache.lookup(shared_keys.public, sig0, data0, SHA1)  # 0 now MRU
        data2, sig2 = signed[2]
        cache.verify(shared_keys.public, sig2, data2, SHA1)  # evicts 1, not 0
        assert cache.lookup(shared_keys.public, sig0, data0, SHA1)

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            VerificationCache(max_entries=0)
        with pytest.raises(ValueError):
            VerificationCache(max_bytes=0)


class TestStats:
    def test_counters_and_saved_time(self, cache, shared_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        cache.verify(shared_keys.public, sig, data, SHA1)
        cache.verify(shared_keys.public, sig, data, SHA1)
        cache.verify(shared_keys.public, sig, data, SHA1)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        # Each hit re-credits the measured cost of the original miss.
        assert cache.stats.saved_seconds > 0.0
        assert cache.stats.saved_us == pytest.approx(cache.stats.saved_seconds * 1e6)

    def test_clear_empties_but_keeps_stats(self, cache, shared_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        cache.verify(shared_keys.public, sig, data, SHA1)
        cache.clear()
        assert len(cache) == 0
        assert cache.bytes_used == 0
        assert cache.stats.misses == 1


class TestEnvelopeFastPath:
    """The cache as envelopes use it, including the intern pool."""

    def test_envelope_verify_with_cache(self, shared_keys):
        cache = VerificationCache()
        env = SignedEnvelope.create(shared_keys, {"msg": "hello"})
        assert env.verify(shared_keys.public, cache=cache) == {"msg": "hello"}
        assert env.verify(shared_keys.public, cache=cache) == {"msg": "hello"}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_reparsed_envelope_is_interned(self, shared_keys):
        env = SignedEnvelope.create(shared_keys, {"msg": "hello"})
        wire = env.to_dict()
        first = SignedEnvelope.from_dict(wire)
        second = SignedEnvelope.from_dict(wire)
        assert second is first

    def test_tampered_wire_never_aliases_interned_instance(self, shared_keys):
        env = SignedEnvelope.create(shared_keys, {"msg": "hello"})
        wire = env.to_dict()
        good = SignedEnvelope.from_dict(wire)
        evil_wire = dict(wire, payload={"msg": "evil"})
        evil = SignedEnvelope.from_dict(evil_wire)
        assert evil is not good
        with pytest.raises(SignatureError):
            evil.verify(shared_keys.public, cache=VerificationCache())

    def test_interned_warm_verify_hits_across_reparses(self, shared_keys):
        cache = VerificationCache()
        env = SignedEnvelope.create(shared_keys, {"msg": "hello"})
        wire = env.to_dict()
        for _ in range(3):
            SignedEnvelope.from_dict(wire).verify(shared_keys.public, cache=cache)
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_intern_pool_is_bounded(self, shared_keys):
        from repro.crypto import signing

        wires = []
        for i in range(5):
            env = SignedEnvelope.create(shared_keys, {"i": i})
            wires.append(env.to_dict())
        old_max = signing._INTERN_MAX
        signing._INTERN_MAX = 2
        try:
            SignedEnvelope.clear_intern_pool()
            parsed = [SignedEnvelope.from_dict(w) for w in wires]
            assert len(signing._intern_pool) == 2
            # The two most recent survive; older ones re-parse fresh.
            assert SignedEnvelope.from_dict(wires[-1]) is parsed[-1]
            assert SignedEnvelope.from_dict(wires[0]) is not parsed[0]
        finally:
            signing._INTERN_MAX = old_max
            SignedEnvelope.clear_intern_pool()


class TestRevocationInvalidation:
    """invalidate_key: the revocation checker's first-sight purge. Every
    verdict under the revoked key must vanish; other keys keep theirs."""

    def test_purges_all_entries_under_key(self, cache, shared_keys):
        for i in range(3):
            data, sig = _sign(shared_keys, {"doc": i})
            cache.verify(shared_keys.public, sig, data, SHA1)
        assert cache.invalidate_key(shared_keys.public) == 3
        data, sig = _sign(shared_keys, {"doc": 0})
        assert not cache.lookup(shared_keys.public, sig, data, SHA1)

    def test_other_keys_survive(self, cache, shared_keys, other_keys):
        revoked_data, revoked_sig = _sign(shared_keys, {"a": 1})
        cache.verify(shared_keys.public, revoked_sig, revoked_data, SHA1)
        other_data, other_sig = _sign(other_keys, {"a": 1})
        cache.verify(other_keys.public, other_sig, other_data, SHA1)
        assert cache.invalidate_key(shared_keys.public) == 1
        assert cache.lookup(other_keys.public, other_sig, other_data, SHA1)

    def test_counts_in_stats(self, cache, shared_keys):
        data, sig = _sign(shared_keys, {"a": 1})
        cache.verify(shared_keys.public, sig, data, SHA1)
        cache.invalidate_key(shared_keys.public)
        assert cache.stats.invalidations == 1

    def test_empty_cache_is_noop(self, cache, shared_keys):
        assert cache.invalidate_key(shared_keys.public) == 0
        assert cache.stats.invalidations == 0
