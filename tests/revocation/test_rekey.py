"""Emergency re-keying: artifact minting (unit level).

Deployment of the artifacts is integration-tested in
``tests/integration/test_rekey_forwarding.py``; here the three signed
products of :func:`emergency_rekey` are checked in isolation.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.revocation.rekey import emergency_rekey
from repro.revocation.statement import SCOPE_KEY
from tests.conftest import fast_keys


class TestEmergencyRekey:
    def test_mints_successor_and_signed_artifacts(self, make_owner):
        owner = make_owner(
            "vu.nl/rekey", {"index.html": b"<html>page</html>", "a.png": b"img"}
        )
        result = emergency_rekey(owner, serial=4, reason="laptop stolen")

        # Fresh key, hence fresh OID — same name, same content.
        assert result.old_oid.hex == owner.oid.hex
        assert result.new_oid.hex != owner.oid.hex
        assert result.successor.name == owner.name
        assert result.document.oid.hex == result.new_oid.hex
        assert sorted(result.document.elements) == ["a.png", "index.html"]
        assert result.document.elements["index.html"].content == b"<html>page</html>"

        # The revocation condemns the old key, signed by the old key.
        revocation = result.revocation.verify()
        assert revocation.scope == SCOPE_KEY
        assert revocation.oid_hex == owner.oid.hex
        assert revocation.serial == 4
        assert revocation.reason == "laptop stolen"

        # The forwarding record points old → new, signed by the old key.
        forwarding = result.forwarding.verify()
        assert forwarding.from_oid.hex == owner.oid.hex
        assert forwarding.to_oid.hex == result.new_oid.hex

    def test_accepts_injected_keys(self, make_owner):
        owner = make_owner("vu.nl/rekey")
        keys = fast_keys()
        result = emergency_rekey(owner, serial=1, new_keys=keys)
        assert result.successor.keys is keys

    def test_refuses_empty_object(self, clock):
        from repro.globedoc.owner import DocumentOwner

        owner = DocumentOwner("vu.nl/empty", keys=fast_keys(), clock=clock)
        with pytest.raises(ReproError):
            emergency_rekey(owner, serial=1)

    def test_refuses_same_keys(self, make_owner):
        owner = make_owner("vu.nl/rekey")
        with pytest.raises(ReproError):
            emergency_rekey(owner, serial=1, new_keys=owner.keys)
