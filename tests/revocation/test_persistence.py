"""Durable revocation state: feed log recovery, consumer cursors, and
the fail-closed guarantees across restarts (ISSUE 7 satellites).

The security claim under test: a restart must never re-open the
fail-open window. The feed recovers its full log (an empty restart
would report head 0 and vouch for nothing having been revoked); the checker
recovers its verified view and rejects known-revoked OIDs *before*
touching the network; and a feed that *did* lose its log is detected by
consumers as a head regression and refused.
"""

from __future__ import annotations

import os
import zlib

import pytest

from repro.errors import (
    FeedRegressionError,
    RecoveryIntegrityError,
    RevocationStalenessError,
    RevokedKeyError,
    TransportError,
)
from repro.globedoc.oid import ObjectId
from repro.revocation.checker import RevocationChecker
from repro.revocation.feed import RevocationFeed
from repro.revocation.statement import RevocationStatement
from repro.storage.store import DurableStore
from repro.storage.wal import FRAME_HEADER
from repro.util.encoding import canonical_bytes, from_canonical_bytes
from tests.conftest import EPOCH, fast_keys

MAX_STALENESS = 60.0


class FeedRpc:
    """Minimal RPC shim straight onto a local feed, with a kill switch."""

    def __init__(self, feed: RevocationFeed) -> None:
        self.feed = feed
        self.down = False
        self.calls = 0

    def call(self, target, method, **kwargs):
        assert method == "revocation.fetch"
        if self.down:
            raise TransportError("revocation feed unreachable")
        self.calls += 1
        return self.feed.fetch(since=int(kwargs.get("since", 0)))


def revoke_key(keys, oid, serial=1):
    return RevocationStatement.revoke_key(
        keys, oid, serial=serial, issued_at=EPOCH, reason="test"
    )


def feed_store(tmp_path, name="feed"):
    return DurableStore(os.path.join(str(tmp_path), name), sync=False)


class TestFeedPersistence:
    def test_log_survives_restart(self, tmp_path, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed(store=feed_store(tmp_path))
        feed.publish(revoke_key(shared_keys, oid, serial=1))
        feed.publish(revoke_key(shared_keys, oid, serial=2))
        feed.store.close()

        restarted = RevocationFeed(store=feed_store(tmp_path))
        assert restarted.head == 2
        assert restarted.recovered == 2
        assert restarted.max_serial(oid.hex) == 2
        delta = restarted.fetch(since=0)
        assert len(delta["statements"]) == 2

    def test_serial_monotonicity_survives_restart(self, tmp_path, shared_keys):
        """The replay rebuilds the per-OID serial index, so a replayed
        old statement is still rejected after a restart."""
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed(store=feed_store(tmp_path))
        feed.publish(revoke_key(shared_keys, oid, serial=5))
        feed.store.close()

        restarted = RevocationFeed(store=feed_store(tmp_path))
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="not monotone"):
            restarted.publish(revoke_key(shared_keys, oid, serial=3))

    def test_recovery_from_snapshot_plus_journal(self, tmp_path, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed(store=feed_store(tmp_path))
        feed.publish(revoke_key(shared_keys, oid, serial=1))
        feed.compact()
        feed.publish(revoke_key(shared_keys, oid, serial=2))
        feed.store.close()

        restarted = RevocationFeed(store=feed_store(tmp_path))
        assert restarted.head == 2
        assert [s.serial for s in restarted.statements()] == [1, 2]

    def test_tampered_statement_fails_recovery_closed(self, tmp_path, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed(store=feed_store(tmp_path))
        feed.publish(revoke_key(shared_keys, oid, serial=1))
        feed.store.close()

        wal_path = os.path.join(str(tmp_path), "feed", "wal.log")
        with open(wal_path, "rb") as fh:
            data = fh.read()
        length, _ = FRAME_HEADER.unpack_from(data, 0)
        record = from_canonical_bytes(data[FRAME_HEADER.size : FRAME_HEADER.size + length])
        record["__record__"]["statement"]["body"]["serial"] = 99  # shadow a future serial
        payload = canonical_bytes(record)
        with open(wal_path, "wb") as fh:
            fh.write(FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
            fh.write(payload)

        with pytest.raises(RecoveryIntegrityError, match="poisoned log"):
            RevocationFeed(store=feed_store(tmp_path))


class TestPoisonedRepublish:
    def test_conflicting_republish_rejected_in_durable_feed(
        self, tmp_path, shared_keys
    ):
        """The payload-identity rule (satellite 1) holds for the durable
        feed too, and the rejected statement is never journaled."""
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed(store=feed_store(tmp_path))
        feed.publish(revoke_key(shared_keys, oid, serial=1))
        imposter = RevocationStatement.revoke_key(
            shared_keys, oid, serial=1, issued_at=EPOCH, reason="different payload"
        )
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="payload differs"):
            feed.publish(imposter)
        assert feed.store.journal_length == 1  # only the genuine statement
        feed.store.close()

        restarted = RevocationFeed(store=feed_store(tmp_path))
        assert restarted.head == 1
        assert restarted.statements()[0].reason == "test"


class TestCheckerCursor:
    def make_checker(self, rpc, clock, tmp_path, name="cursor"):
        return RevocationChecker(
            rpc,
            feed_target=None,
            clock=clock,
            max_staleness=MAX_STALENESS,
            store=DurableStore(os.path.join(str(tmp_path), name), sync=False),
        )

    def test_rejects_revoked_oid_after_restart_with_feed_down(
        self, tmp_path, clock, shared_keys
    ):
        """The zero fail-open window: a restarted checker condemns a
        known-revoked OID from its durable cursor before any RPC — even
        with the feed unreachable."""
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed()
        rpc = FeedRpc(feed)
        checker = self.make_checker(rpc, clock, tmp_path)
        feed.publish(revoke_key(shared_keys, oid))
        checker.refresh()
        checker.store.close()

        rpc.down = True
        calls_before = rpc.calls
        restarted = self.make_checker(rpc, clock, tmp_path)
        assert restarted.stats.statements_recovered == 1
        assert restarted.head == 1
        with pytest.raises(RevokedKeyError):
            restarted.check(oid)
        assert rpc.calls == calls_before  # rejected without any network

    def test_recovered_view_does_not_vouch_without_sync(
        self, tmp_path, clock, shared_keys, other_keys
    ):
        """Recovery proves what *was* revoked, never that nothing new is:
        vouching for a clean OID still requires a fresh sync, so a clean
        check with the feed down fails closed on staleness."""
        oid = ObjectId.from_public_key(shared_keys.public)
        clean_oid = ObjectId.from_public_key(other_keys.public)
        feed = RevocationFeed()
        rpc = FeedRpc(feed)
        checker = self.make_checker(rpc, clock, tmp_path)
        feed.publish(revoke_key(shared_keys, oid))
        checker.refresh()
        checker.store.close()

        rpc.down = True
        restarted = self.make_checker(rpc, clock, tmp_path)
        assert restarted.staleness is None  # recovered ≠ synced
        with pytest.raises(RevocationStalenessError):
            restarted.check(clean_oid)

    def test_cursor_resumes_from_persisted_head(self, tmp_path, clock, shared_keys):
        """The next refresh after a restart fetches the delta past the
        persisted head, not the whole feed from zero."""
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed()
        rpc = FeedRpc(feed)
        checker = self.make_checker(rpc, clock, tmp_path)
        feed.publish(revoke_key(shared_keys, oid, serial=1))
        checker.refresh()
        checker.store.close()

        feed.publish(revoke_key(shared_keys, oid, serial=2))
        restarted = self.make_checker(rpc, clock, tmp_path)
        assert restarted.refresh() == 1  # only the new statement crossed the wire
        assert restarted.head == 2

    def test_cursor_survives_compaction(self, tmp_path, clock, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed()
        rpc = FeedRpc(feed)
        checker = self.make_checker(rpc, clock, tmp_path)
        feed.publish(revoke_key(shared_keys, oid))
        checker.refresh()
        checker.store.compact(
            {
                "head": checker.head,
                "statements": [
                    s.to_dict()
                    for statements in checker._by_oid.values()
                    for s in statements
                ],
            }
        )
        checker.store.close()

        rpc.down = True
        restarted = self.make_checker(rpc, clock, tmp_path)
        assert restarted.head == 1
        with pytest.raises(RevokedKeyError):
            restarted.check(oid)

    def test_tampered_cursor_fails_recovery_closed(self, tmp_path, clock, shared_keys):
        """A cursor store rewritten at rest must not be trusted: its head
        would silently skip genuine revocations."""
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed()
        rpc = FeedRpc(feed)
        checker = self.make_checker(rpc, clock, tmp_path)
        feed.publish(revoke_key(shared_keys, oid))
        checker.refresh()
        checker.store.close()

        wal_path = os.path.join(str(tmp_path), "cursor", "wal.log")
        with open(wal_path, "rb") as fh:
            data = fh.read()
        frames = []
        offset = 0
        while offset < len(data):
            length, _ = FRAME_HEADER.unpack_from(data, offset)
            start = offset + FRAME_HEADER.size
            frames.append(from_canonical_bytes(data[start : start + length]))
            offset = start + length
        out = bytearray()
        for record in frames:
            statement = record.get("__record__", {}).get("statement")
            if statement:
                statement["body"]["reason"] = "rewritten at rest"
            payload = canonical_bytes(record)
            out += FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
            out += payload
        with open(wal_path, "wb") as fh:
            fh.write(bytes(out))

        with pytest.raises(RecoveryIntegrityError, match="failing recovery closed"):
            self.make_checker(rpc, clock, tmp_path)


class TestHeadRegression:
    def test_refresh_fails_closed_on_regressed_head(self, clock, shared_keys):
        """Satellite 2: a feed whose head moved backwards lost statements
        (restart without its log, or a rollback attack). The consumer
        must refuse the sync immediately — not treat it as fresh."""
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed()
        rpc = FeedRpc(feed)
        checker = RevocationChecker(
            rpc, feed_target=None, clock=clock, max_staleness=MAX_STALENESS
        )
        feed.publish(revoke_key(shared_keys, oid))
        checker.refresh()
        assert checker.head == 1

        rpc.feed = RevocationFeed()  # the feed restarted empty
        with pytest.raises(FeedRegressionError, match="regressed from 1 to 0"):
            checker.refresh()
        assert checker.stats.head_regressions == 1

    def test_regression_propagates_through_check(self, clock, shared_keys, other_keys):
        """The regression is not a staleness condition: even inside the
        max-staleness window, check() must surface it, not serve on the
        stale view."""
        oid = ObjectId.from_public_key(shared_keys.public)
        clean_oid = ObjectId.from_public_key(other_keys.public)
        feed = RevocationFeed()
        rpc = FeedRpc(feed)
        checker = RevocationChecker(
            rpc, feed_target=None, clock=clock, max_staleness=MAX_STALENESS
        )
        feed.publish(revoke_key(shared_keys, oid))
        checker.refresh()

        rpc.feed = RevocationFeed()
        clock.advance(checker.poll_interval + 1)  # stale enough to refresh,
        assert (checker.staleness or 0) < MAX_STALENESS  # well within the window
        with pytest.raises(FeedRegressionError):
            checker.check(clean_oid)

    def test_known_revocation_still_rejected_during_regression(
        self, clock, shared_keys
    ):
        """Rejection needs no proof of currency: the revoked OID is
        condemned from the local view before the doomed refresh runs."""
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed()
        rpc = FeedRpc(feed)
        checker = RevocationChecker(
            rpc, feed_target=None, clock=clock, max_staleness=MAX_STALENESS
        )
        feed.publish(revoke_key(shared_keys, oid))
        checker.refresh()

        rpc.feed = RevocationFeed()
        clock.advance(checker.poll_interval + 1)
        with pytest.raises(RevokedKeyError):
            checker.check(oid)

    def test_equal_head_is_not_a_regression(self, clock, shared_keys):
        oid = ObjectId.from_public_key(shared_keys.public)
        feed = RevocationFeed()
        rpc = FeedRpc(feed)
        checker = RevocationChecker(
            rpc, feed_target=None, clock=clock, max_staleness=MAX_STALENESS
        )
        feed.publish(revoke_key(shared_keys, oid))
        checker.refresh()
        assert checker.refresh() == 0  # empty delta, same head: fine
        assert checker.stats.head_regressions == 0
