"""The client-side revocation checker: staleness policy, scope
semantics, verification of an untrusted feed, and first-sight cache
purges."""

from __future__ import annotations

import pytest

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import SHA1
from repro.crypto.verifycache import VerificationCache
from repro.errors import (
    RevocationStalenessError,
    RevokedElementError,
    RevokedKeyError,
    TransportError,
)
from repro.globedoc.element import PageElement
from repro.globedoc.oid import ObjectId
from repro.proxy.contentcache import ContentCache
from repro.revocation.checker import RevocationChecker
from repro.revocation.feed import RevocationFeed
from repro.revocation.statement import REVOCATION_CERT_TYPE, RevocationStatement
from repro.util.encoding import canonical_bytes
from tests.conftest import EPOCH

MAX_STALENESS = 60.0  # poll interval defaults to half: 30 s


class FeedRpc:
    """Minimal RPC shim straight onto a local feed, with a kill switch."""

    def __init__(self, feed: RevocationFeed) -> None:
        self.feed = feed
        self.down = False
        self.calls = 0

    def call(self, target, method, **kwargs):
        assert method == "revocation.fetch"
        if self.down:
            raise TransportError("revocation feed unreachable")
        self.calls += 1
        return self.feed.fetch(since=int(kwargs.get("since", 0)))


@pytest.fixture
def feed() -> RevocationFeed:
    return RevocationFeed()


@pytest.fixture
def rpc(feed) -> FeedRpc:
    return FeedRpc(feed)


@pytest.fixture
def checker(rpc, clock) -> RevocationChecker:
    return RevocationChecker(
        rpc, feed_target=None, clock=clock, max_staleness=MAX_STALENESS
    )


@pytest.fixture(scope="module")
def oid(shared_keys) -> ObjectId:
    return ObjectId.from_public_key(shared_keys.public)


def revoke_key(keys, oid, serial=1):
    return RevocationStatement.revoke_key(
        keys, oid, serial=serial, issued_at=EPOCH, reason="test"
    )


class TestCheck:
    def test_clean_oid_passes(self, checker, rpc, oid):
        checker.check(oid)
        assert rpc.calls == 1  # first check always syncs
        assert checker.stats.rejections == 0

    def test_revoked_key_rejected(self, checker, feed, shared_keys, oid):
        feed.publish(revoke_key(shared_keys, oid))
        with pytest.raises(RevokedKeyError):
            checker.check(oid)
        assert checker.stats.rejections == 1
        assert checker.stats.statements_ingested == 1

    def test_unrelated_oid_unaffected(
        self, checker, feed, shared_keys, other_keys, oid
    ):
        feed.publish(revoke_key(shared_keys, oid))
        checker.check(ObjectId.from_public_key(other_keys.public))

    def test_element_scope_is_version_bounded(
        self, checker, feed, shared_keys, oid
    ):
        feed.publish(
            RevocationStatement.revoke_element(
                shared_keys, oid, element="index.html", cert_version=2,
                serial=1, issued_at=EPOCH,
            )
        )
        # Establish-time check (no element in hand) is not condemned.
        checker.check(oid)
        with pytest.raises(RevokedElementError):
            checker.check(oid, element_name="index.html", cert_version=2)
        with pytest.raises(RevokedElementError):  # unknown version: closed
            checker.check(oid, element_name="index.html", cert_version=None)
        checker.check(oid, element_name="index.html", cert_version=3)
        checker.check(oid, element_name="logo.gif", cert_version=1)


class TestStalenessPolicy:
    def test_poll_interval_gates_refresh(self, checker, rpc, clock, oid):
        checker.check(oid)
        clock.advance(checker.poll_interval - 1.0)
        checker.check(oid)
        assert rpc.calls == 1  # within the poll window: view reused
        clock.advance(2.0)
        checker.check(oid)
        assert rpc.calls == 2

    def test_never_synced_and_feed_down_fails_closed(self, checker, rpc, oid):
        rpc.down = True
        with pytest.raises(RevocationStalenessError):
            checker.check(oid)
        assert checker.stats.refresh_failures == 1

    def test_stale_within_window_serves(self, checker, rpc, clock, oid):
        checker.check(oid)
        rpc.down = True
        clock.advance(checker.poll_interval + 1.0)  # stale, but in window
        checker.check(oid)
        assert checker.stats.refresh_failures == 1

    def test_stale_past_window_fails_closed(self, checker, rpc, clock, oid):
        checker.check(oid)
        rpc.down = True
        clock.advance(MAX_STALENESS + 1.0)
        with pytest.raises(RevocationStalenessError):
            checker.check(oid)

    def test_recovers_when_feed_returns(
        self, checker, rpc, clock, feed, shared_keys, oid
    ):
        checker.check(oid)
        rpc.down = True
        clock.advance(MAX_STALENESS + 1.0)
        with pytest.raises(RevocationStalenessError):
            checker.check(oid)
        rpc.down = False
        feed.publish(revoke_key(shared_keys, oid))
        with pytest.raises(RevokedKeyError):  # fresh view, real verdict
            checker.check(oid)

    def test_rejects_invalid_max_staleness(self, rpc, clock):
        with pytest.raises(ValueError):
            RevocationChecker(rpc, feed_target=None, clock=clock, max_staleness=0)


class TestUntrustedFeed:
    def test_forged_statement_dropped(self, clock, shared_keys, other_keys, oid):
        """A feed serving a forged statement must not revoke anything —
        consumers re-verify every statement themselves."""
        body = {
            "oid": oid.to_dict(),
            "scope": "key",
            "serial": 1,
            "issued_at": EPOCH,
            "reason": "forged by the feed",
            "issuer_key_der": other_keys.public.der,
            "element": None,
            "cert_version": None,
        }
        forged = Certificate.issue(
            other_keys, REVOCATION_CERT_TYPE, body, not_before=EPOCH
        )

        class PoisonedRpc:
            def call(self, target, method, **kwargs):
                return {"head": 1, "statements": [forged.to_dict()]}

        checker = RevocationChecker(
            PoisonedRpc(), feed_target=None, clock=clock,
            max_staleness=MAX_STALENESS,
        )
        assert checker.refresh() == 0
        assert checker.stats.invalid_dropped == 1
        checker.check(oid)  # garbage revokes nothing

    def test_replayed_statements_ingested_once(
        self, clock, feed, shared_keys, oid
    ):
        feed.publish(revoke_key(shared_keys, oid))

        class ReplayingRpc:
            """Always serves the full log, whatever `since` says."""

            def call(self, target, method, **kwargs):
                return feed.fetch(since=0)

        checker = RevocationChecker(
            ReplayingRpc(), feed_target=None, clock=clock,
            max_staleness=MAX_STALENESS,
        )
        checker.refresh()
        checker.refresh()
        assert checker.stats.statements_ingested == 1
        assert len(checker.known_statements(oid)) == 1


class TestFirstSightPurges:
    def _primed_verification_cache(self, keys) -> VerificationCache:
        cache = VerificationCache()
        data = canonical_bytes({"doc": "payload"})
        signature = keys.sign(data, suite=SHA1)
        cache.verify(keys.public, signature, data, SHA1)  # records verdict
        assert cache.lookup(keys.public, signature, data, SHA1)
        return cache

    def test_verification_cache_purged(
        self, rpc, clock, feed, shared_keys, oid
    ):
        cache = self._primed_verification_cache(shared_keys)
        checker = RevocationChecker(
            rpc, feed_target=None, clock=clock, max_staleness=MAX_STALENESS,
            verification_cache=cache,
        )
        feed.publish(revoke_key(shared_keys, oid))
        checker.refresh()
        assert checker.stats.verify_purged == 1
        data = canonical_bytes({"doc": "payload"})
        signature = shared_keys.sign(data, suite=SHA1)
        assert not cache.lookup(shared_keys.public, signature, data, SHA1)

    def test_content_cache_purged_by_scope(
        self, rpc, clock, feed, shared_keys, other_keys, oid
    ):
        content = ContentCache(clock=clock)
        expires = clock.now() + 3600.0
        content.put(oid.hex, PageElement("index.html", b"a"), expires)
        content.put(oid.hex, PageElement("logo.gif", b"b"), expires)
        other_oid = ObjectId.from_public_key(other_keys.public)
        content.put(other_oid.hex, PageElement("index.html", b"c"), expires)
        checker = RevocationChecker(
            rpc, feed_target=None, clock=clock, max_staleness=MAX_STALENESS,
            content_cache=content,
        )
        # Element scope purges exactly the condemned element …
        feed.publish(
            RevocationStatement.revoke_element(
                shared_keys, oid, element="index.html", cert_version=1,
                serial=1, issued_at=EPOCH,
            )
        )
        checker.refresh()
        assert checker.stats.content_purged == 1
        assert content.get(oid.hex, "index.html") is None
        assert content.get(oid.hex, "logo.gif") is not None
        # … key scope purges the whole object, leaving others alone.
        feed.publish(revoke_key(shared_keys, oid, serial=2))
        checker.refresh()
        assert content.get(oid.hex, "logo.gif") is None
        assert content.get(other_oid.hex, "index.html") is not None
