"""Revocation statements: self-certifying, permanent, scope-exact.

A statement is only as good as what it refuses: a key that does not hash
to the stated OID, a signature from anyone but that key, or a malformed
scope must all fail verification — the feed and every client re-verify
independently, so these tests pin the statement down in isolation.
"""

from __future__ import annotations

import pytest

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import SHA1
from repro.errors import AuthenticityError, CertificateError, SecurityError
from repro.globedoc.oid import ObjectId
from repro.revocation.statement import (
    REVOCATION_CERT_TYPE,
    SCOPE_ELEMENT,
    SCOPE_KEY,
    RevocationStatement,
)
from repro.sim.clock import SimClock
from tests.conftest import EPOCH


@pytest.fixture(scope="module")
def oid(shared_keys) -> ObjectId:
    return ObjectId.from_public_key(shared_keys.public)


def _forged(victim_oid, signing_keys, embedded_key) -> RevocationStatement:
    """A statement for *victim_oid* built outside the issuing guard."""
    body = {
        "oid": victim_oid.to_dict(),
        "scope": SCOPE_KEY,
        "serial": 1,
        "issued_at": EPOCH,
        "reason": "forged",
        "issuer_key_der": embedded_key.der,
        "element": None,
        "cert_version": None,
    }
    certificate = Certificate.issue(
        signing_keys, REVOCATION_CERT_TYPE, body, not_before=EPOCH, suite=SHA1
    )
    return RevocationStatement(certificate)


class TestIssue:
    def test_key_scope_fields(self, shared_keys, oid):
        statement = RevocationStatement.revoke_key(
            shared_keys, oid, serial=3, issued_at=EPOCH, reason="compromise"
        )
        assert statement.scope == SCOPE_KEY
        assert statement.oid_hex == oid.hex
        assert statement.serial == 3
        assert statement.issued_at == EPOCH
        assert statement.reason == "compromise"
        assert statement.element is None
        assert statement.cert_version is None
        assert statement.issuer_key.der == shared_keys.public.der

    def test_element_scope_fields(self, shared_keys, oid):
        statement = RevocationStatement.revoke_element(
            shared_keys, oid, element="index.html", cert_version=2,
            serial=1, issued_at=EPOCH,
        )
        assert statement.scope == SCOPE_ELEMENT
        assert statement.element == "index.html"
        assert statement.cert_version == 2

    def test_wrong_key_refused(self, shared_keys, other_keys):
        """The OID must self-certify the signing key at issue time."""
        oid_of_other = ObjectId.from_public_key(other_keys.public)
        with pytest.raises(AuthenticityError):
            RevocationStatement.revoke_key(
                shared_keys, oid_of_other, serial=1, issued_at=EPOCH
            )

    def test_serial_must_be_positive(self, shared_keys, oid):
        with pytest.raises(CertificateError):
            RevocationStatement.revoke_key(
                shared_keys, oid, serial=0, issued_at=EPOCH
            )

    def test_element_scope_needs_name_and_version(self, shared_keys, oid):
        with pytest.raises(CertificateError):
            RevocationStatement.revoke_element(
                shared_keys, oid, element="", cert_version=1,
                serial=1, issued_at=EPOCH,
            )
        with pytest.raises(CertificateError):
            RevocationStatement.revoke_element(
                shared_keys, oid, element="index.html", cert_version=0,
                serial=1, issued_at=EPOCH,
            )


class TestVerify:
    def test_roundtrip_verifies(self, shared_keys, oid):
        statement = RevocationStatement.revoke_key(
            shared_keys, oid, serial=1, issued_at=EPOCH
        )
        decoded = RevocationStatement.from_dict(statement.to_dict())
        assert decoded.verify() is decoded
        assert decoded.oid_hex == oid.hex and decoded.serial == 1

    def test_never_expires(self, shared_keys, oid):
        """Revocation is permanent: a decade-later verify still passes
        (the certificate's validity window is never enforced)."""
        statement = RevocationStatement.revoke_key(
            shared_keys, oid, serial=1, issued_at=EPOCH
        )
        decade_later = SimClock(EPOCH + 10 * 365 * 24 * 3600.0)
        assert statement.verify(clock=decade_later) is statement

    def test_embedded_key_must_hash_to_oid(self, shared_keys, oid, other_keys):
        forged = _forged(oid, other_keys, other_keys.public)
        with pytest.raises(AuthenticityError):
            forged.verify()

    def test_signature_must_come_from_embedded_key(
        self, shared_keys, oid, other_keys
    ):
        """Embedding the victim's key but signing with another fails the
        signature check — an attacker cannot revoke someone else's OID."""
        forged = _forged(oid, other_keys, shared_keys.public)
        with pytest.raises((SecurityError, CertificateError)):
            forged.verify()


class TestCovers:
    def test_key_scope_covers_everything(self, shared_keys, oid):
        statement = RevocationStatement.revoke_key(
            shared_keys, oid, serial=1, issued_at=EPOCH
        )
        assert statement.covers(None, None)
        assert statement.covers("anything.html", 99)

    def test_element_scope_is_version_bounded(self, shared_keys, oid):
        statement = RevocationStatement.revoke_element(
            shared_keys, oid, element="index.html", cert_version=2,
            serial=1, issued_at=EPOCH,
        )
        assert statement.covers("index.html", 1)
        assert statement.covers("index.html", 2)
        # A re-issued (version-bumped) certificate escapes the statement.
        assert not statement.covers("index.html", 3)
        assert not statement.covers("logo.gif", 1)
        assert not statement.covers(None, 1)

    def test_unknown_version_fails_closed(self, shared_keys, oid):
        statement = RevocationStatement.revoke_element(
            shared_keys, oid, element="index.html", cert_version=2,
            serial=1, issued_at=EPOCH,
        )
        assert statement.covers("index.html", None)
