"""The revocation feed: append-only, idempotent, serial-monotone."""

from __future__ import annotations

import pytest

from repro.crypto.certificates import Certificate
from repro.errors import AuthenticityError, ReproError
from repro.globedoc.oid import ObjectId
from repro.revocation.feed import RevocationFeed
from repro.revocation.statement import REVOCATION_CERT_TYPE, RevocationStatement
from tests.conftest import EPOCH


@pytest.fixture(scope="module")
def oid(shared_keys) -> ObjectId:
    return ObjectId.from_public_key(shared_keys.public)


def revoke(keys, oid, serial, reason="test"):
    return RevocationStatement.revoke_key(
        keys, oid, serial=serial, issued_at=EPOCH, reason=reason
    )


class TestPublish:
    def test_append_and_head(self, shared_keys, oid):
        feed = RevocationFeed()
        assert feed.publish(revoke(shared_keys, oid, 1)) is True
        assert feed.head == 1 and len(feed) == 1

    def test_identical_republish_is_idempotent(self, shared_keys, oid):
        """An exact replay of a published statement is a no-op."""
        feed = RevocationFeed()
        statement = revoke(shared_keys, oid, 1)
        feed.publish(statement)
        assert feed.publish(statement) is False
        assert feed.head == 1
        assert feed.rejected == 0

    def test_payload_mismatched_republish_rejected(self, shared_keys, oid):
        """Reusing a published (OID, serial) with *different* content is
        a poisoning attempt (it would shadow the genuine statement and
        desynchronise WAL replay), never a benign duplicate."""
        feed = RevocationFeed()
        feed.publish(revoke(shared_keys, oid, 1))
        with pytest.raises(ReproError, match="payload differs"):
            feed.publish(revoke(shared_keys, oid, 1, reason="replayed"))
        assert feed.head == 1
        assert feed.rejected == 1

    def test_non_monotone_serial_rejected(self, shared_keys, oid):
        feed = RevocationFeed()
        feed.publish(revoke(shared_keys, oid, 2))
        with pytest.raises(ReproError):
            feed.publish(revoke(shared_keys, oid, 1))
        assert feed.rejected == 1
        assert feed.head == 1

    def test_forged_statement_rejected(self, other_keys, oid):
        """A statement whose embedded key does not hash to its OID never
        enters the log — publish verifies before appending."""
        body = {
            "oid": oid.to_dict(),
            "scope": "key",
            "serial": 1,
            "issued_at": EPOCH,
            "reason": "forged",
            "issuer_key_der": other_keys.public.der,
            "element": None,
            "cert_version": None,
        }
        forged = RevocationStatement(
            Certificate.issue(
                other_keys, REVOCATION_CERT_TYPE, body, not_before=EPOCH
            )
        )
        feed = RevocationFeed()
        with pytest.raises(AuthenticityError):
            feed.publish(forged)
        assert feed.head == 0


class TestConsumption:
    def test_delta_fetch(self, shared_keys, other_keys, oid):
        feed = RevocationFeed()
        other_oid = ObjectId.from_public_key(other_keys.public)
        feed.publish(revoke(shared_keys, oid, 1))
        feed.publish(revoke(other_keys, other_oid, 1))
        answer = feed.fetch(since=1)
        head, statements = RevocationFeed.decode_delta(answer)
        assert head == 2
        assert [s.oid_hex for s in statements] == [other_oid.hex]
        # A consumer at the head gets an empty delta.
        assert RevocationFeed.decode_delta(feed.fetch(since=2))[1] == []

    def test_statements_for_filters_by_oid(self, shared_keys, other_keys, oid):
        feed = RevocationFeed()
        other_oid = ObjectId.from_public_key(other_keys.public)
        feed.publish(revoke(shared_keys, oid, 1))
        feed.publish(revoke(other_keys, other_oid, 1))
        assert [s.oid_hex for s in feed.statements_for(oid.hex)] == [oid.hex]
        assert feed.statements_for("00" * 20) == []
