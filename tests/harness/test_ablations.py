"""Ablation experiments: each must reproduce its design claim."""

from __future__ import annotations

import pytest

from repro.harness.ablations import (
    compare_cert_caching,
    compare_cert_schemes,
    compare_location_lookup,
    measure_crypto_ops,
)


class TestCryptoOps:
    def test_verify_much_cheaper_than_decrypt(self):
        """§4: signature verification is 'much faster than the public key
        encrypt/decrypt operations required by SSL'."""
        costs = measure_crypto_ops(iterations=15)
        assert costs.rsa_decrypt > 3 * costs.verify
        assert costs.decrypt_over_verify > 3

    def test_sign_costlier_than_verify(self):
        costs = measure_crypto_ops(iterations=15)
        assert costs.sign > costs.verify

    def test_invalid_iterations(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            measure_crypto_ops(iterations=0)


class TestCertSchemes:
    @pytest.fixture(scope="class")
    def costs(self):
        return compare_cert_schemes(element_count=32, element_size=2048, repeats=2)

    def test_freshness_granularity(self, costs):
        """The qualitative difference §5 emphasises."""
        assert costs.globedoc_per_element_freshness
        assert not costs.merkle_per_element_freshness

    def test_merkle_proof_smaller_than_cert(self, costs):
        """r-OSFS's efficiency claim: per-fetch proof is O(log n) hashes,
        far below shipping the whole certificate table."""
        assert costs.merkle_proof_bytes < costs.globedoc_cert_bytes / 4

    def test_both_sign_costs_same_order(self, costs):
        """Both schemes hash all elements + one signature: within 10x."""
        ratio = costs.globedoc_sign_seconds / costs.merkle_build_sign_seconds
        assert 0.1 < ratio < 10.0


class TestLocationLookup:
    def test_local_replica_found_in_one_visit(self):
        costs = compare_location_lookup(fanout=4, depth=3, replicas=8)
        assert costs.ring_local_visits == 1.0

    def test_ring_beats_flat_for_local(self):
        costs = compare_location_lookup(fanout=4, depth=3, replicas=8)
        assert costs.ring_local_visits < costs.flat_visits

    def test_tree_stores_more_records(self):
        """The space/time trade: the tree keeps O(depth) records per
        replica, the flat directory one."""
        costs = compare_location_lookup()
        assert costs.tree_records > costs.flat_records


class TestCertCaching:
    def test_caching_speeds_up_multielement_objects(self):
        costs = compare_cert_caching(client_label="Paris", repeats=2)
        assert costs.speedup > 1.3
        assert costs.cached_seconds < costs.uncached_seconds
