"""Unit tests for the monitor-plane bench internals.

The integration run lives in CI (``repro.harness monitor --quick``);
here the gate logic and report shape are pinned with synthetic data, so
a regression names the exact rule it broke.
"""

from __future__ import annotations

import json

from repro.harness.monitor import (
    CACHE_TTL,
    QUARANTINE_SECONDS,
    SCRAPE_INTERVAL,
    FaultTimes,
    MonitorReport,
    check_report,
    render_monitor,
    write_report,
)
from repro.harness.report import render_monitor_plane_section


def clean_report(**overrides) -> MonitorReport:
    faults = FaultTimes(
        replica_killed_at=20.0,
        replica_restored_at=50.0,
        feed_killed_at=100.0,
        feed_restored_at=160.0,
        revocation_published_at=200.0,
        revoked_doc_abandoned_at=240.0,
    )
    fire_resolve = {
        "replica_circuit_open": {"fired_at": 30.0, "resolved_at": 75.0},
        "revocation_staleness_high": {"fired_at": 150.0, "resolved_at": 165.0},
        "revocation_rejections": {"fired_at": 230.0, "resolved_at": 280.0},
    }
    timeline = [
        {"rule": rule, "state": state, "at": stamps[key], "value": 1.0,
         "severity": "warning"}
        for rule, stamps in fire_resolve.items()
        for state, key in (("firing", "fired_at"), ("resolved", "resolved_at"))
    ]
    timeline.sort(key=lambda event: event["at"])
    fields = dict(
        seed=0,
        quick=True,
        scrape_interval=SCRAPE_INTERVAL,
        scrapes=40,
        rules=list(fire_resolve),
        timeline=timeline,
        fire_resolve=fire_resolve,
        faults=faults,
        accesses=120,
        ok=110,
        rejected=10,
        other_failures=0,
        harness_access_seconds=50.0,
        registry_access_seconds=50.2,
        registry_access_count=120.0,
        worst_staleness_seconds=48.0,
        worst_serial_lag=1.0,
        idle_text_identical=True,
        idle_json_identical=True,
        series_count=60,
        final_firing=[],
    )
    fields.update(overrides)
    return MonitorReport(**fields)


class TestGates:
    def test_clean_report_passes(self):
        assert check_report(clean_report()) == []

    def test_missing_transition_flagged(self):
        report = clean_report()
        report.fire_resolve["replica_circuit_open"]["resolved_at"] = None
        assert any("never reached resolved_at" in p for p in check_report(report))

    def test_out_of_order_timeline_flagged(self):
        report = clean_report()
        # The staleness alert firing before the circuit alert resolves.
        report.fire_resolve["revocation_staleness_high"]["fired_at"] = 60.0
        report.faults.feed_killed_at = 55.0
        assert any("out of order" in p for p in check_report(report))

    def test_slow_detection_flagged(self):
        report = clean_report()
        bound = CACHE_TTL + 3 * SCRAPE_INTERVAL
        report.fire_resolve["replica_circuit_open"]["fired_at"] = (
            report.faults.replica_killed_at + bound + 1.0
        )
        assert any("circuit_fire_after_kill" in p for p in check_report(report))

    def test_negative_latency_flagged(self):
        report = clean_report()
        report.fire_resolve["replica_circuit_open"]["fired_at"] = 10.0
        assert any("negative latency" in p for p in check_report(report))

    def test_consistency_drift_flagged(self):
        report = clean_report(registry_access_seconds=52.0)  # 4% off
        assert any("consistency ratio" in p for p in check_report(report))

    def test_nondeterministic_scrapes_flagged(self):
        assert any(
            "text scrapes differ" in p
            for p in check_report(clean_report(idle_text_identical=False))
        )
        assert any(
            "JSON snapshots differ" in p
            for p in check_report(clean_report(idle_json_identical=False))
        )

    def test_stuck_alert_flagged(self):
        report = clean_report(final_firing=["revocation_rejections"])
        assert any("still firing" in p for p in check_report(report))

    def test_missing_rejections_flagged(self):
        assert any(
            "no revocation rejections" in p
            for p in check_report(clean_report(rejected=0))
        )

    def test_spurious_failures_flagged(self):
        assert any(
            "non-revocation failures" in p
            for p in check_report(clean_report(other_failures=2))
        )

    def test_missing_cadence_flagged(self):
        assert any(
            "cadence did not run" in p
            for p in check_report(clean_report(scrapes=3))
        )


class TestReportShape:
    def test_alert_latencies_measure_against_faults(self):
        latencies = clean_report().alert_latencies()
        assert latencies["circuit_fire_after_kill"] == 10.0
        assert latencies["circuit_resolve_after_restore"] == 25.0
        assert latencies["rejections_resolve_after_abandon"] == 40.0
        # Resolution within quarantine + cadence slack, by construction.
        assert latencies["circuit_resolve_after_restore"] <= (
            QUARANTINE_SECONDS + 3 * SCRAPE_INTERVAL
        )

    def test_latency_none_when_fault_never_injected(self):
        report = clean_report()
        report.faults.replica_killed_at = -1.0
        assert report.alert_latencies()["circuit_fire_after_kill"] is None

    def test_consistency_ratio_zero_without_accesses(self):
        assert clean_report(harness_access_seconds=0.0).consistency_ratio == 0.0

    def test_to_dict_is_wire_clean(self):
        data = clean_report().to_dict()
        assert data["consistency"]["ratio"] > 0
        assert data["workload"]["accesses"] == 120
        assert len(data["timeline"]) == 6
        json.dumps(data)

    def test_write_report_roundtrips(self, tmp_path):
        path = tmp_path / "BENCH_monitor_plane.json"
        write_report(clean_report(), path)
        assert json.loads(path.read_text())["scrapes"] == 40

    def test_render_names_every_rule(self):
        out = render_monitor(clean_report())
        assert "replica_circuit_open" in out
        assert "revocation_staleness_high" in out
        assert "revocation_rejections" in out
        assert "consistency ratio" in out


class TestAggregateSection:
    def test_monitor_plane_section_renders_timeline(self):
        section = render_monitor_plane_section(clean_report().to_dict())
        assert "alert timeline" in section
        assert "replica_circuit_open" in section
        assert "worst revocation-view staleness: 48.0 s" in section
        assert "worst feed serial lag: 1" in section

    def test_monitor_plane_section_tolerates_partial_report(self):
        section = render_monitor_plane_section({})
        assert "no alert transitions recorded" in section
