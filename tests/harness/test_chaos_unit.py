"""Unit tests for chaos-harness internals.

The integration sweep (test_chaos_resilience) runs the whole thing; here
the gate logic, the report shapes, and the world construction are pinned
down with synthetic sweep points so a regression names the exact rule it
broke instead of just "the sweep failed".
"""

from __future__ import annotations

import json

from repro.harness.chaos import (
    ELEMENTS,
    REPLICA_SITES,
    ChaosPoint,
    ChaosReport,
    _build_world,
    check_report,
    render_chaos,
    write_report,
)


def make_point(
    drop=0.1,
    requests=40,
    ok=40,
    unverified_bytes=0,
    retries=3,
    failovers=1,
) -> ChaosPoint:
    return ChaosPoint(
        drop_probability=drop,
        corrupt_probability=0.02,
        requests=requests,
        ok=ok,
        failed=requests - ok,
        unverified_bytes=unverified_bytes,
        retries=retries,
        failovers=failovers,
        quarantines=0,
        backoff_seconds=0.5,
        transport_requests=requests * 3,
        drops_injected=int(drop * requests),
        corruptions_injected=1,
    )


def make_report(resilient, baseline) -> ChaosReport:
    return ChaosReport(seed=0, replicas=3, resilient=resilient, baseline=baseline)


class TestChaosPoint:
    def test_availability(self):
        assert make_point(requests=40, ok=30).availability == 0.75

    def test_availability_zero_requests(self):
        # No division-by-zero: an empty point reads as fully unavailable.
        assert make_point(requests=0, ok=0).availability == 0.0


class TestChaosReportDict:
    def test_to_dict_includes_derived_availability(self):
        report = make_report(
            [make_point(ok=40)], [make_point(ok=20, retries=0, failovers=0)]
        )
        data = report.to_dict()
        assert data["seed"] == 0 and data["replicas"] == 3
        assert data["resilient"][0]["availability"] == 1.0
        assert data["baseline"][0]["availability"] == 0.5
        assert data["resilient"][0]["drop_probability"] == 0.1

    def test_write_report_round_trips(self, tmp_path):
        report = make_report([make_point()], [make_point(ok=30)])
        out = tmp_path / "chaos.json"
        write_report(report, out)
        loaded = json.loads(out.read_text())
        assert loaded["resilient"][0]["ok"] == 40


class TestCheckReport:
    def test_clean_sweep_passes(self):
        report = make_report(
            [make_point(drop=0.0), make_point(drop=0.2), make_point(drop=0.3, ok=35)],
            [make_point(drop=0.0, ok=38), make_point(drop=0.2, ok=25),
             make_point(drop=0.3, ok=15)],
        )
        assert check_report(report) == []

    def test_unverified_bytes_always_fatal(self):
        report = make_report(
            [make_point()], [make_point(ok=20, unverified_bytes=512)]
        )
        problems = check_report(report)
        assert any("unverified bytes" in p for p in problems)

    def test_low_availability_at_moderate_drop_fails(self):
        report = make_report(
            [make_point(drop=0.2, ok=39)],  # 97.5% < 99%
            [make_point(drop=0.2, ok=20)],
        )
        problems = check_report(report)
        assert any("availability" in p for p in problems)

    def test_high_drop_rate_exempt_from_availability_gate(self):
        # At drop 0.3 the resilient stack may degrade; only the
        # aggregate-beats-baseline rule still applies.
        report = make_report(
            [make_point(drop=0.3, ok=25)], [make_point(drop=0.3, ok=10)]
        )
        assert check_report(report) == []

    def test_resilience_must_beat_baseline(self):
        report = make_report(
            [make_point(ok=40)], [make_point(ok=40, retries=0, failovers=0)]
        )
        problems = check_report(report)
        assert any("earned nothing" in p for p in problems)


class TestBuildWorld:
    def test_three_replica_deployment(self):
        testbed, published = _build_world(seed=0)
        oid_hex = published.owner.oid.hex
        for site in REPLICA_SITES:
            addresses = testbed.location_service.tree.addresses_at(oid_hex, site)
            assert addresses, f"no replica registered at {site}"
        # All three serve the genuine content through a real client.
        stack = testbed.client_stack("sporty.cs.vu.nl")
        response = stack.proxy.handle(published.url("index.html"))
        assert response.ok and response.content == ELEMENTS["index.html"]


class TestRenderChaos:
    def test_table_contains_sweep_columns(self):
        report = make_report(
            [make_point(drop=0.2)], [make_point(drop=0.2, ok=28)]
        )
        text = render_chaos(report)
        assert "Chaos sweep" in text
        assert "3 replicas" in text
        for column in ("drop rate", "resilient", "baseline", "unverified bytes"):
            assert column in text
        assert "0.20" in text and "100.0%" in text and "70.0%" in text

    def test_empty_report_renders_header_only(self):
        assert render_chaos(make_report([], [])).startswith("Chaos sweep")
