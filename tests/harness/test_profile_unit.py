"""Profile-bench gates and report shape.

One quick integration run per module (the same configuration CI
executes) backs every assertion; mutation tests then pin that each gate
actually detects the regression it names.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.harness.profile_bench import (
    ALLOWED_ROOTS,
    EXPECTED_CATEGORIES,
    EXPECTED_SPANS,
    check_report,
    render_profile,
    run_profile,
    write_report,
)
from repro.harness.report import render_bench_summary, render_profile_section


@pytest.fixture(scope="module")
def report():
    return run_profile(quick=True, seed=0)


class TestQuickRunPassesGates:
    def test_no_problems(self, report):
        assert check_report(report) == []
        assert report["criteria"]["problems"] == []

    def test_stitching_is_total(self, report):
        stitching = report["stitching"]
        assert stitching["stitch_rate"] == 1.0
        assert stitching["orphan_spans"] == 0
        assert stitching["skewed_spans"] == 0
        assert stitching["spans_dropped"] == 0
        assert stitching["duplicate_refs"] == 0
        assert stitching["cross_process_spans"] > 0
        assert stitching["cross_process_traces"] > 0

    def test_every_root_is_a_workload_entry_point(self, report):
        assert report["bad_roots"] == []
        assert set(report["roots"]) <= ALLOWED_ROOTS

    def test_expected_span_families_present(self, report):
        for name in EXPECTED_SPANS:
            assert report["span_names"].get(name, 0) > 0, name

    def test_attribution_closes_and_covers_categories(self, report):
        profile = report["profile"]
        assert profile["traces_profiled"] > 0
        assert profile["rootless_traces"] == 0
        assert report["max_relative_attribution_error"] <= 0.01
        for category in EXPECTED_CATEGORIES:
            assert category in profile["categories"], category
        fractions = sum(c["fraction"] for c in profile["categories"].values())
        assert fractions == pytest.approx(1.0)
        assert len(profile["hottest"]) == 5

    def test_burn_alert_walked_full_lifecycle(self, report):
        states = [
            event["state"]
            for event in report["slo"]["alert_timeline"]
            if event["rule"] == "access_latency:fast_burn"
        ]
        for state in ("pending", "firing", "resolved"):
            assert state in states
        assert states.index("firing") < states.index("resolved")

    def test_report_is_json_serialisable(self, report, tmp_path):
        out = tmp_path / "BENCH_profile.json"
        write_report(report, out)
        assert json.loads(out.read_text())["name"] == "profile"


class TestGatesDetectRegressions:
    def test_stitch_rate_below_one_flagged(self, report):
        broken = copy.deepcopy(report)
        broken["stitching"]["stitch_rate"] = 0.98
        assert any("stitch rate" in p for p in check_report(broken))

    def test_dropped_spans_flagged(self, report):
        broken = copy.deepcopy(report)
        broken["stitching"]["spans_dropped"] = 3
        assert any("spans_dropped" in p for p in check_report(broken))

    def test_bad_root_flagged(self, report):
        broken = copy.deepcopy(report)
        broken["bad_roots"] = ["server.handle (server-ginger:9)"]
        assert any("trace roots" in p for p in check_report(broken))

    def test_missing_span_family_flagged(self, report):
        broken = copy.deepcopy(report)
        del broken["span_names"]["gossip.run"]
        assert any("gossip.run" in p for p in check_report(broken))

    def test_attribution_error_flagged(self, report):
        broken = copy.deepcopy(report)
        broken["max_relative_attribution_error"] = 0.05
        assert any("attribution" in p for p in check_report(broken))

    def test_missing_category_flagged(self, report):
        broken = copy.deepcopy(report)
        del broken["profile"]["categories"]["storage"]
        assert any("'storage'" in p for p in check_report(broken))

    def test_incomplete_alert_lifecycle_flagged(self, report):
        broken = copy.deepcopy(report)
        broken["slo"]["alert_timeline"] = [
            event
            for event in broken["slo"]["alert_timeline"]
            if not (
                event["rule"] == "access_latency:fast_burn"
                and event["state"] == "resolved"
            )
        ]
        assert any("pending" in p for p in check_report(broken))

    def test_degraded_reads_flagged(self, report):
        broken = copy.deepcopy(report)
        broken["workload"]["read_ok"] = broken["workload"]["reads"] - 1
        assert any("reads degraded" in p for p in check_report(broken))


class TestRendering:
    def test_render_profile_mentions_the_headline_numbers(self, report):
        text = render_profile(report)
        assert "critical-path attribution" in text
        assert "stitching: rate 1.000" in text
        assert "SLO access_latency" in text
        assert "hottest span families" in text

    def test_bench_summary_includes_profile_section(self, report):
        section = render_profile_section({"profile": report})
        assert "Causal profile" in section
        assert "stitching: rate 1.000" in section
        summary = render_bench_summary({"profile": report})
        assert "Causal profile" in summary

    def test_section_absent_without_report(self):
        assert render_profile_section({}) == ""
        assert render_profile_section({"profile": {"error": "missing"}}) == ""
