"""Testbed wiring sanity."""

from __future__ import annotations

import pytest

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import HOST_SITE, Testbed
from tests.conftest import fast_keys


@pytest.fixture(scope="module")
def testbed():
    return Testbed()


@pytest.fixture(scope="module")
def published(testbed):
    owner = DocumentOwner("vu.nl/site", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"<html>hello</html>"))
    return testbed.publish(owner)


class TestWiring:
    def test_host_site_covers_table1(self, testbed):
        assert set(HOST_SITE) == set(testbed.network.host_names)

    def test_publish_registers_everywhere(self, testbed, published):
        # Naming: resolvable.
        stack = testbed.client_stack("sporty.cs.vu.nl")
        result = stack.resolver.resolve("vu.nl/site")
        assert result.oid == published.owner.oid
        # Location: findable.
        lookup = stack.location.lookup(published.owner.oid)
        assert lookup.addresses
        # Object server: hosting.
        assert testbed.object_server.hosts_oid(published.oid_hex)
        # Baselines mirrored.
        assert testbed.http_server.file_count >= 1

    def test_secure_fetch_from_each_client(self, testbed, published):
        for host in ("sporty.cs.vu.nl", "canardo.inria.fr", "ensamble02.cornell.edu"):
            stack = testbed.client_stack(host)
            response = stack.proxy.handle(published.url("index.html"))
            assert response.ok, host
            assert response.content == b"<html>hello</html>"

    def test_wan_client_slower_than_lan(self, testbed, published):
        def timed_fetch(host: str) -> float:
            stack = testbed.client_stack(host)
            start = testbed.clock.now()
            stack.proxy.handle(published.url("index.html"))
            return testbed.clock.now() - start

        lan = timed_fetch("sporty.cs.vu.nl")
        paris = timed_fetch("canardo.inria.fr")
        ithaca = timed_fetch("ensamble02.cornell.edu")
        assert lan < paris < ithaca

    def test_client_overhead_advances_clock(self, testbed):
        before = testbed.clock.now()
        charged = testbed.charge_client_overhead()
        assert testbed.clock.now() == before + charged

    def test_ssl_client_works(self, testbed, published):
        client = testbed.ssl_client("canardo.inria.fr")
        body = client.get(f"{published.name}/index.html")
        assert body == b"<html>hello</html>"
