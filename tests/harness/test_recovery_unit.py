"""Unit tests for the recovery bench internals.

The kill/restart sweep itself runs in CI (``repro.harness recovery
--quick``); here the gate logic and report shape are pinned down with
synthetic data, so a regression names the exact rule it broke.
"""

from __future__ import annotations

import json

from repro.harness.recovery import (
    RecoveryReport,
    ReplicaRecovery,
    RevocationResume,
    TamperFailClosed,
    TornTail,
    check_report,
    render_recovery,
    write_report,
)


def clean_report(**overrides) -> RecoveryReport:
    report = RecoveryReport(
        seed=0,
        quick=True,
        replica=ReplicaRecovery(
            documents=2,
            recovered_replicas=2,
            reverified_replicas=2,
            naming_records_recovered=2,
            location_addresses_recovered=2,
            restart_cycles=1,
            accesses_after_restart=4,
            accesses_ok=4,
            content_intact=True,
            post_restart_publish_ok=True,
            recovery_wall_seconds=0.05,
        ),
        revocation=RevocationResume(
            feed_head_before=1,
            feed_head_after=1,
            feed_statements_recovered=1,
            cursor_statements_recovered=1,
            revoked_rejected_from_disk=True,
            refreshes_at_rejection=0,
            rejection_error="RevokedKeyError",
            staleness_reset=True,
            clean_access_ok_after_sync=True,
            head_after_sync=1,
            regression_detected=True,
        ),
        torn=TornTail(
            torn_bytes_dropped=108,
            recovered_replicas=2,
            expected_replicas=2,
            accesses_ok=4,
            accesses_after_restart=4,
        ),
        tamper=TamperFailClosed(
            failed_closed=True, error_type="RecoveryIntegrityError"
        ),
    )
    for key, value in overrides.items():
        section, _, attr = key.partition("__")
        setattr(getattr(report, section), attr, value)
    return report


def problems(**overrides):
    return check_report(clean_report(**overrides))


class TestGates:
    def test_clean_report_passes(self):
        assert problems() == []

    def test_lost_replica_fails(self):
        assert any("recovered 1 of 2 replicas" in p for p in problems(
            replica__recovered_replicas=1
        ))

    def test_unverified_replica_fails(self):
        assert any("re-verified" in p for p in problems(
            replica__reverified_replicas=1
        ))

    def test_naming_shortfall_fails(self):
        assert any("naming recovered" in p for p in problems(
            replica__naming_records_recovered=0
        ))

    def test_location_shortfall_fails(self):
        assert any("location recovered" in p for p in problems(
            replica__location_addresses_recovered=1
        ))

    def test_failed_access_fails(self):
        assert any("accesses" in p for p in problems(replica__accesses_ok=3))

    def test_content_mismatch_fails(self):
        assert any("byte-compare" in p for p in problems(
            replica__content_intact=False
        ))

    def test_broken_write_path_fails(self):
        assert any("write path" in p for p in problems(
            replica__post_restart_publish_ok=False
        ))

    def test_feed_head_change_fails(self):
        assert any("feed head changed" in p for p in problems(
            revocation__feed_head_after=0
        ))

    def test_fail_open_window_fails(self):
        assert any("fail-open window" in p for p in problems(
            revocation__refreshes_at_rejection=1
        ))

    def test_served_revoked_fails(self):
        assert any("revoked OID" in p for p in problems(
            revocation__revoked_rejected_from_disk=False
        ))

    def test_wrong_rejection_error_fails(self):
        assert any("RevokedKeyError" in p for p in problems(
            revocation__rejection_error="RevocationStalenessError"
        ))

    def test_recovered_view_vouching_fails(self):
        assert any("must not vouch" in p for p in problems(
            revocation__staleness_reset=False
        ))

    def test_checker_behind_feed_fails(self):
        assert any("behind" in p for p in problems(revocation__head_after_sync=0))

    def test_missed_regression_fails(self):
        assert any("regression" in p for p in problems(
            revocation__regression_detected=False
        ))

    def test_torn_tail_costing_replicas_fails(self):
        assert any("torn" in p.lower() for p in problems(
            torn__recovered_replicas=1
        ))

    def test_torn_scenario_dropping_nothing_fails(self):
        assert any("scenario broken" in p for p in problems(
            torn__torn_bytes_dropped=0
        ))

    def test_accepted_tamper_fails(self):
        assert any("unproven bytes" in p for p in problems(
            tamper__failed_closed=False
        ))


class TestReportShape:
    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "BENCH_recovery.json"
        write_report(clean_report(), path)
        data = json.loads(path.read_text())
        assert data["replica_recovery"]["recovered_replicas"] == 2
        assert data["revocation_resume"]["refreshes_at_rejection"] == 0
        assert data["torn_tail"]["torn_bytes_dropped"] == 108
        assert data["tamper_fail_closed"]["failed_closed"] is True

    def test_render_marks_pass_and_fail(self):
        text = render_recovery(clean_report())
        assert "PASS" in text and "FAIL" not in text
        text = render_recovery(clean_report(tamper__failed_closed=False))
        assert "FAIL" in text

    def test_digest_appears_in_bench_summary(self, tmp_path):
        from repro.harness.report import (
            aggregate_bench_reports,
            render_bench_summary,
        )

        write_report(clean_report(), tmp_path / "BENCH_recovery.json")
        summary = render_bench_summary(aggregate_bench_reports(tmp_path))
        assert "Crash recovery" in summary
        assert "zero fail-open window" in summary

    def test_digest_absent_without_report(self):
        from repro.harness.report import render_recovery_section

        assert render_recovery_section({}) == ""
        assert render_recovery_section({"recovery": {"error": "boom"}}) == ""
