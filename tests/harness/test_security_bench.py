"""CI smoke test for the security-pipeline benchmark.

Runs the benchmark in ``--quick`` mode and enforces the fast path's two
contracts: a warm certificate verification is at least
``WARM_SPEEDUP_TARGET`` times faster than a cold one, and enabling the
fast path never makes the pipeline slower than the uncached baseline.
Real timing is involved, so the warm estimator is the min over warm
accesses (see security_bench) and a genuine regression — not jitter —
is what it takes to trip the assertions.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.security_bench import (
    WARM_SPEEDUP_TARGET,
    run_security_bench,
    write_report,
)


@pytest.fixture(scope="module")
def report():
    result = run_security_bench(quick=True)
    # One retry guards against a pathologically loaded CI machine; a
    # real fast-path regression fails both runs.
    criteria = result["criteria"]
    if not (criteria["warm_speedup_ok"] and criteria["fastpath_not_slower"]):
        result = run_security_bench(quick=True)
    return result


def test_report_structure(report):
    assert report["name"] == "security_pipeline"
    assert set(report) >= {"micro", "pipeline", "criteria"}
    micro = report["micro"]
    for key in (
        "rsa_verify_cold_us",
        "rsa_verify_cached_us",
        "canonical_encode_us",
        "wire_size_memo_us",
        "cert_roundtrip_cold_us",
        "cert_roundtrip_warm_us",
    ):
        assert micro[key] > 0.0


def test_micro_memos_actually_faster(report):
    micro = report["micro"]
    assert micro["rsa_cached_speedup"] > 1.0
    assert micro["encode_memo_speedup"] > 1.0
    assert micro["cert_warm_speedup"] > 1.0


def test_warm_verification_meets_speedup_target(report):
    criteria = report["criteria"]
    assert criteria["warm_speedup_target"] == WARM_SPEEDUP_TARGET
    assert criteria["warm_speedup"] >= WARM_SPEEDUP_TARGET, (
        f"warm certificate verification only "
        f"{criteria['warm_speedup']:.1f}x faster than cold "
        f"(target {WARM_SPEEDUP_TARGET}x)"
    )


def test_fastpath_never_slower_than_baseline(report):
    criteria = report["criteria"]
    assert criteria["fastpath_not_slower"], (
        f"fast-path run slower than uncached baseline: "
        f"{criteria['fastpath_total_ms']:.2f} ms vs "
        f"{criteria['baseline_total_ms']:.2f} ms per access"
    )


def test_fastpath_counters_flow_into_report(report):
    pipeline = report["pipeline"]
    # Baseline has no verification cache: no hits, nothing saved.
    assert pipeline["baseline"]["verify_hits"] == 0
    assert pipeline["baseline"]["saved_us"] == 0.0
    # Fast path: the first access misses, the rest hit.
    fast = pipeline["fastpath"]
    assert fast["verify_misses"] >= 1
    assert fast["verify_hits"] >= pipeline["accesses"] - 1
    assert fast["saved_us"] > 0.0
    assert fast["encode_hits"] > 0


def test_report_round_trips_as_json(report, tmp_path):
    out = tmp_path / "bench.json"
    write_report(report, out)
    loaded = json.loads(out.read_text())
    assert loaded["criteria"]["warm_speedup"] == pytest.approx(
        report["criteria"]["warm_speedup"]
    )
