"""Unit tests for security_bench internals — no real benchmarking.

The smoke test (test_security_bench.py) runs the bench for real; these
tests pin down the pieces that can silently rot without tripping it:
the best-of timing estimator, the per-run summarizer, the pass/fail
criteria gate, and the renderer's PASS/FAIL wording.
"""

from __future__ import annotations

import pytest

from repro.harness.security_bench import (
    WARM_SPEEDUP_TARGET,
    _best_of,
    _summarize_run,
    evaluate_criteria,
    render_security_bench,
)


class TestBestOf:
    def test_calls_fn_rounds_times_inner(self):
        calls = []
        assert _best_of(lambda: calls.append(None), inner=7, rounds=3) > 0.0
        assert len(calls) == 21

    def test_returns_microseconds_per_call(self):
        # A no-op costs well under a millisecond per call.
        cost_us = _best_of(lambda: None, inner=100, rounds=2)
        assert 0.0 < cost_us < 1000.0

    def test_takes_minimum_over_rounds(self):
        # First round is made artificially slow; the estimate must come
        # from a later (cheap) round, so it stays far below the spike.
        state = {"round_calls": 0}

        def fn():
            state["round_calls"] += 1
            if state["round_calls"] <= 5:  # only round 0 burns cycles
                sum(range(200_000))

        spike_us = _best_of(lambda: sum(range(200_000)), inner=1, rounds=1)
        best_us = _best_of(fn, inner=5, rounds=4)
        assert best_us < spike_us / 2


def make_row(total=10.0, security=4.0, hits=0.0, misses=1.0, saved=0.0):
    return {
        "total_ms": total,
        "security_ms": security,
        "verify_certificate_ms": security / 2,
        "verify_public_key_ms": security / 4,
        "verify_hits": hits,
        "verify_misses": misses,
        "encode_hits": hits,
        "saved_us": saved,
    }


class TestSummarizeRun:
    def test_means_and_sums(self):
        rows = [
            make_row(total=10.0, security=4.0, hits=0.0, misses=1.0, saved=0.0),
            make_row(total=6.0, security=2.0, hits=1.0, misses=0.0, saved=150.0),
        ]
        summary = _summarize_run(rows)
        assert summary["accesses"] == 2
        assert summary["total_ms_mean"] == pytest.approx(8.0)
        assert summary["security_ms_mean"] == pytest.approx(3.0)
        assert summary["verify_certificate_ms_mean"] == pytest.approx(1.5)
        assert summary["verify_public_key_ms_mean"] == pytest.approx(0.75)
        # Counters are totals, not means.
        assert summary["verify_hits"] == 1.0
        assert summary["verify_misses"] == 1.0
        assert summary["saved_us"] == 150.0

    def test_single_row(self):
        summary = _summarize_run([make_row(total=3.0)])
        assert summary["accesses"] == 1
        assert summary["total_ms_mean"] == pytest.approx(3.0)


def make_pipeline(warm_speedup=20.0, fastpath_total=5.0, baseline_total=9.0):
    return {
        "client": "canardo.inria.fr",
        "accesses": 10,
        "baseline": {"total_ms_mean": baseline_total},
        "fastpath": {"total_ms_mean": fastpath_total},
        "warm": {
            "cold_verify_certificate_ms": 2.0,
            "warm_verify_certificate_ms": 2.0 / warm_speedup,
            "warm_verify_certificate_mean_ms": 2.0 / warm_speedup,
            "speedup": warm_speedup,
        },
    }


class TestEvaluateCriteria:
    def test_passing_pipeline(self):
        criteria = evaluate_criteria(make_pipeline())
        assert criteria["warm_speedup_ok"] is True
        assert criteria["fastpath_not_slower"] is True
        assert criteria["warm_speedup_target"] == WARM_SPEEDUP_TARGET

    def test_slow_warm_path_fails_speedup_gate(self):
        criteria = evaluate_criteria(
            make_pipeline(warm_speedup=WARM_SPEEDUP_TARGET - 0.1)
        )
        assert criteria["warm_speedup_ok"] is False
        assert criteria["fastpath_not_slower"] is True

    def test_speedup_exactly_at_target_passes(self):
        criteria = evaluate_criteria(make_pipeline(warm_speedup=WARM_SPEEDUP_TARGET))
        assert criteria["warm_speedup_ok"] is True

    def test_fastpath_slower_than_baseline_fails(self):
        criteria = evaluate_criteria(
            make_pipeline(fastpath_total=9.5, baseline_total=9.0)
        )
        assert criteria["fastpath_not_slower"] is False
        assert criteria["fastpath_total_ms"] == 9.5
        assert criteria["baseline_total_ms"] == 9.0


def make_report(**pipeline_kwargs):
    pipeline = make_pipeline(**pipeline_kwargs)
    micro = {
        "rsa_verify_cold_us": 500.0,
        "rsa_verify_cached_us": 5.0,
        "rsa_cached_speedup": 100.0,
        "canonical_encode_us": 40.0,
        "wire_size_memo_us": 0.5,
        "encode_memo_speedup": 80.0,
        "element_hash_cold_us": 20.0,
        "element_hash_memo_us": 0.3,
        "cert_roundtrip_cold_us": 600.0,
        "cert_roundtrip_warm_us": 30.0,
        "cert_warm_speedup": 20.0,
    }
    return {
        "name": "security_pipeline",
        "quick": True,
        "micro": micro,
        "pipeline": pipeline,
        "criteria": evaluate_criteria(pipeline),
    }


class TestRenderSecurityBench:
    def test_passing_report_says_pass_twice(self):
        text = render_security_bench(make_report())
        assert text.count("PASS") == 2
        assert "FAIL" not in text
        assert "canardo.inria.fr" in text

    def test_failing_speedup_renders_fail(self):
        text = render_security_bench(make_report(warm_speedup=1.5))
        assert "FAIL" in text
        assert "1.5x" in text

    def test_slower_fastpath_renders_fail(self):
        text = render_security_bench(
            make_report(fastpath_total=9.5, baseline_total=9.0)
        )
        assert "fastpath not slower -> FAIL" in text
