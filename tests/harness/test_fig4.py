"""Figure 4 regeneration: the overhead curve's qualitative shape.

We do not assert the paper's absolute numbers (our substrate is a
simulator); we assert the *shape* claims of §4:

1. overhead is significant (~25 %) for small elements;
2. overhead decreases with element size for WAN clients;
3. at large sizes the LAN client (Amsterdam) has the *worst* overhead,
   because hashing dominates its tiny transfer time.
"""

from __future__ import annotations

import pytest

from repro.harness.fig4 import CLIENT_HOSTS, Fig4Row, rows_as_series, run_fig4
from repro.util.sizes import KB, MB


@pytest.fixture(scope="module")
def rows():
    # Small-but-representative subset for test runtime: ends of the curve.
    return run_fig4(repeats=3, sizes=[KB, 100 * KB, MB])


class TestShape:
    def test_all_points_present(self, rows):
        assert len(rows) == 3 * 3  # 3 clients x 3 sizes

    def test_small_element_overhead_significant(self, rows):
        """Paper: 'the overhead for transferring small page elements is
        significant (around 25%)'. Accept a generous band."""
        for row in rows:
            if row.size_bytes == KB:
                assert 15.0 <= row.overhead_percent <= 50.0, row

    def test_overhead_decreases_with_size(self, rows):
        series = rows_as_series(rows)
        for client, client_rows in series.items():
            overheads = [r.overhead_percent for r in client_rows]
            assert overheads[0] > overheads[-1], client

    def test_lan_worst_at_large_size(self, rows):
        """Paper: 'for large data transfers, the security overhead is
        worse when the proxy and the object replica are on the same
        LAN'."""
        at_1mb = {r.client: r.overhead_percent for r in rows if r.size_bytes == MB}
        assert at_1mb["Amsterdam"] > at_1mb["Paris"]
        assert at_1mb["Amsterdam"] > at_1mb["Ithaca"]

    def test_wan_overhead_drops_fast(self, rows):
        """Paper: in the Paris setting 'the security overhead drops quite
        rapidly for larger data transfers'."""
        series = rows_as_series(rows)
        paris = series["Paris"]
        assert paris[-1].overhead_percent < paris[0].overhead_percent / 3

    def test_security_time_grows_with_size(self, rows):
        """Hash time is proportional to data size, so absolute security
        time must grow while its share shrinks."""
        series = rows_as_series(rows)
        for client_rows in series.values():
            assert client_rows[-1].security_seconds > client_rows[0].security_seconds


class TestMechanics:
    def test_invalid_repeats(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_fig4(repeats=0)

    def test_row_labels(self, rows):
        assert {r.client for r in rows} == set(CLIENT_HOSTS)
        labels = {r.size_label for r in rows}
        assert "1KB" in labels and "1MB" in labels
