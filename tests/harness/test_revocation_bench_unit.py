"""Unit tests for the revocation bench internals.

The integration sweep runs in CI (``repro.harness revocation --quick``);
here the gate logic and report shape are pinned down with synthetic
data, so a regression names the exact rule it broke.
"""

from __future__ import annotations

import json

from repro.harness.revocation_bench import (
    CONTAINMENT_SLACK,
    OverheadPoint,
    ProxyContainment,
    RevocationReport,
    check_report,
    render_revocation,
    write_report,
)


def contained_proxy(
    host="canardo.inria.fr",
    max_staleness=20.0,
    containment_seconds=12.0,
    rejection_error="RevokedKeyError",
    **overrides,
) -> ProxyContainment:
    fields = dict(
        host=host,
        max_staleness=max_staleness,
        poll_interval=max_staleness / 2.0,
        contained=True,
        containment_seconds=containment_seconds,
        rejection_error=rejection_error,
        stale_serves=3,
        feed_refreshes=4,
    )
    fields.update(overrides)
    return ProxyContainment(**fields)


def overhead(enabled, mean=0.005, ok=30, refreshes=3) -> OverheadPoint:
    return OverheadPoint(
        enabled=enabled,
        accesses=30,
        ok=ok,
        mean_access_seconds=mean,
        p95_access_seconds=mean * 1.5,
        feed_refreshes=refreshes if enabled else 0,
    )


def clean_report() -> RevocationReport:
    return RevocationReport(
        seed=0,
        proxies=2,
        feed_sites_reached=["root/europe/vu"],
        containment=[
            contained_proxy(containment_seconds=9.0),
            contained_proxy(
                host="sporty.cs.vu.nl", max_staleness=30.0,
                containment_seconds=16.0,
            ),
        ],
        baseline=overhead(False, mean=0.005),
        enabled=overhead(True, mean=0.007),
    )


class TestGates:
    def test_clean_report_passes(self):
        assert check_report(clean_report()) == []

    def test_uncontained_proxy_flagged(self):
        report = clean_report()
        report.containment[0] = contained_proxy(
            contained=False, containment_seconds=-1.0, rejection_error=""
        )
        assert any("never contained" in p for p in check_report(report))

    def test_late_containment_flagged(self):
        report = clean_report()
        report.containment[0] = contained_proxy(
            containment_seconds=20.0 + CONTAINMENT_SLACK + 1.0
        )
        assert any("past its" in p for p in check_report(report))

    def test_wrong_rejection_error_flagged(self):
        report = clean_report()
        report.containment[0] = contained_proxy(
            rejection_error="AuthenticityError"
        )
        assert any("not RevokedKeyError" in p for p in check_report(report))

    def test_post_containment_serve_flagged(self):
        report = clean_report()
        report.containment[0] = contained_proxy(post_containment_ok=1)
        assert any("after containment" in p for p in check_report(report))

    def test_spurious_failures_flagged(self):
        report = clean_report()
        report.containment[0] = contained_proxy(other_failures=2)
        assert any("non-security failures" in p for p in check_report(report))

    def test_overhead_ratio_gated(self):
        report = clean_report()
        report.enabled = overhead(True, mean=0.013)  # 2.6× the baseline
        assert any("overhead ratio" in p for p in check_report(report))

    def test_idle_feed_not_steady_state(self):
        report = clean_report()
        report.enabled = overhead(True, mean=0.007, refreshes=1)
        assert any("steady-state" in p for p in check_report(report))

    def test_failing_schedules_flagged(self):
        report = clean_report()
        report.baseline = overhead(False, ok=29)
        assert any("baseline schedule" in p for p in check_report(report))


class TestReportShape:
    def test_to_dict_summarises_percentiles(self):
        data = clean_report().to_dict()
        summary = data["containment_summary"]
        assert summary["contained"] == 2 and summary["proxies"] == 2
        assert summary["p50_seconds"] == 12.5
        assert summary["max_seconds"] == 16.0
        assert data["overhead_ratio"] == 1.4
        json.dumps(data)  # wire-clean

    def test_empty_containment_summary(self):
        report = RevocationReport(seed=0, proxies=0, feed_sites_reached=[])
        data = report.to_dict()
        assert data["containment_summary"] == {"contained": 0, "proxies": 0}
        assert data["overhead_ratio"] == 0.0

    def test_write_report_roundtrips(self, tmp_path):
        path = tmp_path / "BENCH_revocation.json"
        write_report(clean_report(), path)
        assert json.loads(path.read_text())["proxies"] == 2

    def test_render_names_every_proxy(self):
        report = clean_report()
        report.containment.append(
            contained_proxy(
                host="ensamble02.cornell.edu", contained=False,
                containment_seconds=-1.0, rejection_error="",
            )
        )
        out = render_revocation(report)
        assert "canardo.inria.fr" in out and "sporty.cs.vu.nl" in out
        assert "NOT CONTAINED" in out
        assert "steady-state overhead" in out
