"""Report rendering."""

from __future__ import annotations

from repro.harness.fig4 import Fig4Row
from repro.harness.fig567 import Fig567Row
from repro.harness.report import render_fig4, render_fig567, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["A", "Blong"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)


def fig4_row(client, size, pct):
    return Fig4Row(
        client=client,
        size_bytes=size,
        overhead_percent=pct,
        security_seconds=0.01,
        total_seconds=0.05,
        repeats=1,
    )


class TestRenderFig4:
    def test_contains_series(self):
        rows = [
            fig4_row("Amsterdam", 1024, 25.0),
            fig4_row("Paris", 1024, 24.0),
            fig4_row("Amsterdam", 1024 * 1024, 10.0),
            fig4_row("Paris", 1024 * 1024, 5.0),
        ]
        out = render_fig4(rows)
        assert "Figure 4" in out
        assert "Amsterdam" in out and "Paris" in out
        assert "1KB" in out and "1MB" in out
        assert "25.0%" in out


class TestRenderFig567:
    def test_one_client_table(self):
        rows = [
            Fig567Row(
                client="Paris",
                object_label="obj (15KB)",
                total_bytes=15 * 1024,
                scheme=scheme,
                seconds=0.1,
                repeats=1,
            )
            for scheme in ("globedoc", "http", "ssl")
        ]
        out = render_fig567(rows, "Paris")
        assert "Figure 6" in out
        assert "globedoc" in out and "http" in out and "ssl" in out
        assert "100.0 ms" in out


class TestBenchAggregation:
    """Report discovery is by glob: any BENCH_*.json shows up, corrupt
    ones loudly."""

    def test_discovers_and_keys_by_name(self, tmp_path):
        from repro.harness.report import aggregate_bench_reports

        (tmp_path / "BENCH_revocation.json").write_text('{"proxies": 3}')
        (tmp_path / "BENCH_chaos.json").write_text('{"points": []}')
        (tmp_path / "unrelated.json").write_text("{}")
        reports = aggregate_bench_reports(tmp_path)
        assert sorted(reports) == ["chaos", "revocation"]
        assert reports["revocation"] == {"proxies": 3}

    def test_corrupt_report_surfaces_as_error(self, tmp_path):
        from repro.harness.report import aggregate_bench_reports

        (tmp_path / "BENCH_broken.json").write_text("{not json")
        reports = aggregate_bench_reports(tmp_path)
        assert "JSONDecodeError" in reports["broken"]["error"]

    def test_empty_directory(self, tmp_path):
        from repro.harness.report import (
            aggregate_bench_reports,
            render_bench_summary,
        )

        reports = aggregate_bench_reports(tmp_path)
        assert reports == {}
        assert "no BENCH_" in render_bench_summary(reports)

    def test_summary_renders_status_per_bench(self, tmp_path):
        from repro.harness.report import (
            aggregate_bench_reports,
            render_bench_summary,
        )

        (tmp_path / "BENCH_revocation.json").write_text(
            '{"containment": [], "overhead_ratio": 1.4}'
        )
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        out = render_bench_summary(aggregate_bench_reports(tmp_path))
        assert "revocation" in out and "ok" in out
        assert "broken" in out and "unreadable" in out
        assert "containment" in out  # section listing


class TestConvergenceSection:
    """The bench-report digest of BENCH_convergence.json."""

    def section(self, report: dict) -> str:
        from repro.harness.report import render_convergence_section

        return render_convergence_section({"convergence": report})

    def test_absent_report_renders_nothing(self):
        from repro.harness.report import render_convergence_section

        assert render_convergence_section({}) == ""
        assert render_convergence_section({"convergence": {"error": "x"}}) == ""

    def test_full_report_digest(self):
        out = self.section(
            {
                "partitioned_convergence": {
                    "writers": 5, "rounds": 4, "deltas": 20,
                    "gossip_pulled": 8, "gossip_pushed": 12,
                    "server_digests": {"a": "d1", "b": "d1"},
                    "reader_digests": {"a": "d1", "b": "d1"},
                    "byte_identical": True,
                },
                "merge_cost": {"deltas": 20, "samples": 100,
                               "p50_us": 129.0, "p99_us": 197.0},
                "adversarial": [{"ok": True}, {"ok": True}],
                "recovery": {"deltas_published": 5, "recovered_deltas": 5,
                             "tamper_failed_closed": True,
                             "tamper_error": "RecoveryIntegrityError"},
            }
        )
        assert "byte-identical" in out
        assert "p50 129 us" in out
        assert "2/2 scenarios rejected fail-closed" in out
        assert "RecoveryIntegrityError" in out

    def test_divergence_and_tamper_acceptance_shout(self):
        out = self.section(
            {
                "partitioned_convergence": {
                    "byte_identical": False,
                    "server_digests": {"a": "d1", "b": "d2"},
                    "reader_digests": {},
                },
                "recovery": {"tamper_failed_closed": False},
            }
        )
        assert "DIVERGED" in out
        assert "ACCEPTED TAMPERED BYTES" in out

    def test_partial_report_tolerated(self):
        assert self.section({"merge_cost": {"p50_us": 1.0}}) != ""
        assert self.section({}) == ""
