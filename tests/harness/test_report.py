"""Report rendering."""

from __future__ import annotations

from repro.harness.fig4 import Fig4Row
from repro.harness.fig567 import Fig567Row
from repro.harness.report import render_fig4, render_fig567, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["A", "Blong"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)


def fig4_row(client, size, pct):
    return Fig4Row(
        client=client,
        size_bytes=size,
        overhead_percent=pct,
        security_seconds=0.01,
        total_seconds=0.05,
        repeats=1,
    )


class TestRenderFig4:
    def test_contains_series(self):
        rows = [
            fig4_row("Amsterdam", 1024, 25.0),
            fig4_row("Paris", 1024, 24.0),
            fig4_row("Amsterdam", 1024 * 1024, 10.0),
            fig4_row("Paris", 1024 * 1024, 5.0),
        ]
        out = render_fig4(rows)
        assert "Figure 4" in out
        assert "Amsterdam" in out and "Paris" in out
        assert "1KB" in out and "1MB" in out
        assert "25.0%" in out


class TestRenderFig567:
    def test_one_client_table(self):
        rows = [
            Fig567Row(
                client="Paris",
                object_label="obj (15KB)",
                total_bytes=15 * 1024,
                scheme=scheme,
                seconds=0.1,
                repeats=1,
            )
            for scheme in ("globedoc", "http", "ssl")
        ]
        out = render_fig567(rows, "Paris")
        assert "Figure 6" in out
        assert "globedoc" in out and "http" in out and "ssl" in out
        assert "100.0 ms" in out
