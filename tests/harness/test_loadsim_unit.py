"""Unit-level load-simulator behaviour (the report math and wiring)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.harness.loadsim import LoadedRequest, LoadReport, LoadSimulator
from repro.workloads.trace import RequestEvent


def loaded(time, site, arrival, started, completed, ok=True):
    return LoadedRequest(
        event=RequestEvent(time=time, document="d", site=site),
        arrival=arrival,
        started=started,
        completed=completed,
        ok=ok,
    )


class TestLoadedRequest:
    def test_timing_decomposition(self):
        request = loaded(0.0, "s", arrival=10.0, started=12.0, completed=15.0)
        assert request.wait == pytest.approx(2.0)
        assert request.service == pytest.approx(3.0)
        assert request.latency == pytest.approx(5.0)

    def test_no_wait(self):
        request = loaded(0.0, "s", arrival=10.0, started=10.0, completed=11.0)
        assert request.wait == 0.0
        assert request.latency == request.service


class TestLoadReport:
    def make(self):
        return LoadReport(
            requests=[
                loaded(0.0, "a", 0.0, 0.0, 1.0),
                loaded(5.0, "a", 5.0, 6.0, 7.0),
                loaded(10.0, "b", 10.0, 10.0, 10.5, ok=False),
            ]
        )

    def test_counts(self):
        report = self.make()
        assert report.count == 3
        assert report.failures == 1

    def test_site_filter(self):
        report = self.make()
        assert report.latency_summary(site="a").count == 2
        assert report.latency_summary(site="b").count == 1

    def test_window_filter(self):
        report = self.make()
        summary = report.latency_summary(start=4.0, end=11.0)
        assert summary.count == 2

    def test_empty_filter_raises(self):
        with pytest.raises(ReproError):
            self.make().latency_summary(site="ghost")

    def test_max_wait(self):
        assert self.make().max_wait == pytest.approx(1.0)


class TestSimulatorWiring:
    def test_unknown_site_rejected(self):
        from repro.harness.experiment import Testbed

        testbed = Testbed()
        simulator = LoadSimulator(testbed, url_of=lambda e: "globe://x/y")
        trace = [RequestEvent(time=0.0, document="d", site="root/mars")]
        with pytest.raises(ReproError, match="no client host"):
            simulator.run(trace)

    def test_proxies_shared_per_site(self):
        from repro.harness.experiment import Testbed

        testbed = Testbed()
        simulator = LoadSimulator(testbed, url_of=lambda e: "http://x/y")
        a = simulator._proxy_for("root/europe/vu")
        b = simulator._proxy_for("root/europe/vu")
        assert a is b
        assert a.session_ttl == simulator.location_ttl
