"""Unit tests for the convergence bench internals.

The partition/heal sweep itself runs in CI (``repro.harness convergence
--quick``); here the gate logic and report shape are pinned down with
synthetic data, so a regression names the exact rule it broke.
"""

from __future__ import annotations

import json

from repro.harness.convergence import (
    ConvergenceReport,
    MergeCost,
    PartitionedConvergence,
    RecoveryGate,
    check_report,
    render_convergence,
    write_report,
)


def clean_verdict(scenario="forged_delta", **overrides) -> dict:
    verdict = {
        "scenario": scenario,
        "expected_error": "DeltaForgeryError",
        "failure_type": "DeltaForgeryError",
        "detected": True,
        "exact_error": True,
        "unverified_bytes_leaked": False,
        "span_ok": True,
        "ok": True,
    }
    verdict.update(overrides)
    return verdict


def clean_report(**overrides) -> ConvergenceReport:
    report = ConvergenceReport(
        seed=0,
        quick=True,
        partitioned=PartitionedConvergence(
            writers=3,
            rounds=2,
            deltas=6,
            gossip_pulled=2,
            gossip_pushed=4,
            server_digests={"a": "d1", "b": "d1"},
            reader_digests={"a": "d1", "b": "d1"},
            byte_identical=True,
            elements=3,
        ),
        merge=MergeCost(deltas=6, samples=20, p50_us=100.0, p99_us=150.0),
        adversarial=[clean_verdict()],
        recovery=RecoveryGate(
            deltas_published=3,
            recovered_deltas=3,
            reverified_deltas=3,
            recovered_grants=3,
            digest_intact=True,
            frontier_cert_recovered=True,
            tamper_failed_closed=True,
            tamper_error="RecoveryIntegrityError",
        ),
    )
    for key, value in overrides.items():
        setattr(report, key, value)
    return report


class TestGates:
    def test_clean_report_passes(self):
        assert check_report(clean_report()) == []

    def test_divergence_fails(self):
        report = clean_report()
        report.partitioned.byte_identical = False
        assert any("diverged" in p.lower() for p in check_report(report))

    def test_missing_gossip_fails(self):
        report = clean_report()
        report.partitioned.gossip_pulled = 0
        report.partitioned.gossip_pushed = 0
        assert any("gossip" in p for p in check_report(report))

    def test_empty_adversarial_matrix_fails(self):
        assert any(
            "adversarial" in p for p in check_report(clean_report(adversarial=[]))
        )

    def test_leaked_bytes_fail(self):
        report = clean_report(
            adversarial=[clean_verdict(unverified_bytes_leaked=True)]
        )
        assert any("attacker bytes" in p for p in check_report(report))

    def test_wrong_error_class_fails(self):
        report = clean_report(
            adversarial=[
                clean_verdict(
                    failure_type="SecurityError", exact_error=False, ok=False
                )
            ]
        )
        assert any("forged_delta" in p for p in check_report(report))

    def test_lost_delta_fails(self):
        report = clean_report()
        report.recovery.recovered_deltas = 2
        assert any("lost deltas" in p for p in check_report(report))

    def test_unreverified_recovery_fails(self):
        report = clean_report()
        report.recovery.reverified_deltas = 0
        assert any("re-verified" in p for p in check_report(report))

    def test_accepted_tamper_fails(self):
        report = clean_report()
        report.recovery.tamper_failed_closed = False
        assert any("tamper" in p.lower() for p in check_report(report))

    def test_changed_digest_fails(self):
        report = clean_report()
        report.recovery.digest_intact = False
        assert any("different bytes" in p for p in check_report(report))


class TestRendering:
    def test_render_shows_all_scenarios(self):
        out = render_convergence(clean_report())
        for label in (
            "partitioned convergence", "merge cost", "adversarial matrix",
            "crash recovery", "PASS",
        ):
            assert label in out

    def test_render_marks_failures(self):
        report = clean_report()
        report.partitioned.byte_identical = False
        report.recovery.tamper_failed_closed = False
        out = render_convergence(report)
        assert "DIVERGED" in out and "FAIL" in out

    def test_report_roundtrips_as_json(self, tmp_path):
        path = tmp_path / "BENCH_convergence.json"
        write_report(clean_report(), path)
        data = json.loads(path.read_text())
        assert data["partitioned_convergence"]["byte_identical"] is True
        assert data["recovery"]["tamper_error"] == "RecoveryIntegrityError"
        assert data["adversarial"][0]["scenario"] == "forged_delta"
