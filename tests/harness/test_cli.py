"""The ``python -m repro.harness`` command-line interface."""

from __future__ import annotations

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "ginger.cs.vu.nl" in out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Amsterdam" in out and "Paris" in out and "Ithaca" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "globedoc" in out and "ssl" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_seed_changes_nothing_structural(self, capsys):
        assert main(["fig4", "--repeats", "1", "--seed", "7"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_chaos_quick_passes_gates(self, capsys, tmp_path):
        out_path = tmp_path / "chaos.json"
        assert main(["chaos", "--quick", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "all resilience gates passed" in out
        assert out_path.exists()

    def test_recovery_quick_passes_gates(self, capsys, tmp_path):
        out_path = tmp_path / "recovery.json"
        assert main(["recovery", "--quick", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Recovery bench" in out
        assert "all recovery gates passed" in out
        assert out_path.exists()

    def test_convergence_quick_passes_gates(self, capsys, tmp_path):
        out_path = tmp_path / "convergence.json"
        assert main(["convergence", "--quick", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Convergence bench" in out
        assert "all convergence gates passed" in out
        assert out_path.exists()

    def test_convergence_gate_failure_exits_nonzero(
        self, capsys, tmp_path, monkeypatch
    ):
        """A red gate must fail the process (that is what CI keys on)."""
        import repro.harness.convergence as convergence

        def diverged(quick=False, seed=0):
            report = convergence.ConvergenceReport(seed=seed, quick=quick)
            report.partitioned.byte_identical = False
            return report

        monkeypatch.setattr(convergence, "run_convergence", diverged)
        out_path = tmp_path / "convergence.json"
        assert main(["convergence", "--quick", "--out", str(out_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL:" in out and "diverged" in out
        assert out_path.exists()  # the report is written even on failure
