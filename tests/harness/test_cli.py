"""The ``python -m repro.harness`` command-line interface."""

from __future__ import annotations

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "ginger.cs.vu.nl" in out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Amsterdam" in out and "Paris" in out and "Ithaca" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "globedoc" in out and "ssl" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_seed_changes_nothing_structural(self, capsys):
        assert main(["fig4", "--repeats", "1", "--seed", "7"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_chaos_quick_passes_gates(self, capsys, tmp_path):
        out_path = tmp_path / "chaos.json"
        assert main(["chaos", "--quick", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "all resilience gates passed" in out
        assert out_path.exists()

    def test_recovery_quick_passes_gates(self, capsys, tmp_path):
        out_path = tmp_path / "recovery.json"
        assert main(["recovery", "--quick", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Recovery bench" in out
        assert "all recovery gates passed" in out
        assert out_path.exists()
