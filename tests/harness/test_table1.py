"""Table 1 rendering."""

from __future__ import annotations

from repro.harness.report import render_table
from repro.harness.table1 import TABLE1_COLUMNS, table1_rows


class TestTable1:
    def test_four_rows(self):
        assert len(table1_rows()) == 4

    def test_paper_facts(self):
        rendered = render_table(TABLE1_COLUMNS, table1_rows())
        for fact in (
            "ginger.cs.vu.nl",
            "sporty.cs.vu.nl",
            "canardo.inria.fr",
            "ensamble02.cornell.edu",
            "VU, Amsterdam",
            "Inria, Paris",
            "Cornell, Ithaca NY",
            "2 GB",
            "256 MB",
            "UltraSPARC-IIi 450MHz",
        ):
            assert fact in rendered, fact

    def test_column_count_consistent(self):
        for row in table1_rows():
            assert len(row) == len(TABLE1_COLUMNS)
