"""The trace-profile harness: span coverage, rejection census, gates.

Runs the quick workload once (module-scoped — it replays ~40 accesses)
and asserts the report satisfies its own CI gates, plus the structural
claims the gates rest on: every instrumented layer produced spans, each
adversarial probe was rejected by the right check, and the summed
``proxy.handle`` span time reproduces the summed access metrics.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.__main__ import main
from repro.harness.trace_profile import (
    CONSISTENCY_TOLERANCE,
    EXPECTED_REJECTIONS,
    EXPECTED_SPANS,
    check_report,
    render_trace,
    run_trace,
    write_report,
)


@pytest.fixture(scope="module")
def report():
    return run_trace(quick=True)


def test_all_gates_pass(report):
    assert check_report(report) == []
    assert report["criteria"]["problems"] == []


def test_every_instrumented_layer_produced_spans(report):
    phases = report["phases"]
    for name in EXPECTED_SPANS:
        assert name in phases, f"missing span {name!r}"
        assert phases[name]["count"] > 0
        assert phases[name]["p50_s"] <= phases[name]["p95_s"] <= phases[name]["max_s"]


def test_honest_workload_fully_succeeds(report):
    workload = report["workload"]
    assert workload["honest_ok"] == workload["honest_requests"]


def test_rejection_census_matches_probes(report):
    rejections = report["security_rejections"]
    for span_name, error_type in EXPECTED_REJECTIONS.items():
        assert error_type in rejections.get(span_name, {}), (
            f"{span_name} did not reject with {error_type}: {rejections}"
        )
    assert set(report["workload"]["probes"].values()) == {
        "AuthenticityError", "ConsistencyError", "FreshnessError"
    }


def test_span_time_reproduces_access_metrics(report):
    consistency = report["consistency"]
    assert consistency["metrics_total_s"] > 0.0
    assert abs(consistency["ratio"] - 1.0) <= CONSISTENCY_TOLERANCE


def test_slowest_spans_are_valid_span_dicts(report):
    slowest = report["slowest_spans"]
    assert slowest
    for span in slowest:
        assert span["end"] >= span["start"]
    durations = [s["end"] - s["start"] for s in slowest]
    assert durations == sorted(durations, reverse=True)


def test_render_mentions_spans_and_rejections(report):
    text = render_trace(report)
    assert "proxy.handle" in text
    assert "check.element_hash" in text
    assert "AuthenticityError" in text
    assert "ratio" in text


def test_report_round_trips_as_json(report, tmp_path):
    out = tmp_path / "trace.json"
    write_report(report, out)
    loaded = json.loads(out.read_text())
    assert loaded["name"] == "trace_profile"
    assert loaded["criteria"]["problems"] == []


class TestCli:
    def test_trace_quick_passes_gates(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "--quick", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Trace profile" in out
        assert out_path.exists()
        loaded = json.loads(out_path.read_text())
        assert loaded["criteria"]["problems"] == []
