"""Figures 5–7 regeneration: who wins, by roughly what factor."""

from __future__ import annotations

import pytest

from repro.harness.fig567 import (
    FIGURE_OF_CLIENT,
    Fig567Row,
    run_fig567_for_client,
)


@pytest.fixture(scope="module")
def amsterdam_rows():
    return run_fig567_for_client("Amsterdam", repeats=2)


@pytest.fixture(scope="module")
def paris_rows():
    return run_fig567_for_client("Paris", repeats=2)


def by_scheme(rows, object_label):
    return {
        r.scheme: r.seconds for r in rows if r.object_label == object_label
    }


def object_labels(rows):
    return sorted({r.object_label for r in rows}, key=lambda label: next(
        r.total_bytes for r in rows if r.object_label == label
    ))


class TestOrdering:
    def test_all_cells_present(self, amsterdam_rows):
        assert len(amsterdam_rows) == 3 * 3  # 3 objects x 3 schemes

    def test_globedoc_between_http_and_ssl(self, amsterdam_rows):
        """The headline comparison: GlobeDoc costs more than bare HTTP
        (it does real verification) but less than per-connection SSL."""
        for label in object_labels(amsterdam_rows):
            times = by_scheme(amsterdam_rows, label)
            assert times["http"] < times["globedoc"] < times["ssl"], label

    def test_globedoc_close_to_http(self, amsterdam_rows, paris_rows):
        """Paper: 'our proxy/object server combination performs quite
        similar to the compiled C Apache code' — within a small factor."""
        for rows in (amsterdam_rows, paris_rows):
            for label in object_labels(rows):
                times = by_scheme(rows, label)
                assert times["globedoc"] < 2.5 * times["http"], label

    def test_relative_gap_shrinks_with_size(self, paris_rows):
        """For bigger objects the security exchange amortises: the
        GlobeDoc/HTTP ratio for the 1005 KB object is below the 15 KB
        object's ratio."""
        labels = object_labels(paris_rows)
        small = by_scheme(paris_rows, labels[0])
        large = by_scheme(paris_rows, labels[-1])
        assert (
            large["globedoc"] / large["http"] < small["globedoc"] / small["http"]
        )

    def test_times_grow_with_object_size(self, paris_rows):
        for scheme in ("globedoc", "http", "ssl"):
            times = [
                r.seconds for r in sorted(paris_rows, key=lambda r: r.total_bytes)
                if r.scheme == scheme
            ]
            assert times == sorted(times), scheme


class TestMechanics:
    def test_figure_numbers(self, amsterdam_rows):
        assert all(r.figure == 5 for r in amsterdam_rows)
        assert FIGURE_OF_CLIENT == {"Amsterdam": 5, "Paris": 6, "Ithaca": 7}

    def test_unknown_client_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_fig567_for_client("Tokyo")

    def test_unknown_scheme_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_fig567_for_client("Amsterdam", schemes=["carrier-pigeon"])
