"""Load simulation: saturation under a flash crowd, relief with
dynamic replication — §1's motivation, measured."""

from __future__ import annotations

import pytest

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.harness.loadsim import LoadSimulator
from repro.location.service import LocationClient
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.replication.coordinator import ReplicationCoordinator, SitePort
from repro.replication.policy import RequestObservation
from repro.replication.strategies import HotspotReplication, NoReplication
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from repro.workloads.trace import RequestEvent, TraceConfig, generate_trace, inject_flash_crowd
from tests.conftest import fast_keys

CROWD_SITE = "root/us/cornell"


def build_world(policy_factory):
    from repro.naming.records import OidRecord

    testbed = Testbed()
    owner = DocumentOwner("vu.nl/hot", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"<html>hot page</html>" * 50))
    document = owner.publish(validity=7200)
    # Register naming only — the coordinator owns replica placement.
    testbed.object_server.keystore.authorize("owner", owner.public_key)
    testbed.naming.register(OidRecord(name=owner.name, oid=owner.oid))

    cornell = ObjectServer(
        host="ensamble02.cornell.edu", site=CROWD_SITE, clock=testbed.clock
    )
    cornell.keystore.authorize("owner", owner.public_key)
    testbed.network.register(
        Endpoint("ensamble02.cornell.edu", "objectserver"),
        cornell.rpc_server().handle_frame,
    )

    rpc = RpcClient(testbed.network.transport_for("sporty.cs.vu.nl"))
    coordinator = ReplicationCoordinator(
        LocationClient(rpc, testbed.location_endpoint, "root/europe/vu", clock=testbed.clock)
    )
    coordinator.add_site(
        SitePort(
            site="root/europe/vu",
            admin=AdminClient(rpc, testbed.objectserver_endpoint, owner.keys, testbed.clock),
        )
    )
    coordinator.add_site(
        SitePort(
            site=CROWD_SITE,
            admin=AdminClient(
                rpc, Endpoint("ensamble02.cornell.edu", "objectserver"),
                owner.keys, testbed.clock,
            ),
        )
    )
    policy = policy_factory()
    coordinator.manage(owner, document, policy, home_site="root/europe/vu")
    return testbed, owner, coordinator


def crowd_trace(owner_name: str):
    config = TraceConfig(
        documents=(owner_name,),
        sites=("root/europe/vu", CROWD_SITE),
        duration=120.0,
        rate=0.2,
        seed=5,
    )
    return inject_flash_crowd(
        generate_trace(config),
        document=owner_name,
        site=CROWD_SITE,
        start=30.0,
        duration=30.0,
        rate=20.0,
        seed=6,
    )


def run_load(policy_factory):
    testbed, owner, coordinator = build_world(policy_factory)
    trace = crowd_trace(owner.name)
    simulator = LoadSimulator(
        testbed, url_of=lambda e: f"globe://{e.document}!/index.html"
    )

    def feedback(event: RequestEvent) -> None:
        coordinator.observe_request(
            owner.oid,
            RequestObservation(site=event.site, time=testbed.clock.now()),
        )

    report = simulator.run(trace, on_request=feedback)
    return report, coordinator, owner


class TestLoadSimulation:
    def test_all_requests_served_genuine(self):
        report, _, _ = run_load(NoReplication)
        assert report.count > 100
        assert report.failures == 0

    def test_crowd_saturates_single_server(self):
        """Without replication, crowd-phase latency at Cornell is far
        above the quiet-phase latency (queue build-up)."""
        report, _, _ = run_load(NoReplication)
        quiet = report.latency_summary(site=CROWD_SITE, start=0.0, end=30.0)
        crowd = report.latency_summary(site=CROWD_SITE, start=40.0, end=60.0)
        assert crowd.mean > 3 * quiet.mean
        assert report.max_wait > 0.5

    def test_hotspot_replication_relieves_crowd(self):
        """With the hotspot policy in the loop, the crowd triggers a
        local replica and late-crowd latency collapses."""
        report, coordinator, owner = run_load(
            lambda: HotspotReplication(create_rate=1.0, destroy_rate=0.01, window=15.0)
        )
        managed = coordinator.document(owner.oid)
        # The replica was pushed during the crowd (and legitimately
        # retired once the crowd subsided — dynamic in both directions).
        assert managed.placements >= 2
        assert managed.removals <= managed.placements - 1

        no_repl_report, _, _ = run_load(NoReplication)
        with_tail = report.latency_summary(site=CROWD_SITE, start=45.0, end=60.0)
        without_tail = no_repl_report.latency_summary(
            site=CROWD_SITE, start=45.0, end=60.0
        )
        assert with_tail.mean < without_tail.mean / 2

    def test_report_filters(self):
        report, _, _ = run_load(NoReplication)
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            report.latency_summary(site="root/mars")
