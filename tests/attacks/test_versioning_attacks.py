"""Multi-writer attack matrix: every tamper mode rejected fail-closed.

One scenario per multi-writer failure mode — forged delta content,
self-appointed writer, revoked writer, withheld branch, cross-object
replay — each asserting the *exact* ``SecurityError`` subclass, zero
attacker bytes reaching the caller or the cache, and the rejection
attributed to the ``check.frontier`` span in the trace.
"""

from __future__ import annotations

import pytest

from repro.attacks.scenarios import (
    VERSIONING_SCENARIOS,
    build_versioning_world,
    run_versioning_matrix,
    run_versioning_scenario,
)
from tests.conftest import fast_keys


@pytest.mark.parametrize(
    "scenario", VERSIONING_SCENARIOS, ids=[s.id for s in VERSIONING_SCENARIOS]
)
def test_scenario_rejected_fail_closed(scenario):
    verdict = run_versioning_scenario(scenario, key_factory=fast_keys)
    assert verdict["detected"], f"{scenario.id}: attack was not detected"
    assert verdict["exact_error"], (
        f"{scenario.id}: expected {verdict['expected_error']}, "
        f"got {verdict['failure_type']}"
    )
    assert not verdict["unverified_bytes_leaked"], (
        f"{scenario.id}: attacker bytes reached the caller or the cache"
    )
    assert verdict["span_ok"], (
        f"{scenario.id}: rejection not attributed to the expected span"
    )
    assert verdict["ok"]


def test_matrix_covers_every_scenario():
    verdicts = run_versioning_matrix(key_factory=fast_keys)
    assert [v["scenario"] for v in verdicts] == [s.id for s in VERSIONING_SCENARIOS]


def test_honest_world_reads_clean():
    """The matrix baseline itself: with no deploy, the read verifies and
    serves the genuine merged elements."""
    from repro.attacks.scenarios import VERSIONING_ELEMENTS

    world = build_versioning_world(key_factory=fast_keys)
    access = world.reader.read(world.server.endpoint, world.oid)
    for name, content in VERSIONING_ELEMENTS.items():
        assert access.merged.elements[name].content == content
