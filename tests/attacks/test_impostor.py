"""Content masquerading via an impostor replica (secure naming, §3.1):
a replica serving a different object's key and state can never pass as
the requested object because the OID is self-certifying."""

from __future__ import annotations

import pytest

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_server import ImpostorBehavior
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from tests.conftest import fast_keys
from tests.attacks.conftest import ELEMENTS


@pytest.fixture
def impostor_doc(testbed):
    owner = DocumentOwner("evil.example/fake", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"<html>masquerade</html>"))
    return owner.publish(validity=3600)


class TestImpostor:
    def test_impostor_key_rejected(
        self, deploy_malicious, paris_stack, victim, impostor_doc
    ):
        """The impostor's public key does not hash to the requested OID;
        the binding fails over (here: to the genuine VU replica)."""
        deploy_malicious(ImpostorBehavior(impostor_doc))
        probe = run_attack_probe(
            paris_stack.proxy, victim.url("index.html"), ELEMENTS["index.html"]
        )
        # With the genuine replica still registered, failover recovers.
        assert probe.outcome is AttackOutcome.SERVED_GENUINE
        assert probe.response.content != b"<html>masquerade</html>"

    def test_impostor_content_never_accepted(
        self, testbed, deploy_malicious, victim, impostor_doc
    ):
        """Even when the impostor is the *only* reachable replica, its
        content is never rendered as the victim document."""
        deploy_malicious(ImpostorBehavior(impostor_doc))
        # Remove the genuine replica from the location service entirely.
        site = "root/europe/vu"
        for address in testbed.location_service.tree.addresses_at(
            victim.owner.oid.hex, site
        ):
            testbed.location_service.tree.delete(victim.owner.oid.hex, site, address)
        stack = testbed.client_stack("canardo.inria.fr")
        probe = run_attack_probe(stack.proxy, victim.url("index.html"), ELEMENTS["index.html"])
        assert probe.outcome in (
            AttackOutcome.DETECTED,
            AttackOutcome.DENIAL_OF_SERVICE,
        )
        assert b"masquerade" not in probe.response.content
