"""Attack test wiring: a testbed where the location service can be made
to point at a malicious replica of a published document."""

from __future__ import annotations

import pytest

from repro.attacks.malicious_server import MaliciousReplica
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.net.address import Endpoint
from tests.conftest import fast_keys

ELEMENTS = {
    "index.html": b"<html>genuine news story</html>",
    "retraction.html": b"<html>retraction of the story</html>",
}

EVIL_HOST = "canardo.inria.fr"  # the attacker controls the Paris host


@pytest.fixture
def testbed():
    return Testbed()


@pytest.fixture
def victim(testbed):
    """A published document with a second (yet honest) owner state kept
    around so attacks can serve stale versions."""
    owner = DocumentOwner("vu.nl/news", keys=fast_keys(), clock=testbed.clock)
    for name, content in ELEMENTS.items():
        owner.put_element(PageElement(name, content))
    published = testbed.publish(owner, validity=3600)
    return published


@pytest.fixture
def deploy_malicious(testbed, victim):
    """Factory: host a MaliciousReplica for the victim document at the
    attacker host and register it in the location service at the
    client's own site (so it is found *first* in the expanding ring)."""

    def deploy(behavior, site: str = "root/europe/inria") -> MaliciousReplica:
        replica = MaliciousReplica(
            host=EVIL_HOST, document=victim.document, behavior=behavior
        )
        testbed.network.register(
            Endpoint(EVIL_HOST, "objectserver"), replica.rpc_server().handle_frame
        )
        testbed.location_service.tree.insert(
            victim.owner.oid.hex, site, replica.contact_address()
        )
        return replica

    return deploy


@pytest.fixture
def paris_stack(testbed, victim):
    """A client at the attacker's site — its expanding-ring lookup finds
    the malicious replica before the genuine Amsterdam one."""
    return testbed.client_stack(EVIL_HOST)
