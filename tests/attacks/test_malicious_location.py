"""The lying Location Service (§3.1.2, §3.3): "the most harm a malicious
Location Service server can do is a temporary denial of service"."""

from __future__ import annotations

import pytest

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_location import LyingLocationService
from repro.attacks.malicious_server import ImpostorBehavior, MaliciousReplica
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.net.address import Endpoint
from tests.conftest import fast_keys
from tests.attacks.conftest import ELEMENTS


@pytest.fixture
def lying_testbed(testbed, victim):
    """Swap the genuine location service for a lying one that redirects
    lookups of the victim OID to an impostor replica (a different object
    entirely, served from the attacker's host)."""
    impostor_owner = DocumentOwner(
        "evil.example/fake", keys=fast_keys(), clock=testbed.clock
    )
    impostor_owner.put_element(
        PageElement("index.html", b"<html>fake masqueraded page</html>")
    )
    impostor_doc = impostor_owner.publish(validity=3600)

    impostor = MaliciousReplica(
        host="canardo.inria.fr",
        document=victim.document,
        behavior=ImpostorBehavior(impostor_doc),
        replica_id="impostor",
    )
    testbed.network.register(
        Endpoint("canardo.inria.fr", "objectserver"), impostor.rpc_server().handle_frame
    )

    liar = LyingLocationService(testbed.location_service.tree)
    testbed.network.register(  # replaces the honest handler
        testbed.location_endpoint, liar.rpc_server().handle_frame
    )
    return testbed, liar, impostor


class TestLyingLocation:
    def test_pure_lie_is_denial_of_service_only(self, lying_testbed, victim):
        """All addresses false → the client gets *no* page, never a fake
        one: binding fails after the key/OID check rejects the impostor."""
        testbed, liar, impostor = lying_testbed
        liar.lie_about(
            victim.owner.oid.hex, [impostor.contact_address()], suppress_truth=True
        )
        stack = testbed.client_stack("sporty.cs.vu.nl")
        probe = run_attack_probe(stack.proxy, victim.url("index.html"), ELEMENTS["index.html"])
        assert probe.outcome in (
            AttackOutcome.DENIAL_OF_SERVICE,
            AttackOutcome.DETECTED,
        )
        assert probe.response.content != b"<html>fake masqueraded page</html>"
        assert liar.lie_count > 0

    def test_failover_recovers_when_truth_available(self, lying_testbed, victim):
        """False addresses prepended but genuine ones still listed → the
        proxy rejects the impostor and fails over to the real replica:
        only a *temporary* disruption."""
        testbed, liar, impostor = lying_testbed
        liar.lie_about(
            victim.owner.oid.hex, [impostor.contact_address()], suppress_truth=False
        )
        stack = testbed.client_stack("sporty.cs.vu.nl")
        probe = run_attack_probe(stack.proxy, victim.url("index.html"), ELEMENTS["index.html"])
        assert probe.outcome is AttackOutcome.SERVED_GENUINE
        assert impostor.requests_served > 0  # the impostor was contacted…
        # …but its key failed the OID check, so its content never surfaced.

    def test_unrelated_objects_unaffected(self, lying_testbed, testbed_extra_doc):
        testbed, liar, _ = lying_testbed
        published = testbed_extra_doc
        stack = testbed.client_stack("sporty.cs.vu.nl")
        probe = run_attack_probe(stack.proxy, published.url("index.html"), b"other doc")
        assert probe.outcome is AttackOutcome.SERVED_GENUINE


@pytest.fixture
def testbed_extra_doc(testbed):
    owner = DocumentOwner("vu.nl/other", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"other doc"))
    return testbed.publish(owner)
