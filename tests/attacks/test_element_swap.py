"""Consistency (§3.2.1): answering a request with a *different* genuine,
fresh element must be detected.

"No attacker or malicious server should be able to replace the requested
document with another fresh document part of the same object."
"""

from __future__ import annotations

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_server import (
    ElementSwapBehavior,
    ElementSwapRenamedBehavior,
)
from tests.attacks.conftest import ELEMENTS


class TestElementSwap:
    def test_naive_swap_detected_by_name_check(
        self, deploy_malicious, paris_stack, victim
    ):
        """Serving retraction.html verbatim for index.html trips the
        consistency (name) check."""
        deploy_malicious(ElementSwapBehavior("index.html", "retraction.html"))
        probe = run_attack_probe(
            paris_stack.proxy, victim.url("index.html"), ELEMENTS["index.html"]
        )
        assert probe.outcome is AttackOutcome.DETECTED
        assert probe.failure_type == "ConsistencyError"

    def test_renamed_swap_detected_by_hash_check(
        self, deploy_malicious, paris_stack, victim
    ):
        """A smarter attacker relabels the swapped element with the
        requested name — the name check passes, but the per-element hash
        in the certificate catches it. The checks are independently
        load-bearing."""
        deploy_malicious(ElementSwapRenamedBehavior("index.html", "retraction.html"))
        probe = run_attack_probe(
            paris_stack.proxy, victim.url("index.html"), ELEMENTS["index.html"]
        )
        assert probe.outcome is AttackOutcome.DETECTED
        assert probe.failure_type == "AuthenticityError"

    def test_swap_target_itself_still_served(
        self, deploy_malicious, paris_stack, victim
    ):
        deploy_malicious(ElementSwapBehavior("index.html", "retraction.html"))
        probe = run_attack_probe(
            paris_stack.proxy,
            victim.url("retraction.html"),
            ELEMENTS["retraction.html"],
        )
        assert probe.outcome is AttackOutcome.SERVED_GENUINE
