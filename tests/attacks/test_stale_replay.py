"""Freshness (§3.2.1): replaying a genuine-but-old version must fail
once its validity interval lapses.

"No attacker or malicious server should be able to pass off genuine but
old versions of a document and convince the client they are fresh."
"""

from __future__ import annotations

import pytest

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_server import StaleReplayBehavior
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from tests.conftest import fast_keys


@pytest.fixture
def stale_setup(testbed):
    """Publish v1 with a short validity, then v2; attacker replays v1."""
    owner = DocumentOwner("vu.nl/news", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"<html>old story v1</html>"))
    v1 = owner.publish(validity=300.0)

    owner.put_element(PageElement("index.html", b"<html>corrected story v2</html>"))
    published = testbed.publish(owner, validity=3600.0)  # v2 goes live
    return owner, v1, published


class TestStaleReplay:
    def test_stale_version_within_validity_is_undetectable(
        self, testbed, stale_setup, deploy_malicious_for
    ):
        """Inside v1's validity window the replay is *by design*
        indistinguishable from slow propagation — freshness is exactly
        as strong as the owner's chosen interval."""
        owner, v1, published = stale_setup
        deploy_malicious_for(published, StaleReplayBehavior(v1))
        stack = testbed.client_stack("canardo.inria.fr")
        probe = run_attack_probe(stack.proxy, published.url("index.html"), None)
        assert probe.response.ok
        assert probe.response.content == b"<html>old story v1</html>"

    def test_stale_version_detected_after_expiry(
        self, testbed, stale_setup, deploy_malicious_for
    ):
        owner, v1, published = stale_setup
        deploy_malicious_for(published, StaleReplayBehavior(v1))
        testbed.clock.advance(301.0)  # v1's interval lapses; v2 still valid
        stack = testbed.client_stack("canardo.inria.fr")
        probe = run_attack_probe(
            stack.proxy, published.url("index.html"), b"<html>corrected story v2</html>"
        )
        assert probe.outcome is AttackOutcome.DETECTED
        assert probe.failure_type == "FreshnessError"

    def test_genuine_replica_still_fresh_after_v1_expiry(
        self, testbed, stale_setup
    ):
        _, _, published = stale_setup
        testbed.clock.advance(301.0)
        stack = testbed.client_stack("sporty.cs.vu.nl")
        probe = run_attack_probe(
            stack.proxy, published.url("index.html"), b"<html>corrected story v2</html>"
        )
        assert probe.outcome is AttackOutcome.SERVED_GENUINE


@pytest.fixture
def deploy_malicious_for(testbed):
    """Like deploy_malicious but for an explicitly provided document."""
    from repro.attacks.malicious_server import MaliciousReplica
    from repro.net.address import Endpoint

    def deploy(published, behavior, host="canardo.inria.fr", site="root/europe/inria"):
        replica = MaliciousReplica(
            host=host, document=published.document, behavior=behavior
        )
        testbed.network.register(
            Endpoint(host, "objectserver"), replica.rpc_server().handle_frame
        )
        testbed.location_service.tree.insert(
            published.owner.oid.hex, site, replica.contact_address()
        )
        return replica

    return deploy
