"""Authenticity (§3.2.1): a tampering replica must be detected.

"No attacker or malicious server should be able to pass off one of
their own documents as being part of the object."
"""

from __future__ import annotations

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_server import HonestBehavior, TamperBehavior
from tests.attacks.conftest import ELEMENTS


class TestTamperDetection:
    def test_tampered_element_detected(self, deploy_malicious, paris_stack, victim):
        deploy_malicious(TamperBehavior("index.html", payload=b"<script>evil</script>"))
        probe = run_attack_probe(
            paris_stack.proxy, victim.url("index.html"), ELEMENTS["index.html"]
        )
        assert probe.outcome is AttackOutcome.DETECTED
        assert probe.failure_type == "AuthenticityError"
        assert b"Security Check Failed" in probe.response.content

    def test_untampered_element_from_same_replica_ok(
        self, deploy_malicious, paris_stack, victim
    ):
        """The attack targets one element; the other still verifies —
        detection is per element, not per replica."""
        deploy_malicious(TamperBehavior("index.html"))
        probe = run_attack_probe(
            paris_stack.proxy,
            victim.url("retraction.html"),
            ELEMENTS["retraction.html"],
        )
        assert probe.outcome is AttackOutcome.SERVED_GENUINE

    def test_honest_replica_control(self, deploy_malicious, paris_stack, victim):
        """Control: the honest behaviour on the same machinery serves
        genuine content (the detection is not a false positive)."""
        deploy_malicious(HonestBehavior())
        probe = run_attack_probe(
            paris_stack.proxy, victim.url("index.html"), ELEMENTS["index.html"]
        )
        assert probe.outcome is AttackOutcome.SERVED_GENUINE

    def test_client_far_from_attacker_unaffected(
        self, deploy_malicious, testbed, victim
    ):
        """The malicious replica is registered at the Paris site; an
        Amsterdam client's expanding ring finds the genuine VU replica
        first and never touches the attacker."""
        replica = deploy_malicious(TamperBehavior("index.html"))
        amsterdam = testbed.client_stack("sporty.cs.vu.nl")
        probe = run_attack_probe(
            amsterdam.proxy, victim.url("index.html"), ELEMENTS["index.html"]
        )
        assert probe.outcome is AttackOutcome.SERVED_GENUINE
        assert replica.requests_served == 0
