"""Man-in-the-middle (§3.2.1): in-flight tampering is caught by GlobeDoc
but sails through plain HTTP — the paper's opening vulnerability."""

from __future__ import annotations

import pytest

from repro.attacks.mitm import MitmTransport
from repro.baselines.plainhttp import PlainHttpClient
from repro.net.rpc import RpcClient
from repro.proxy.binding import Binder
from repro.proxy.checks import SecurityChecker
from repro.proxy.clientproxy import GlobeDocProxy
from repro.location.service import LocationClient
from repro.naming.service import SecureResolver
from tests.attacks.conftest import ELEMENTS


@pytest.fixture
def mitm_stack(testbed, victim):
    """A Paris client whose transport passes through an injecting MITM."""
    inner = testbed.network.transport_for("canardo.inria.fr")
    mitm = MitmTransport(inner, MitmTransport.content_injector(b"<!-- injected -->"))
    rpc = RpcClient(mitm)
    resolver = SecureResolver(
        rpc, testbed.naming_endpoint, testbed.naming.root_key, clock=testbed.clock
    )
    location = LocationClient(
        rpc, testbed.location_endpoint, origin_site="root/europe/inria", clock=testbed.clock
    )
    checker = SecurityChecker(testbed.clock)
    proxy = GlobeDocProxy(Binder(resolver, location, rpc), checker, rpc)
    return proxy, mitm, rpc


class TestMitm:
    def test_globedoc_detects_injection(self, mitm_stack, victim):
        proxy, mitm, _ = mitm_stack
        response = proxy.handle(victim.url("index.html"))
        assert response.status == 403
        assert response.security_failure == "AuthenticityError"
        assert mitm.intercepted > 0

    def test_plain_http_accepts_injection(self, mitm_stack, testbed, victim):
        """The same attack against the HTTP baseline succeeds silently —
        the vulnerability GlobeDoc exists to close."""
        _, mitm, rpc = mitm_stack
        client = PlainHttpClient(rpc, testbed.http_server.endpoint)
        body = client.get(f"{victim.name}/index.html")
        assert body == ELEMENTS["index.html"] + b"<!-- injected -->"

    def test_passive_mitm_changes_nothing(self, testbed, victim):
        inner = testbed.network.transport_for("canardo.inria.fr")
        mitm = MitmTransport(inner, rewrite=None)
        rpc = RpcClient(mitm)
        resolver = SecureResolver(
            rpc, testbed.naming_endpoint, testbed.naming.root_key, clock=testbed.clock
        )
        location = LocationClient(
            rpc,
            testbed.location_endpoint,
            origin_site="root/europe/inria",
            clock=testbed.clock,
        )
        proxy = GlobeDocProxy(
            Binder(resolver, location, rpc), SecurityChecker(testbed.clock), rpc
        )
        response = proxy.handle(victim.url("index.html"))
        assert response.ok
        assert response.content == ELEMENTS["index.html"]
        assert mitm.intercepted == 0

    def test_replayed_frame_degrades_to_error_not_content(self, testbed, victim):
        """Replacing responses with canned garbage causes failures, never
        acceptance of attacker content."""
        inner = testbed.network.transport_for("canardo.inria.fr")
        mitm = MitmTransport(inner, MitmTransport.response_replayer(b"\x00garbage"))
        rpc = RpcClient(mitm)
        resolver = SecureResolver(
            rpc, testbed.naming_endpoint, testbed.naming.root_key, clock=testbed.clock
        )
        location = LocationClient(
            rpc,
            testbed.location_endpoint,
            origin_site="root/europe/inria",
            clock=testbed.clock,
        )
        proxy = GlobeDocProxy(
            Binder(resolver, location, rpc), SecurityChecker(testbed.clock), rpc
        )
        response = proxy.handle(victim.url("index.html"))
        assert not response.ok
