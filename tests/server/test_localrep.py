"""Local representatives: replica LR and forwarding proxy LR parity."""

from __future__ import annotations

import pytest

from repro.errors import ConsistencyError
from repro.globedoc.document import DocumentState
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from repro.server.localrep import ProxyLR, ReplicaLR
from repro.server.objectserver import ObjectServer


@pytest.fixture
def both_lrs(clock, make_owner, session_ca):
    """The same document behind a ReplicaLR and a ProxyLR."""
    owner = make_owner("vu.nl/doc", {"index.html": b"hello", "a.png": b"img"})
    owner.request_identity_certificate(session_ca)
    doc = owner.publish(validity=3600)

    replica_lr = ReplicaLR(doc.state())

    server = ObjectServer(host="ginger", site="root/europe/vu", clock=clock)
    server.keystore.authorize("owner", owner.public_key)
    hosted = server.create_replica(doc, owner.public_key, "owner")
    transport = LoopbackTransport()
    transport.register(
        Endpoint(host="ginger", service="objectserver"),
        server.rpc_server().handle_frame,
    )
    proxy_lr = ProxyLR(RpcClient(transport), server.contact_address(doc.oid.hex))
    return owner, replica_lr, proxy_lr


class TestParity:
    """Both LR flavours must be indistinguishable to callers (§2.1)."""

    def test_public_key(self, both_lrs):
        owner, replica, proxy = both_lrs
        assert replica.get_public_key() == proxy.get_public_key() == owner.public_key

    def test_elements(self, both_lrs):
        _, replica, proxy = both_lrs
        assert (
            replica.get_element("index.html").content
            == proxy.get_element("index.html").content
            == b"hello"
        )

    def test_list_elements(self, both_lrs):
        _, replica, proxy = both_lrs
        assert replica.list_elements() == proxy.list_elements() == ["a.png", "index.html"]

    def test_integrity_certificate(self, both_lrs):
        owner, replica, proxy = both_lrs
        a = replica.get_integrity_certificate()
        b = proxy.get_integrity_certificate()
        assert a.entries == b.entries
        b.verify_signature(owner.public_key)

    def test_identity_certificates(self, both_lrs):
        _, replica, proxy = both_lrs
        a = replica.get_identity_certificates()
        b = proxy.get_identity_certificates()
        assert len(a) == len(b) == 1
        assert a[0].subject_name == b[0].subject_name


class TestReplicaLR:
    def test_missing_element(self, both_lrs):
        _, replica, _ = both_lrs
        with pytest.raises(ConsistencyError):
            replica.get_element("ghost.html")

    def test_missing_certificate(self, shared_keys):
        lr = ReplicaLR(DocumentState(public_key=shared_keys.public))
        with pytest.raises(ConsistencyError):
            lr.get_integrity_certificate()

    def test_update_state(self, both_lrs, make_owner):
        owner, replica, _ = both_lrs
        from repro.globedoc.element import PageElement

        owner.put_element(PageElement("index.html", b"v2"))
        replica.update_state(owner.publish(validity=60).state())
        assert replica.get_element("index.html").content == b"v2"
        assert replica.version == 2
