"""Peer-server replication (§4): "such entities can be either GlobeDoc
owners (individuals) or other GlobeDoc object servers (in this way we
can support dynamic replication algorithms)."

A server holding a replica repackages its (public, owner-signed) state
and pushes it to a peer whose keystore authorises the *server's* key —
no owner involvement, no trust in either server required by clients.
"""

from __future__ import annotations

import pytest

from repro.errors import AccessDenied, ReproError
from repro.globedoc.element import PageElement
from repro.globedoc.owner import SignedDocument
from repro.harness.experiment import Testbed
from repro.net.address import ContactAddress, Endpoint
from repro.net.rpc import RpcClient
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from repro.crypto.keys import KeyPair
from tests.conftest import fast_keys


@pytest.fixture
def world(make_owner):
    testbed = Testbed()
    owner = make_owner("vu.nl/doc", {"index.html": b"<html>peer-replicated</html>"})
    owner.clock = testbed.clock
    published = testbed.publish(owner)

    # The source server (ginger) has its own identity key pair.
    source_server_keys = fast_keys()
    # A peer server at Cornell authorises *the source server*, not the owner.
    peer = ObjectServer(
        host="ensamble02.cornell.edu", site="root/us/cornell", clock=testbed.clock
    )
    peer.keystore.authorize("ginger-objectserver", source_server_keys.public)
    testbed.network.register(
        Endpoint("ensamble02.cornell.edu", "objectserver"),
        peer.rpc_server().handle_frame,
    )
    return testbed, owner, published, source_server_keys, peer


class TestFromState:
    def test_roundtrip_through_state(self, make_owner):
        owner = make_owner("vu.nl/x", {"a.html": b"data"})
        original = owner.publish(validity=60)
        rebuilt = SignedDocument.from_state(original.state())
        assert rebuilt.oid == original.oid
        assert rebuilt.integrity.version == original.integrity.version
        rebuilt.state().validate()

    def test_tampered_state_cannot_be_repackaged(self, make_owner):
        owner = make_owner("vu.nl/x", {"a.html": b"data"})
        state = owner.publish(validity=60).state()
        state.elements["a.html"] = PageElement("a.html", b"tampered")
        with pytest.raises(ReproError):
            SignedDocument.from_state(state)


class TestPeerReplication:
    def test_server_replicates_to_peer(self, world):
        testbed, owner, published, source_keys, peer = world
        # The source server repackages its hosted replica state…
        hosted = testbed.object_server.replica_for_oid(published.oid_hex)
        document = SignedDocument.from_state(hosted.lr.state)
        # …and pushes it to the peer under its OWN (server) identity.
        admin = AdminClient(
            RpcClient(testbed.network.transport_for("ginger.cs.vu.nl")),
            Endpoint("ensamble02.cornell.edu", "objectserver"),
            source_keys,
            testbed.clock,
        )
        result = admin.create_replica(document)
        assert peer.hosts_oid(published.oid_hex)
        # Register the new contact address; a Cornell client binds locally
        # and the content still verifies against the OWNER's signature.
        testbed.location_service.tree.insert(
            published.oid_hex,
            "root/us/cornell",
            ContactAddress.from_dict(result["address"]),
        )
        stack = testbed.client_stack("ensamble02.cornell.edu")
        response = stack.proxy.handle(published.url("index.html"))
        assert response.ok
        assert response.content == b"<html>peer-replicated</html>"
        assert peer.replica_for_oid(published.oid_hex).lr.serve_count == 1

    def test_unauthorized_server_rejected(self, world):
        testbed, owner, published, source_keys, peer = world
        hosted = testbed.object_server.replica_for_oid(published.oid_hex)
        document = SignedDocument.from_state(hosted.lr.state)
        rogue = AdminClient(
            RpcClient(testbed.network.transport_for("canardo.inria.fr")),
            Endpoint("ensamble02.cornell.edu", "objectserver"),
            fast_keys(),  # not in the peer's keystore
            testbed.clock,
        )
        with pytest.raises(AccessDenied):
            rogue.create_replica(document)

    def test_peer_replica_managed_by_creating_server(self, world):
        """The replica created by the source server belongs to *it* —
        the owner cannot destroy it (per-creator management, §4)."""
        testbed, owner, published, source_keys, peer = world
        hosted = testbed.object_server.replica_for_oid(published.oid_hex)
        document = SignedDocument.from_state(hosted.lr.state)
        admin = AdminClient(
            RpcClient(testbed.network.transport_for("ginger.cs.vu.nl")),
            Endpoint("ensamble02.cornell.edu", "objectserver"),
            source_keys,
            testbed.clock,
        )
        result = admin.create_replica(document)
        # Even if the owner were authorised on the peer, per-creator
        # management applies.
        peer.keystore.authorize("owner", owner.public_key)
        owner_admin = AdminClient(
            RpcClient(testbed.network.transport_for("sporty.cs.vu.nl")),
            Endpoint("ensamble02.cornell.edu", "objectserver"),
            owner.keys,
            testbed.clock,
        )
        with pytest.raises(AccessDenied):
            owner_admin.destroy_replica(result["replica_id"])
        admin.destroy_replica(result["replica_id"])  # the creator may
        assert not peer.hosts_oid(published.oid_hex)
