"""The authenticated admin interface: keystore ACL, signatures,
freshness, replay defence — end to end over RPC."""

from __future__ import annotations

import pytest

from repro.errors import AccessDenied, RpcError
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient, RpcServer
from repro.net.transport import LoopbackTransport
from repro.server.admin import FRESHNESS_WINDOW, AdminClient, AdminCommand, AdminVerifier
from repro.server.keystore import Keystore
from repro.server.objectserver import ObjectServer
from tests.conftest import fast_keys


@pytest.fixture
def setup(clock, make_owner):
    server = ObjectServer(host="ginger", site="root/europe/vu", clock=clock)
    owner = make_owner("vu.nl/doc", {"index.html": b"x"})
    server.keystore.authorize("owner", owner.public_key)
    transport = LoopbackTransport()
    endpoint = Endpoint(host="ginger", service="objectserver")
    transport.register(endpoint, server.rpc_server().handle_frame)
    admin = AdminClient(RpcClient(transport), endpoint, owner.keys, clock)
    return server, owner, admin, transport, endpoint, clock


class TestAdminFlow:
    def test_create_and_list(self, setup):
        server, owner, admin, *_ = setup
        doc = owner.publish(validity=60)
        result = admin.create_replica(doc)
        assert server.replica_count == 1
        listed = admin.list_replicas()
        assert listed["replicas"][0]["replica_id"] == result["replica_id"]

    def test_create_update_destroy(self, setup):
        server, owner, admin, *_ = setup
        doc = owner.publish(validity=60)
        created = admin.create_replica(doc)
        from repro.globedoc.element import PageElement

        owner.put_element(PageElement("index.html", b"v2"))
        updated = admin.update_replica(owner.publish(validity=60))
        assert updated["version"] == 2
        admin.destroy_replica(created["replica_id"])
        assert server.replica_count == 0

    def test_unauthorized_key_denied(self, setup, clock):
        server, owner, _, transport, endpoint, _ = setup
        doc = owner.publish(validity=60)
        intruder = AdminClient(RpcClient(transport), endpoint, fast_keys(), clock)
        with pytest.raises(AccessDenied):
            intruder.create_replica(doc)
        assert server.replica_count == 0

    def test_cross_entity_destroy_denied(self, setup, clock):
        server, owner, admin, transport, endpoint, _ = setup
        created = admin.create_replica(owner.publish(validity=60))
        peer = fast_keys()
        server.keystore.authorize("peer-server", peer.public)
        peer_admin = AdminClient(RpcClient(transport), endpoint, peer, clock)
        with pytest.raises(AccessDenied):
            peer_admin.destroy_replica(created["replica_id"])

    def test_unknown_op_rejected(self, setup):
        from repro.errors import ServerError

        _, _, admin, *_ = setup
        with pytest.raises(ServerError):
            admin.execute("format_disk")


class TestCommandSecurity:
    def test_signature_covers_args(self, setup, clock):
        """Altering a signed command's args must break it."""
        server, owner, _, _, _, _ = setup
        cmd = AdminCommand.create(
            owner.keys, "destroy_replica", {"replica_id": "mine"}, clock
        )
        tampered = AdminCommand(
            op=cmd.op,
            args={"replica_id": "yours"},
            issued_at=cmd.issued_at,
            nonce=cmd.nonce,
            requester_key_der=cmd.requester_key_der,
            signature=cmd.signature,
        )
        verifier = AdminVerifier(server.keystore, clock)
        with pytest.raises(AccessDenied, match="signature"):
            verifier.verify(tampered)

    def test_key_substitution_denied(self, setup, clock):
        """Signing with your key but claiming another identity fails: the
        requester key is inside the signed payload."""
        server, owner, _, _, _, _ = setup
        attacker = fast_keys()
        cmd = AdminCommand.create(attacker, "list_replicas", {}, clock)
        forged = AdminCommand(
            op=cmd.op,
            args=cmd.args,
            issued_at=cmd.issued_at,
            nonce=cmd.nonce,
            requester_key_der=owner.public_key.der,  # claim the owner's key
            signature=cmd.signature,
            suite_name=cmd.suite_name,
        )
        verifier = AdminVerifier(server.keystore, clock)
        with pytest.raises(AccessDenied):
            verifier.verify(forged)

    def test_stale_command_rejected(self, setup, clock):
        server, owner, _, _, _, _ = setup
        cmd = AdminCommand.create(owner.keys, "list_replicas", {}, clock)
        clock.advance(FRESHNESS_WINDOW + 1)
        verifier = AdminVerifier(server.keystore, clock)
        with pytest.raises(AccessDenied, match="freshness"):
            verifier.verify(cmd)

    def test_replay_rejected(self, setup, clock):
        server, owner, _, _, _, _ = setup
        cmd = AdminCommand.create(owner.keys, "list_replicas", {}, clock)
        verifier = AdminVerifier(server.keystore, clock)
        verifier.verify(cmd)
        with pytest.raises(AccessDenied, match="replay"):
            verifier.verify(cmd)

    def test_malformed_command_rejected(self):
        with pytest.raises(AccessDenied):
            AdminCommand.from_dict({"op": "x"})
