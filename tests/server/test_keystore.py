"""The object-server keystore ACL."""

from __future__ import annotations

import pytest

from repro.errors import AccessDenied
from repro.server.keystore import Keystore


class TestKeystore:
    def test_authorize_and_check(self, shared_keys):
        ks = Keystore()
        assert not ks.is_authorized(shared_keys.public)
        ks.authorize("owner-a", shared_keys.public)
        assert ks.is_authorized(shared_keys.public)
        assert ks.label_of(shared_keys.public) == "owner-a"

    def test_unknown_key_denied(self, shared_keys):
        with pytest.raises(AccessDenied):
            Keystore().label_of(shared_keys.public)

    def test_revoke(self, shared_keys):
        ks = Keystore()
        ks.authorize("owner-a", shared_keys.public)
        ks.revoke(shared_keys.public)
        assert not ks.is_authorized(shared_keys.public)
        ks.revoke(shared_keys.public)  # idempotent

    def test_relabel(self, shared_keys):
        ks = Keystore()
        ks.authorize("old", shared_keys.public)
        ks.authorize("new", shared_keys.public)
        assert ks.label_of(shared_keys.public) == "new"
        assert len(ks) == 1

    def test_labels_sorted(self, shared_keys, other_keys):
        ks = Keystore()
        ks.authorize("zeta", shared_keys.public)
        ks.authorize("alpha", other_keys.public)
        assert ks.labels == ["alpha", "zeta"]
