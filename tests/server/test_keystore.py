"""The object-server keystore ACL."""

from __future__ import annotations

import pytest

from repro.errors import AccessDenied
from repro.server.keystore import Keystore


class TestKeystore:
    def test_authorize_and_check(self, shared_keys):
        ks = Keystore()
        assert not ks.is_authorized(shared_keys.public)
        ks.authorize("owner-a", shared_keys.public)
        assert ks.is_authorized(shared_keys.public)
        assert ks.label_of(shared_keys.public) == "owner-a"

    def test_unknown_key_denied(self, shared_keys):
        with pytest.raises(AccessDenied):
            Keystore().label_of(shared_keys.public)

    def test_revoke(self, shared_keys):
        ks = Keystore()
        ks.authorize("owner-a", shared_keys.public)
        ks.revoke(shared_keys.public)
        assert not ks.is_authorized(shared_keys.public)
        ks.revoke(shared_keys.public)  # idempotent

    def test_relabel(self, shared_keys):
        ks = Keystore()
        ks.authorize("old", shared_keys.public)
        ks.authorize("new", shared_keys.public)
        assert ks.label_of(shared_keys.public) == "new"
        assert len(ks) == 1

    def test_labels_sorted(self, shared_keys, other_keys):
        ks = Keystore()
        ks.authorize("zeta", shared_keys.public)
        ks.authorize("alpha", other_keys.public)
        assert ks.labels == ["alpha", "zeta"]


class TestRevocationHooks:
    """Revocation is observable: subscribers fire exactly once per
    *effective* revoke, with the removed entity's label and key."""

    def test_subscriber_fires_on_effective_revoke(self, shared_keys):
        ks = Keystore()
        events = []
        ks.subscribe(lambda label, key: events.append((label, key.der)))
        ks.authorize("owner-a", shared_keys.public)
        assert ks.revoke(shared_keys.public) is True
        assert events == [("owner-a", shared_keys.public.der)]

    def test_second_revoke_is_silent(self, shared_keys):
        ks = Keystore()
        events = []
        ks.subscribe(lambda label, key: events.append(label))
        ks.authorize("owner-a", shared_keys.public)
        ks.revoke(shared_keys.public)
        assert ks.revoke(shared_keys.public) is False
        assert events == ["owner-a"]

    def test_unknown_key_fires_nothing(self, shared_keys):
        ks = Keystore()
        events = []
        ks.subscribe(lambda label, key: events.append(label))
        assert ks.revoke(shared_keys.public) is False
        assert events == []

    def test_all_subscribers_notified(self, shared_keys):
        ks = Keystore()
        first, second = [], []
        ks.subscribe(lambda label, key: first.append(label))
        ks.subscribe(lambda label, key: second.append(label))
        ks.authorize("owner-a", shared_keys.public)
        ks.revoke(shared_keys.public)
        assert first == ["owner-a"] and second == ["owner-a"]

    def test_callback_unsubscribing_itself_does_not_skip_others(self, shared_keys):
        """Regression: revoke used to iterate ``_revoke_callbacks``
        directly, so a callback that unsubscribed itself shifted the
        list mid-iteration and silently skipped the next subscriber —
        whose replica teardown then never ran."""
        ks = Keystore()
        fired = []

        def one_shot(label, key):
            fired.append("one_shot")
            ks.unsubscribe(one_shot)

        ks.subscribe(one_shot)
        ks.subscribe(lambda label, key: fired.append("second"))
        ks.authorize("owner-a", shared_keys.public)
        ks.revoke(shared_keys.public)
        assert fired == ["one_shot", "second"]

    def test_callback_subscribing_does_not_notify_newcomer(self, shared_keys):
        """A subscriber added during notification sees *future* revokes,
        not the one in flight (snapshot semantics, no infinite growth)."""
        ks = Keystore()
        fired = []

        def recruiter(label, key):
            fired.append("recruiter")
            ks.subscribe(lambda lbl, k: fired.append("newcomer"))

        ks.subscribe(recruiter)
        ks.authorize("owner-a", shared_keys.public)
        ks.revoke(shared_keys.public)
        assert fired == ["recruiter"]

    def test_authorize_subscribers_fire(self, shared_keys):
        ks = Keystore()
        events = []
        ks.subscribe_authorize(lambda label, key: events.append((label, key.der)))
        ks.authorize("owner-a", shared_keys.public)
        assert events == [("owner-a", shared_keys.public.der)]

    def test_entries_deterministic(self, shared_keys, other_keys):
        ks = Keystore()
        ks.authorize("b-label", other_keys.public)
        ks.authorize("a-label", shared_keys.public)
        assert ks.entries() == sorted(
            [("a-label", shared_keys.public.der), ("b-label", other_keys.public.der)]
        )

    def test_require_returns_label_or_denies(self, shared_keys, other_keys):
        ks = Keystore()
        ks.authorize("owner-a", shared_keys.public)
        assert ks.require(shared_keys.public) == "owner-a"
        with pytest.raises(AccessDenied):
            ks.require(other_keys.public)
