"""Object server: replica lifecycle, ownership, data surface."""

from __future__ import annotations

import pytest

from repro.errors import AccessDenied, ReplicaError
from repro.globedoc.element import PageElement
from repro.revocation.feed import RevocationFeed
from repro.revocation.statement import RevocationStatement
from repro.server.admin import AdminCommand
from repro.server.objectserver import ObjectServer
from tests.conftest import fast_keys


@pytest.fixture
def server(clock):
    return ObjectServer(host="ginger", site="root/europe/vu", clock=clock)


@pytest.fixture
def signed_doc(make_owner):
    owner = make_owner("vu.nl/doc", {"index.html": b"content", "a.png": b"img"})
    return owner, owner.publish(validity=3600)


class TestLifecycle:
    def test_create_replica(self, server, signed_doc):
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        assert server.replica_count == 1
        assert server.hosts_oid(doc.oid.hex)
        assert hosted.lr.get_element("index.html").content == b"content"

    def test_duplicate_rejected(self, server, signed_doc):
        owner, doc = signed_doc
        server.create_replica(doc, owner.public_key, "owner")
        with pytest.raises(ReplicaError):
            server.create_replica(doc, owner.public_key, "owner")

    def test_contact_address(self, server, signed_doc):
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        address = server.contact_address(doc.oid.hex)
        assert address.replica_id == hosted.replica_id
        assert address.endpoint == server.endpoint

    def test_contact_address_missing(self, server):
        with pytest.raises(ReplicaError):
            server.contact_address("00" * 20)

    def test_destroy_by_creator(self, server, signed_doc):
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        server.destroy_replica(hosted.replica_id, owner.public_key)
        assert server.replica_count == 0
        assert not server.hosts_oid(doc.oid.hex)

    def test_destroy_by_other_denied(self, server, signed_doc):
        """§4: each entity is allowed to manage only the replicas it
        creates — including destruction."""
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        stranger = fast_keys()
        with pytest.raises(AccessDenied):
            server.destroy_replica(hosted.replica_id, stranger.public)
        assert server.replica_count == 1

    def test_destroy_missing(self, server, shared_keys):
        with pytest.raises(ReplicaError):
            server.destroy_replica("ghost", shared_keys.public)

    def test_update_replica(self, server, signed_doc, make_owner):
        owner, doc = signed_doc
        server.create_replica(doc, owner.public_key, "owner")
        owner.put_element(PageElement("index.html", b"v2"))
        doc2 = owner.publish(validity=3600)
        hosted = server.update_replica(doc2, owner.public_key)
        assert hosted.lr.get_element("index.html").content == b"v2"
        assert hosted.lr.version == 2

    def test_update_by_other_denied(self, server, signed_doc):
        owner, doc = signed_doc
        server.create_replica(doc, owner.public_key, "owner")
        with pytest.raises(AccessDenied):
            server.update_replica(doc, fast_keys().public)


class TestDataSurface:
    def test_rpc_surface(self, server, signed_doc):
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        rid = hosted.replica_id
        assert bytes(server.rpc_get_public_key(rid)) == owner.public_key.der
        assert server.rpc_list_elements(rid) == ["a.png", "index.html"]
        element = server.rpc_get_element(rid, "a.png")
        assert bytes(element["content"]) == b"img"
        cert = server.rpc_get_integrity_certificate(rid)
        assert cert["cert_type"] == "globedoc/integrity"

    def test_serve_counters(self, server, signed_doc):
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        server.rpc_get_element(hosted.replica_id, "index.html")
        assert hosted.lr.serve_count == 1
        assert hosted.lr.bytes_served == len(b"content")

    def test_unknown_replica(self, server):
        with pytest.raises(ReplicaError):
            server.rpc_get_element("ghost", "x")


class TestRevocation:
    """A revoked keystore entity stops hosting: key out, replicas down,
    admin notified — and the feed's key-scope publishes trigger it."""

    def test_revoke_entity_drops_replicas(self, server, signed_doc, clock):
        owner, doc = signed_doc
        server.keystore.authorize("owner", owner.public_key)
        server.create_replica(doc, owner.public_key, "owner")
        assert server.revoke_entity(owner.public_key) is True
        assert server.replica_count == 0
        assert not server.hosts_oid(doc.oid.hex)
        assert not server.keystore.is_authorized(owner.public_key)
        notice = server.notices[-1]
        assert notice["event"] == "entity_revoked"
        assert notice["label"] == "owner"
        assert notice["at"] == clock.now()
        assert len(notice["replicas_dropped"]) == 1

    def test_revoke_entity_is_idempotent(self, server, signed_doc):
        owner, doc = signed_doc
        server.keystore.authorize("owner", owner.public_key)
        server.create_replica(doc, owner.public_key, "owner")
        server.revoke_entity(owner.public_key)
        assert server.revoke_entity(owner.public_key) is False
        assert len(server.notices) == 1

    def test_only_the_revoked_entitys_replicas_drop(
        self, server, signed_doc, make_owner
    ):
        owner, doc = signed_doc
        bystander = make_owner("vu.nl/bystander", {"b.html": b"b"})
        bystander_doc = bystander.publish(validity=3600)
        server.keystore.authorize("owner", owner.public_key)
        server.create_replica(doc, owner.public_key, "owner")
        server.create_replica(bystander_doc, bystander.public_key, "bystander")
        server.revoke_entity(owner.public_key)
        assert server.replica_count == 1
        assert server.hosts_oid(bystander_doc.oid.hex)

    def test_key_scope_publish_tears_down_hosting(self, server, signed_doc, clock):
        owner, doc = signed_doc
        server.keystore.authorize("owner", owner.public_key)
        server.create_replica(doc, owner.public_key, "owner")
        statement = RevocationStatement.revoke_key(
            owner.keys, owner.oid, serial=1, issued_at=clock.now()
        )
        answer = server.rpc_revocation_publish(statement.to_dict())
        assert answer == {"added": True, "head": 1}
        assert server.replica_count == 0
        assert not server.keystore.is_authorized(owner.public_key)
        # Clients now see the statement on the feed …
        head, statements = RevocationFeed.decode_delta(
            server.rpc_revocation_fetch(since=0)
        )
        assert head == 1 and statements[0].oid_hex == doc.oid.hex
        # … and the fetch RPC on the replica itself fails: no stale serve.
        with pytest.raises(ReplicaError):
            server.contact_address(doc.oid.hex)

    def test_element_scope_publish_keeps_hosting(self, server, signed_doc, clock):
        """Only key-scope statements condemn the hosting entity — an
        element revocation is the clients' business."""
        owner, doc = signed_doc
        server.keystore.authorize("owner", owner.public_key)
        server.create_replica(doc, owner.public_key, "owner")
        statement = RevocationStatement.revoke_element(
            owner.keys, owner.oid, element="index.html", cert_version=1,
            serial=1, issued_at=clock.now(),
        )
        server.rpc_revocation_publish(statement.to_dict())
        assert server.replica_count == 1
        assert server.keystore.is_authorized(owner.public_key)

    def test_duplicate_publish_is_idempotent(self, server, signed_doc, clock):
        owner, doc = signed_doc
        statement = RevocationStatement.revoke_key(
            owner.keys, owner.oid, serial=1, issued_at=clock.now()
        )
        assert server.rpc_revocation_publish(statement.to_dict())["added"] is True
        assert server.rpc_revocation_publish(statement.to_dict())["added"] is False

    def test_notices_surface_in_admin_interface(self, server, signed_doc, clock):
        """The revoked owner can no longer talk to the admin surface; a
        separately-authorised administrator reads the teardown notice."""
        owner, doc = signed_doc
        admin_keys = fast_keys()
        server.keystore.authorize("site-admin", admin_keys.public)
        server.keystore.authorize("owner", owner.public_key)
        server.create_replica(doc, owner.public_key, "owner")
        server.revoke_entity(owner.public_key)
        owner_cmd = AdminCommand.create(owner.keys, "list_notices", {}, clock)
        with pytest.raises(AccessDenied):
            server.rpc_admin_execute(owner_cmd.to_dict())
        admin_cmd = AdminCommand.create(admin_keys, "list_notices", {}, clock)
        answer = server.rpc_admin_execute(admin_cmd.to_dict())
        assert answer["notices"][0]["event"] == "entity_revoked"
        assert answer["notices"][0]["label"] == "owner"
