"""Object server: replica lifecycle, ownership, data surface."""

from __future__ import annotations

import pytest

from repro.errors import AccessDenied, ReplicaError
from repro.globedoc.element import PageElement
from repro.server.objectserver import ObjectServer
from tests.conftest import fast_keys


@pytest.fixture
def server(clock):
    return ObjectServer(host="ginger", site="root/europe/vu", clock=clock)


@pytest.fixture
def signed_doc(make_owner):
    owner = make_owner("vu.nl/doc", {"index.html": b"content", "a.png": b"img"})
    return owner, owner.publish(validity=3600)


class TestLifecycle:
    def test_create_replica(self, server, signed_doc):
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        assert server.replica_count == 1
        assert server.hosts_oid(doc.oid.hex)
        assert hosted.lr.get_element("index.html").content == b"content"

    def test_duplicate_rejected(self, server, signed_doc):
        owner, doc = signed_doc
        server.create_replica(doc, owner.public_key, "owner")
        with pytest.raises(ReplicaError):
            server.create_replica(doc, owner.public_key, "owner")

    def test_contact_address(self, server, signed_doc):
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        address = server.contact_address(doc.oid.hex)
        assert address.replica_id == hosted.replica_id
        assert address.endpoint == server.endpoint

    def test_contact_address_missing(self, server):
        with pytest.raises(ReplicaError):
            server.contact_address("00" * 20)

    def test_destroy_by_creator(self, server, signed_doc):
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        server.destroy_replica(hosted.replica_id, owner.public_key)
        assert server.replica_count == 0
        assert not server.hosts_oid(doc.oid.hex)

    def test_destroy_by_other_denied(self, server, signed_doc):
        """§4: each entity is allowed to manage only the replicas it
        creates — including destruction."""
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        stranger = fast_keys()
        with pytest.raises(AccessDenied):
            server.destroy_replica(hosted.replica_id, stranger.public)
        assert server.replica_count == 1

    def test_destroy_missing(self, server, shared_keys):
        with pytest.raises(ReplicaError):
            server.destroy_replica("ghost", shared_keys.public)

    def test_update_replica(self, server, signed_doc, make_owner):
        owner, doc = signed_doc
        server.create_replica(doc, owner.public_key, "owner")
        owner.put_element(PageElement("index.html", b"v2"))
        doc2 = owner.publish(validity=3600)
        hosted = server.update_replica(doc2, owner.public_key)
        assert hosted.lr.get_element("index.html").content == b"v2"
        assert hosted.lr.version == 2

    def test_update_by_other_denied(self, server, signed_doc):
        owner, doc = signed_doc
        server.create_replica(doc, owner.public_key, "owner")
        with pytest.raises(AccessDenied):
            server.update_replica(doc, fast_keys().public)


class TestDataSurface:
    def test_rpc_surface(self, server, signed_doc):
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        rid = hosted.replica_id
        assert bytes(server.rpc_get_public_key(rid)) == owner.public_key.der
        assert server.rpc_list_elements(rid) == ["a.png", "index.html"]
        element = server.rpc_get_element(rid, "a.png")
        assert bytes(element["content"]) == b"img"
        cert = server.rpc_get_integrity_certificate(rid)
        assert cert["cert_type"] == "globedoc/integrity"

    def test_serve_counters(self, server, signed_doc):
        owner, doc = signed_doc
        hosted = server.create_replica(doc, owner.public_key, "owner")
        server.rpc_get_element(hosted.replica_id, "index.html")
        assert hosted.lr.serve_count == 1
        assert hosted.lr.bytes_served == len(b"content")

    def test_unknown_replica(self, server):
        with pytest.raises(ReplicaError):
            server.rpc_get_element("ghost", "x")
