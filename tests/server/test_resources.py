"""Resource limits and enforcement (§6 future work)."""

from __future__ import annotations

import pytest

from repro.errors import ResourceExceeded
from repro.globedoc.element import PageElement
from repro.server.objectserver import ObjectServer
from repro.server.resources import ResourceAccountant, ResourceLimits, UNLIMITED
from repro.sim.clock import SimClock
from tests.conftest import fast_keys


class TestResourceLimits:
    def test_defaults_unlimited(self):
        limits = ResourceLimits()
        assert limits.disk_bytes == UNLIMITED
        assert limits.max_replicas == UNLIMITED

    def test_dict_roundtrip(self):
        limits = ResourceLimits(
            disk_bytes=1_000_000, max_replicas=4, bandwidth_bytes_per_sec=500_000
        )
        restored = ResourceLimits.from_dict(limits.to_dict())
        assert restored == limits

    def test_unlimited_encodes_as_none(self):
        assert ResourceLimits().to_dict()["disk_bytes"] is None
        assert ResourceLimits.from_dict({"disk_bytes": None}).disk_bytes == UNLIMITED


class TestAccountant:
    def make(self, **kwargs):
        clock = SimClock(0.0)
        return ResourceAccountant(ResourceLimits(**kwargs), clock), clock

    def test_disk_admission(self):
        acct, _ = self.make(disk_bytes=1000)
        acct.admit_replica("r1", 600)
        with pytest.raises(ResourceExceeded, match="disk"):
            acct.admit_replica("r2", 500)
        acct.admit_replica("r2", 400)
        assert acct.disk_used == 1000
        assert acct.rejections == 1

    def test_replica_cap(self):
        acct, _ = self.make(max_replicas=1)
        acct.admit_replica("r1", 10)
        with pytest.raises(ResourceExceeded, match="cap"):
            acct.admit_replica("r2", 10)

    def test_release_frees_space(self):
        acct, _ = self.make(disk_bytes=1000)
        acct.admit_replica("r1", 1000)
        acct.release_replica("r1")
        acct.admit_replica("r2", 1000)

    def test_resize(self):
        acct, _ = self.make(disk_bytes=1000)
        acct.admit_replica("r1", 800)
        acct.resize_replica("r1", 999)
        with pytest.raises(ResourceExceeded):
            acct.resize_replica("r1", 1001)
        assert acct.disk_used == 999

    def test_bandwidth_window(self):
        acct, clock = self.make(bandwidth_bytes_per_sec=100, bandwidth_window=10.0)
        acct.charge_serve(900)
        with pytest.raises(ResourceExceeded, match="bandwidth"):
            acct.charge_serve(200)  # 1100 > 100*10 budget
        clock.advance(11.0)  # window slides; budget is free again
        acct.charge_serve(900)
        assert acct.bytes_served_total == 1800

    def test_quote_shape(self):
        acct, _ = self.make(disk_bytes=1000, max_replicas=2)
        acct.admit_replica("r1", 300)
        quote = acct.quote()
        assert quote["disk_used"] == 300
        assert quote["disk_free"] == 700
        assert quote["replicas_hosted"] == 1
        assert quote["replica_slots_free"] == 1

    def test_quote_unlimited(self):
        acct, _ = self.make()
        quote = acct.quote()
        assert quote["disk_free"] is None
        assert quote["replica_slots_free"] is None


class TestServerEnforcement:
    @pytest.fixture
    def limited_server(self, clock):
        return ObjectServer(
            host="small-box",
            site="root/x",
            clock=clock,
            limits=ResourceLimits(
                disk_bytes=2000, max_replicas=2,
                bandwidth_bytes_per_sec=50, bandwidth_window=10.0,
            ),
        )

    def make_doc(self, make_owner, name, size):
        owner = make_owner(name, {"blob.bin": b"x" * size})
        return owner, owner.publish(validity=3600)

    def test_disk_enforced_at_create(self, limited_server, make_owner):
        owner, doc = self.make_doc(make_owner, "vu.nl/big", 3000)
        with pytest.raises(ResourceExceeded):
            limited_server.create_replica(doc, owner.public_key, "owner")
        assert limited_server.replica_count == 0

    def test_within_limits_accepted(self, limited_server, make_owner):
        owner, doc = self.make_doc(make_owner, "vu.nl/ok", 1500)
        limited_server.create_replica(doc, owner.public_key, "owner")
        assert limited_server.resources.disk_used == 1500

    def test_destroy_frees_disk(self, limited_server, make_owner):
        owner, doc = self.make_doc(make_owner, "vu.nl/a", 1500)
        hosted = limited_server.create_replica(doc, owner.public_key, "owner")
        limited_server.destroy_replica(hosted.replica_id, owner.public_key)
        owner2, doc2 = self.make_doc(make_owner, "vu.nl/b", 1800)
        limited_server.create_replica(doc2, owner2.public_key, "owner2")

    def test_update_enforced(self, limited_server, make_owner):
        owner, doc = self.make_doc(make_owner, "vu.nl/grow", 1000)
        limited_server.create_replica(doc, owner.public_key, "owner")
        owner.put_element(PageElement("blob.bin", b"y" * 2500))
        with pytest.raises(ResourceExceeded):
            limited_server.update_replica(owner.publish(validity=3600), owner.public_key)

    def test_bandwidth_enforced_on_serve(self, limited_server, make_owner, clock):
        owner, doc = self.make_doc(make_owner, "vu.nl/pop", 400)
        hosted = limited_server.create_replica(doc, owner.public_key, "owner")
        limited_server.rpc_get_element(hosted.replica_id, "blob.bin")  # 400 B
        with pytest.raises(ResourceExceeded):
            limited_server.rpc_get_element(hosted.replica_id, "blob.bin")  # 800 > 500
        clock.advance(11.0)
        limited_server.rpc_get_element(hosted.replica_id, "blob.bin")  # window slid

    def test_quote_rpc(self, limited_server):
        quote = limited_server.rpc_quote()
        assert quote["host"] == "small-box"
        assert quote["site"] == "root/x"
        assert quote["limits"]["disk_bytes"] == 2000
