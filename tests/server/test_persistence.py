"""Object-server durability: crash recovery, re-verification, fail-closed.

The crash model throughout: "restart" means constructing a fresh
``ObjectServer`` over the same ``data_dir`` — nothing survives but the
disk, exactly as after a process kill.
"""

from __future__ import annotations

import os
import zlib

import pytest

from repro.errors import RecoveryIntegrityError
from repro.server.objectserver import ObjectServer
from repro.server.persistence import ServerStateStore
from repro.revocation.statement import RevocationStatement
from repro.storage.wal import FRAME_HEADER
from repro.util.encoding import canonical_bytes, from_canonical_bytes
from tests.conftest import EPOCH, fast_keys


def make_server(tmp_path, clock):
    return ObjectServer(
        host="ginger",
        site="root/europe/vu",
        clock=clock,
        data_dir=str(tmp_path),
        storage_sync=False,
    )


@pytest.fixture
def signed_doc(make_owner):
    owner = make_owner("vu.nl/doc", {"index.html": b"content", "a.png": b"img"})
    return owner, owner.publish(validity=3600)


def rewrite_wal(path, mutate):
    """Re-frame every WAL record after passing it through *mutate*.

    Frames are rebuilt with correct lengths and CRCs, so the result is a
    *CRC-valid* log — the tampering only the signature re-checks can see.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    out = bytearray()
    offset = 0
    while offset < len(data):
        length, _ = FRAME_HEADER.unpack_from(data, offset)
        start = offset + FRAME_HEADER.size
        record = from_canonical_bytes(data[start : start + length])
        mutate(record)
        payload = canonical_bytes(record)
        out += FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        out += payload
        offset = start + length
    with open(path, "wb") as fh:
        fh.write(bytes(out))


class TestRecovery:
    def test_cold_start_is_empty(self, tmp_path, clock):
        server = make_server(tmp_path, clock)
        assert server.replica_count == 0
        assert server.recovered_replicas == 0
        server.close()

    def test_replica_and_keystore_survive_restart(self, tmp_path, clock, signed_doc):
        owner, doc = signed_doc
        server = make_server(tmp_path, clock)
        server.keystore.authorize("owner", owner.public_key)
        server.create_replica(doc, owner.public_key, "owner")
        server.close()

        restarted = make_server(tmp_path, clock)
        assert restarted.recovered_replicas == 1
        assert restarted.reverified_replicas == 1
        assert restarted.keystore.is_authorized(owner.public_key)
        assert restarted.hosts_oid(doc.oid.hex)
        hosted = restarted._replicas[restarted._by_oid[doc.oid.hex]]
        assert hosted.lr.get_element("index.html").content == b"content"
        assert hosted.creator_label == "owner"
        assert hosted.creator_key_der == owner.public_key.der
        restarted.close()

    def test_destroy_survives_restart(self, tmp_path, clock, signed_doc):
        owner, doc = signed_doc
        server = make_server(tmp_path, clock)
        hosted = server.create_replica(doc, owner.public_key, "owner")
        server.destroy_replica(hosted.replica_id, owner.public_key)
        server.close()

        restarted = make_server(tmp_path, clock)
        assert restarted.recovered_replicas == 0
        assert not restarted.hosts_oid(doc.oid.hex)
        restarted.close()

    def test_update_survives_restart(self, tmp_path, clock, make_owner):
        owner = make_owner("vu.nl/doc", {"index.html": b"v1"})
        doc = owner.publish(validity=3600)
        server = make_server(tmp_path, clock)
        server.create_replica(doc, owner.public_key, "owner")
        from repro.globedoc.element import PageElement

        owner.put_element(PageElement("index.html", b"v2 content"))
        newdoc = owner.publish(validity=3600)
        server.update_replica(newdoc, owner.public_key)
        server.close()

        restarted = make_server(tmp_path, clock)
        hosted = restarted._replicas[restarted._by_oid[doc.oid.hex]]
        assert hosted.lr.get_element("index.html").content == b"v2 content"
        restarted.close()

    def test_keystore_revocation_survives_restart(self, tmp_path, clock, signed_doc):
        """Revoking an entity destroys its replicas durably: the restart
        must not resurrect what the revocation tore down."""
        owner, doc = signed_doc
        server = make_server(tmp_path, clock)
        server.keystore.authorize("owner", owner.public_key)
        server.create_replica(doc, owner.public_key, "owner")
        server.revoke_entity(owner.public_key)
        server.close()

        restarted = make_server(tmp_path, clock)
        assert not restarted.keystore.is_authorized(owner.public_key)
        assert not restarted.hosts_oid(doc.oid.hex)
        assert restarted.recovered_replicas == 0
        restarted.close()

    def test_revocation_feed_survives_restart(self, tmp_path, clock, signed_doc):
        owner, doc = signed_doc
        server = make_server(tmp_path, clock)
        statement = RevocationStatement.revoke_key(
            owner.keys, doc.oid, serial=1, issued_at=EPOCH, reason="compromise"
        )
        server.revocation_feed.publish(statement)
        server.close()

        restarted = make_server(tmp_path, clock)
        assert restarted.revocation_feed.head == 1
        assert restarted.revocation_feed.recovered == 1
        assert restarted.revocation_feed.max_serial(doc.oid.hex) == 1
        restarted.close()

    def test_recovery_survives_compaction(self, tmp_path, clock, make_owner):
        """State recovered from a snapshot (not just a journal replay)
        carries the same replicas, re-verified the same way."""
        server = make_server(tmp_path, clock)
        owners = []
        for i in range(3):
            owner = make_owner(f"vu.nl/doc{i}", {"p.html": f"page {i}".encode()})
            server.create_replica(owner.publish(validity=3600), owner.public_key, "o")
            owners.append(owner)
        server.state_store.compact(server._durable_state())
        assert server.state_store.store.journal_length == 0
        server.close()

        restarted = make_server(tmp_path, clock)
        assert restarted.recovered_replicas == 3
        assert restarted.reverified_replicas == 3
        for i, owner in enumerate(owners):
            hosted = restarted._replicas[restarted._by_oid[owner.oid.hex]]
            assert hosted.lr.get_element("p.html").content == f"page {i}".encode()
        restarted.close()


class TestFailClosed:
    def test_tampered_content_refused(self, tmp_path, clock, signed_doc):
        """CRC-valid tampering: the element bytes are swapped and every
        frame re-checksummed, so only the recovery-time signature check
        stands between the attacker and the serve path. It must hold."""
        owner, doc = signed_doc
        server = make_server(tmp_path, clock)
        server.create_replica(doc, owner.public_key, "owner")
        server.close()

        def swap_content(record):
            document = record.get("__record__", {}).get("document")
            if document:
                for element in document["elements"]:
                    if element["name"] == "index.html":
                        element["content"] = b"evil!!!"

        rewrite_wal(os.path.join(str(tmp_path), "server", "wal.log"), swap_content)
        with pytest.raises(RecoveryIntegrityError, match="unproven bytes"):
            make_server(tmp_path, clock)

    def test_swapped_public_key_refused(self, tmp_path, clock, signed_doc):
        """A key that does not hash to the OID breaks self-certification
        — the recovered replica must not be installed."""
        owner, doc = signed_doc
        server = make_server(tmp_path, clock)
        server.create_replica(doc, owner.public_key, "owner")
        server.close()

        attacker = fast_keys()

        def swap_key(record):
            document = record.get("__record__", {}).get("document")
            if document:
                document["public_key_der"] = attacker.public.der

        rewrite_wal(os.path.join(str(tmp_path), "server", "wal.log"), swap_key)
        with pytest.raises(RecoveryIntegrityError, match="does not hash to its OID"):
            make_server(tmp_path, clock)

    def test_unknown_journal_op_refused(self, tmp_path, clock):
        store = ServerStateStore(str(tmp_path), sync=False)
        store.store.append({"op": "install-backdoor"})
        store.close()
        reopened = ServerStateStore(str(tmp_path), sync=False)
        with pytest.raises(RecoveryIntegrityError, match="unknown operation"):
            reopened.recover()
        reopened.close()

    def test_tampered_feed_statement_refused(self, tmp_path, clock, signed_doc):
        """A revocation statement whose signature no longer verifies
        means the feed store was rewritten — recovery must not produce a
        poisoned log."""
        owner, doc = signed_doc
        server = make_server(tmp_path, clock)
        statement = RevocationStatement.revoke_key(
            owner.keys, doc.oid, serial=1, issued_at=EPOCH, reason="compromise"
        )
        server.revocation_feed.publish(statement)
        server.close()

        def retarget(record):
            statement_dict = record.get("__record__", {}).get("statement")
            if statement_dict:
                statement_dict["body"]["reason"] = "haha benign actually"

        rewrite_wal(os.path.join(str(tmp_path), "feed", "wal.log"), retarget)
        with pytest.raises(RecoveryIntegrityError, match="poisoned log"):
            make_server(tmp_path, clock)

    def test_torn_server_journal_recovers_prefix(self, tmp_path, clock, make_owner):
        """A torn tail costs the unflushed suffix, never the prefix — and
        never admits a half-written replica."""
        owners = []
        server = make_server(tmp_path, clock)
        for i in range(2):
            owner = make_owner(f"vu.nl/doc{i}", {"p.html": f"page {i}".encode()})
            server.create_replica(owner.publish(validity=3600), owner.public_key, "o")
            owners.append(owner)
        server.close()

        wal_path = os.path.join(str(tmp_path), "server", "wal.log")
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as fh:
            fh.truncate(size - 7)  # rip the tail off the last frame
        restarted = make_server(tmp_path, clock)
        assert restarted.recovered_replicas == 1
        assert restarted.hosts_oid(owners[0].oid.hex)
        assert not restarted.hosts_oid(owners[1].oid.hex)
        restarted.close()
