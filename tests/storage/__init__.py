"""Durable storage layer: WAL, snapshots, and their composition."""
