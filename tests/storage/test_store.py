"""DurableStore: absolute sequencing, compaction, crash-ordering safety."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.store import DurableStore


def make_store(tmp_path, **kwargs):
    kwargs.setdefault("sync", False)
    return DurableStore(str(tmp_path), **kwargs)


class TestJournal:
    def test_cold_start(self, tmp_path):
        store = make_store(tmp_path)
        recovered = store.recover()
        assert recovered.cold
        assert recovered.snapshot is None
        assert recovered.records == []
        assert store.seq == 0

    def test_append_assigns_absolute_seqs(self, tmp_path):
        store = make_store(tmp_path)
        assert store.append({"op": "a"}) == 1
        assert store.append({"op": "b"}) == 2
        assert store.seq == 2
        assert store.journal_length == 2

    def test_recover_replays_journal(self, tmp_path):
        store = make_store(tmp_path)
        store.append({"op": "a"})
        store.append({"op": "b"})
        store.close()
        recovered = make_store(tmp_path).recover()
        assert recovered.snapshot is None
        assert recovered.records == [{"op": "a"}, {"op": "b"}]
        assert not recovered.cold


class TestCompaction:
    def test_compact_checkpoints_and_resets_journal(self, tmp_path):
        store = make_store(tmp_path)
        store.append({"op": "a"})
        store.append({"op": "b"})
        store.compact({"state": "ab"})
        assert store.journal_length == 0
        store.append({"op": "c"})
        assert store.seq == 3  # seqs are absolute, surviving compaction
        store.close()
        recovered = make_store(tmp_path).recover()
        assert recovered.snapshot == {"state": "ab"}
        assert recovered.records == [{"op": "c"}]

    def test_maybe_compact_threshold(self, tmp_path):
        store = make_store(tmp_path, compact_every=3)
        states = []

        def state_fn():
            states.append(store.seq)
            return {"at": store.seq}

        for i in range(2):
            store.append({"i": i})
            assert store.maybe_compact(state_fn) is False
        store.append({"i": 2})
        assert store.maybe_compact(state_fn) is True
        assert states == [3]
        assert store.journal_length == 0

    def test_maybe_compact_disabled(self, tmp_path):
        store = make_store(tmp_path, compact_every=None)
        for i in range(10):
            store.append({"i": i})
        assert store.maybe_compact(lambda: {}) is False
        assert store.journal_length == 10

    def test_compact_every_validated(self, tmp_path):
        with pytest.raises(StorageError, match="positive"):
            make_store(tmp_path, compact_every=0)


class TestCrashOrdering:
    def test_stale_journal_after_snapshot_skipped(self, tmp_path):
        """Crash between snapshot write and journal truncate: the journal
        still holds records at seqs ≤ the snapshot — they must not be
        replayed on top of the state that already includes them."""
        store = make_store(tmp_path)
        store.append({"op": "a"})
        store.append({"op": "b"})
        # Simulate the crash: snapshot lands, journal truncate never runs.
        store.snapshots.write(store.seq, {"state": "ab"})
        store.close()
        recovered = make_store(tmp_path).recover()
        assert recovered.snapshot == {"state": "ab"}
        assert recovered.records == []

    def test_journal_suffix_past_snapshot_replays(self, tmp_path):
        store = make_store(tmp_path)
        store.append({"op": "a"})
        store.snapshots.write(1, {"state": "a"})
        store.append({"op": "b"})  # seq 2, past the snapshot
        store.close()
        recovered = make_store(tmp_path).recover()
        assert recovered.snapshot == {"state": "a"}
        assert recovered.records == [{"op": "b"}]

    def test_seq_resumes_past_stale_journal(self, tmp_path):
        store = make_store(tmp_path)
        store.append({"op": "a"})
        store.append({"op": "b"})
        store.snapshots.write(store.seq, {"state": "ab"})
        store.close()
        reopened = make_store(tmp_path)
        assert reopened.seq == 2
        assert reopened.append({"op": "c"}) == 3

    def test_torn_tail_reported_through_recover(self, tmp_path):
        store = make_store(tmp_path)
        store.append({"op": "a"})
        store.append({"op": "b"})
        store.close()
        import os

        wal_path = os.path.join(str(tmp_path), "wal.log")
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as fh:
            fh.truncate(size - 3)
        recovered = make_store(tmp_path).recover()
        assert recovered.records == [{"op": "a"}]
        assert recovered.torn_bytes_dropped > 0
