"""Torn-write recovery, exhaustively: every byte offset of the tail.

The crash model behind the WAL's open-time scan is a write that stopped
at an arbitrary byte (power loss mid-``write``) or a sector that came
back wrong (bit rot, partial flush). This suite drives both models over
*every* byte position and pins the recovery contract from ISSUE 7:

* recovery drops **exactly** the torn suffix,
* a valid prefix record is **never** discarded,
* torn bytes are **never** surfaced to callers (no partially decoded
  record, no garbage record, nothing past the first bad frame).
"""

from __future__ import annotations

import os

from repro.storage.wal import FRAME_HEADER, WriteAheadLog
from repro.util.encoding import canonical_bytes

#: Distinct, small records so the whole-file sweeps stay fast while the
#: payloads (bytes + nesting) exercise the canonical codec.
RECORDS = [
    {"i": 0, "payload": b"alpha"},
    {"i": 1, "payload": b"bravo-longer"},
    {"i": 2, "nested": {"deep": [1, 2, 3]}},
    {"i": 3, "payload": b"\x00\x01\x02\x03"},
    {"i": 4, "payload": b"tail record"},
]


def build_log(tmp_path):
    """A WAL holding RECORDS; returns (path, file bytes, frame boundaries).

    ``boundaries[k]`` is the byte offset where record *k*'s frame ends —
    ``boundaries[0] == 0`` is the empty prefix.
    """
    path = os.path.join(str(tmp_path), "wal.log")
    boundaries = [0]
    with WriteAheadLog(path, sync=False) as wal:
        for record in RECORDS:
            wal.append(record)
            boundaries.append(
                boundaries[-1]
                + FRAME_HEADER.size
                + len(canonical_bytes(record))
            )
    with open(path, "rb") as fh:
        data = fh.read()
    assert len(data) == boundaries[-1]
    return path, data, boundaries


def valid_prefix_count(boundaries, size):
    """How many whole frames fit in the first *size* bytes."""
    count = 0
    while count + 1 < len(boundaries) and boundaries[count + 1] <= size:
        count += 1
    return count


class TestTruncationAtEveryOffset:
    def test_every_truncation_point(self, tmp_path):
        """Cut the file at every byte length; recovery must keep exactly
        the whole frames before the cut and report the rest as torn."""
        path, data, boundaries = build_log(tmp_path)
        for size in range(len(data) + 1):
            with open(path, "wb") as fh:
                fh.write(data[:size])
            wal = WriteAheadLog(path, sync=False)
            keep = valid_prefix_count(boundaries, size)
            assert wal.records() == RECORDS[:keep], f"truncated at {size}"
            assert wal.torn_bytes_dropped == size - boundaries[keep], (
                f"truncated at {size}: wrong torn accounting"
            )
            # The file itself was healed back to the frame boundary.
            assert os.path.getsize(path) == boundaries[keep]
            wal.close()

    def test_append_after_torn_recovery(self, tmp_path):
        """A healed log accepts appends; the new record lands where the
        torn bytes were, and a further reopen sees a clean log."""
        path, data, boundaries = build_log(tmp_path)
        with open(path, "wb") as fh:
            fh.write(data[: boundaries[3] + 5])  # record 3 torn mid-frame
        wal = WriteAheadLog(path, sync=False)
        assert wal.records() == RECORDS[:3]
        wal.append({"i": "replacement"})
        wal.close()
        reopened = WriteAheadLog(path, sync=False)
        assert reopened.records() == RECORDS[:3] + [{"i": "replacement"}]
        assert reopened.torn_bytes_dropped == 0
        reopened.close()


class TestCorruptionAtEveryOffset:
    def test_flip_every_byte_of_trailing_frame(self, tmp_path):
        """Flip each byte of the final frame in turn: whatever the byte's
        role (length, CRC, payload), recovery drops exactly the final
        record and keeps every earlier one."""
        path, data, boundaries = build_log(tmp_path)
        tail_start = boundaries[-2]
        for offset in range(tail_start, len(data)):
            corrupted = bytearray(data)
            corrupted[offset] ^= 0xFF
            with open(path, "wb") as fh:
                fh.write(bytes(corrupted))
            wal = WriteAheadLog(path, sync=False)
            records = wal.records()
            wal.close()
            assert records == RECORDS[:-1], f"flip at {offset}"
            # Nothing fabricated: the recovered list is a strict prefix of
            # what was written — torn bytes never became a record.
            for recovered, original in zip(records, RECORDS):
                assert recovered == original

    def test_mid_log_corruption_drops_suffix_only(self, tmp_path):
        """A bad sector in the middle ends the log there: the frames
        before it survive, everything after (even though its own frames
        are intact) is dropped rather than trusted past a gap."""
        path, data, boundaries = build_log(tmp_path)
        offset = boundaries[2] + FRAME_HEADER.size + 1  # record 2 payload
        corrupted = bytearray(data)
        corrupted[offset] ^= 0x01
        with open(path, "wb") as fh:
            fh.write(bytes(corrupted))
        wal = WriteAheadLog(path, sync=False)
        assert wal.records() == RECORDS[:2]
        assert wal.torn_bytes_dropped == len(data) - boundaries[2]
        wal.close()

    def test_corrupt_first_frame_loses_all_serves_nothing(self, tmp_path):
        path, data, _ = build_log(tmp_path)
        corrupted = bytearray(data)
        corrupted[FRAME_HEADER.size] ^= 0xFF  # first payload byte
        with open(path, "wb") as fh:
            fh.write(bytes(corrupted))
        wal = WriteAheadLog(path, sync=False)
        assert wal.records() == []
        assert wal.torn_bytes_dropped == len(data)
        wal.close()
