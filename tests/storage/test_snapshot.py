"""Snapshot store: atomic checkpoints, fallback on corruption, GC."""

from __future__ import annotations

import os

import pytest

from repro.errors import StorageError
from repro.storage.snapshot import SnapshotStore

STATE_A = {"counter": 1, "blob": b"alpha"}
STATE_B = {"counter": 2, "blob": b"beta", "extra": [1, 2]}


class TestWriteAndLoad:
    def test_round_trip(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.write(7, STATE_A)
        assert store.load_latest() == (7, STATE_A)

    def test_empty_directory_loads_none(self, tmp_path):
        assert SnapshotStore(str(tmp_path)).load_latest() is None

    def test_newest_snapshot_wins(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.write(3, STATE_A)
        store.write(9, STATE_B)
        assert store.load_latest() == (9, STATE_B)

    def test_negative_seq_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="non-negative"):
            SnapshotStore(str(tmp_path)).write(-1, STATE_A)

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(StorageError, match="at least one"):
            SnapshotStore(str(tmp_path), keep=0)


class TestCorruptionFallback:
    def test_corrupt_newest_falls_back_to_predecessor(self, tmp_path):
        """A crash mid-checkpoint must cost the checkpoint, not the store."""
        store = SnapshotStore(str(tmp_path))
        store.write(3, STATE_A)
        path = store.write(9, STATE_B)
        with open(path, "r+b") as fh:
            fh.seek(12)
            byte = fh.read(1)
            fh.seek(12)
            fh.write(bytes([byte[0] ^ 0xFF]))
        assert store.load_latest() == (3, STATE_A)

    def test_truncated_newest_falls_back(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.write(3, STATE_A)
        path = store.write(9, STATE_B)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        assert store.load_latest() == (3, STATE_A)

    def test_all_corrupt_loads_none(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=1)
        path = store.write(5, STATE_A)
        with open(path, "wb") as fh:
            fh.write(b"shredded")
        assert store.load_latest() is None


class TestGarbageCollection:
    def test_keeps_newest_n(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=2)
        for seq in (1, 2, 3, 4):
            store.write(seq, {"seq": seq})
        assert len(store) == 2
        assert store.load_latest() == (4, {"seq": 4})

    def test_stray_tmp_files_removed(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        stray = os.path.join(str(tmp_path), "snapshot-000000000099.bin.tmp")
        with open(stray, "wb") as fh:
            fh.write(b"half-written")
        store.write(1, STATE_A)
        assert not os.path.exists(stray)

    def test_foreign_files_ignored(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        with open(os.path.join(str(tmp_path), "wal.log"), "wb") as fh:
            fh.write(b"not a snapshot")
        store.write(2, STATE_A)
        assert store.load_latest() == (2, STATE_A)
        assert os.path.exists(os.path.join(str(tmp_path), "wal.log"))
