"""The write-ahead log: framing, durability discipline, reopen semantics."""

from __future__ import annotations

import os
import zlib

import pytest

from repro.errors import StorageError
from repro.storage.wal import FRAME_HEADER, MAX_RECORD_BYTES, WriteAheadLog
from repro.util.encoding import canonical_bytes

RECORDS = [
    {"op": "a", "n": 1},
    {"op": "b", "payload": b"\x00\xffbinary"},
    {"op": "c", "nested": {"list": [1, 2, 3], "s": "text"}},
]


def wal_path(tmp_path):
    return os.path.join(str(tmp_path), "wal.log")


class TestAppendAndReopen:
    def test_round_trip(self, tmp_path):
        with WriteAheadLog(wal_path(tmp_path), sync=False) as wal:
            for i, record in enumerate(RECORDS):
                assert wal.append(record) == i
            assert wal.records() == RECORDS
        reopened = WriteAheadLog(wal_path(tmp_path), sync=False)
        assert reopened.records() == RECORDS
        assert reopened.torn_bytes_dropped == 0
        reopened.close()

    def test_append_after_reopen_continues(self, tmp_path):
        with WriteAheadLog(wal_path(tmp_path), sync=False) as wal:
            wal.append(RECORDS[0])
        with WriteAheadLog(wal_path(tmp_path), sync=False) as wal:
            assert wal.append(RECORDS[1]) == 1
            assert wal.records() == RECORDS[:2]

    def test_iteration_and_len(self, tmp_path):
        with WriteAheadLog(wal_path(tmp_path), sync=False) as wal:
            for record in RECORDS:
                wal.append(record)
            assert list(wal) == RECORDS
            assert len(wal) == len(RECORDS)

    def test_records_returns_copy(self, tmp_path):
        with WriteAheadLog(wal_path(tmp_path), sync=False) as wal:
            wal.append(RECORDS[0])
            wal.records().append("intruder")
            assert wal.records() == [RECORDS[0]]

    def test_creates_parent_directory(self, tmp_path):
        path = os.path.join(str(tmp_path), "deep", "nested", "wal.log")
        with WriteAheadLog(path, sync=False) as wal:
            wal.append(RECORDS[0])
        assert os.path.exists(path)

    def test_empty_file_is_empty_log(self, tmp_path):
        open(wal_path(tmp_path), "wb").close()
        with WriteAheadLog(wal_path(tmp_path), sync=False) as wal:
            assert wal.records() == []
            assert wal.torn_bytes_dropped == 0


class TestDurabilityDiscipline:
    def test_sync_append_reaches_disk_bytes(self, tmp_path):
        with WriteAheadLog(wal_path(tmp_path), sync=True) as wal:
            wal.append(RECORDS[0])
            payload = canonical_bytes(RECORDS[0])
            expected = FRAME_HEADER.size + len(payload)
            assert os.path.getsize(wal_path(tmp_path)) == expected

    def test_flush_forces_buffered_appends(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), sync=False)
        wal.append(RECORDS[0])
        wal.flush()
        assert os.path.getsize(wal_path(tmp_path)) > 0
        wal.close()

    def test_truncate_drops_everything_durably(self, tmp_path):
        with WriteAheadLog(wal_path(tmp_path), sync=False) as wal:
            for record in RECORDS:
                wal.append(record)
            wal.truncate()
            assert wal.records() == []
            assert os.path.getsize(wal_path(tmp_path)) == 0
            wal.append(RECORDS[2])
        reopened = WriteAheadLog(wal_path(tmp_path), sync=False)
        assert reopened.records() == [RECORDS[2]]
        reopened.close()


class TestLimitsAndLifecycle:
    def test_oversized_record_rejected(self, tmp_path):
        with WriteAheadLog(wal_path(tmp_path), sync=False) as wal:
            with pytest.raises(StorageError, match="frame limit"):
                wal.append({"blob": b"x" * (MAX_RECORD_BYTES + 1)})
            # The refused append left no partial frame behind.
            assert os.path.getsize(wal_path(tmp_path)) == 0

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), sync=False)
        wal.close()
        with pytest.raises(StorageError, match="closed"):
            wal.append(RECORDS[0])
        with pytest.raises(StorageError, match="closed"):
            wal.truncate()

    def test_double_close_is_noop(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), sync=False)
        wal.close()
        wal.close()


class TestForeignBytes:
    def test_crc_valid_but_undecodable_frame_stops_scan(self, tmp_path):
        """A frame whose payload passes its CRC but is not canonical
        encoding was not written by this WAL — corruption starts there."""
        with WriteAheadLog(wal_path(tmp_path), sync=False) as wal:
            wal.append(RECORDS[0])
        garbage = b"\xde\xad\xbe\xef not canonical"
        frame = FRAME_HEADER.pack(len(garbage), zlib.crc32(garbage) & 0xFFFFFFFF)
        with open(wal_path(tmp_path), "ab") as fh:
            fh.write(frame + garbage)
        reopened = WriteAheadLog(wal_path(tmp_path), sync=False)
        assert reopened.records() == [RECORDS[0]]
        assert reopened.torn_bytes_dropped == FRAME_HEADER.size + len(garbage)
        reopened.close()

    def test_absurd_length_prefix_is_torn_not_allocated(self, tmp_path):
        with WriteAheadLog(wal_path(tmp_path), sync=False) as wal:
            wal.append(RECORDS[0])
        with open(wal_path(tmp_path), "ab") as fh:
            fh.write(FRAME_HEADER.pack(0xFFFFFFFF, 0) + b"tiny")
        reopened = WriteAheadLog(wal_path(tmp_path), sync=False)
        assert reopened.records() == [RECORDS[0]]
        assert reopened.torn_bytes_dropped == FRAME_HEADER.size + 4
        reopened.close()
