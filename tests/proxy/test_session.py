"""Secure sessions: binding establishment, caching, fetch verification."""

from __future__ import annotations

import pytest

from repro.errors import BindingError, TransportError
from repro.globedoc.urls import HybridUrl
from repro.net.address import ContactAddress, Endpoint
from repro.proxy.binding import BoundObject
from repro.proxy.metrics import AccessTimer
from repro.proxy.session import SecureSession
from repro.server.localrep import ProxyLR
from tests.proxy.conftest import ELEMENTS

#: A host that exists in the testbed but runs no object server there —
#: every RPC to it dies with a clean TransportError.
DEAD = ContactAddress(
    endpoint=Endpoint(host="ginger.cs.vu.nl", service="crashed-objectserver"),
    replica_id="dead",
)


def make_session(stack, published, testbed, **kwargs) -> SecureSession:
    timer = AccessTimer(testbed.clock)
    bound = stack.binder.bind(HybridUrl.parse(published.url("index.html")), timer)
    return SecureSession(binder=stack.binder, checker=stack.checker, bound=bound, **kwargs)


def rebound(stack, bound: BoundObject, addresses, index: int) -> BoundObject:
    """The same object, bound to an explicit address list."""
    return BoundObject(
        oid=bound.oid,
        addresses=list(addresses),
        address_index=index,
        lr=ProxyLR(stack.binder.rpc, addresses[index]),
    )


class TestEstablish:
    def test_establish_verifies_binding(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        verified = session.establish(AccessTimer(testbed.clock))
        assert verified.oid == published.owner.oid
        assert verified.public_key == published.owner.public_key
        verified.integrity.verify_signature(published.owner.public_key)

    def test_cached_binding_reused(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        t1 = AccessTimer(testbed.clock)
        first = session.establish(t1)
        t2 = AccessTimer(testbed.clock)
        second = session.establish(t2)
        assert first is second
        assert t2.finish().total == 0.0  # no network activity on reuse

    def test_uncached_repeats_exchange(self, stack, published, testbed):
        session = make_session(stack, published, testbed, cache_binding=False)
        session.fetch("index.html")
        assert session.verified is None  # dropped after each fetch


class TestFetch:
    def test_fetch_verified_content(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        result = session.fetch("index.html")
        assert result.content == ELEMENTS["index.html"]
        assert result.metrics.total > 0
        assert result.metrics.security_time > 0

    def test_fetch_both_elements(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        assert session.fetch("img/logo.png").content == ELEMENTS["img/logo.png"]
        assert session.fetch("index.html").content == ELEMENTS["index.html"]

    def test_second_fetch_cheaper_with_cache(self, stack, published, testbed):
        """The ~2 KB key+certificate exchange happens once per binding."""
        session = make_session(stack, published, testbed)
        first = session.fetch("index.html").metrics
        second = session.fetch("index.html").metrics
        assert second.total < first.total
        assert second.phase_time("get_public_key") == 0.0
        assert second.phase_time("get_integrity_certificate") == 0.0

    def test_unknown_element_fails_consistency(self, stack, published, testbed):
        from repro.errors import ConsistencyError, RpcError

        session = make_session(stack, published, testbed)
        with pytest.raises((ConsistencyError, RpcError)):
            session.fetch("ghost.html")

    def test_invalidate_forces_reestablish(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        session.fetch("index.html")
        session.invalidate()
        result = session.fetch("index.html")
        assert result.metrics.phase_time("get_public_key") > 0


class TestFailover:
    """Transport faults trigger the same rebind path as security
    violations — and a new replica is always re-verified from scratch."""

    def test_establish_fails_over_on_transport_error(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        good = session.bound.addresses
        session.bound = rebound(stack, session.bound, [DEAD] + good, 0)
        verified = session.establish(AccessTimer(testbed.clock))
        assert verified.oid == published.owner.oid
        assert session.failovers == 1
        assert str(session.bound.address) == str(good[0])

    def test_midfetch_failover_reverifies_binding(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        session.fetch("index.html")  # warm: binding verified and cached
        good = session.bound.addresses
        session.bound = rebound(stack, session.bound, [DEAD] + good, 0)
        result = session.fetch("index.html")
        assert result.content == ELEMENTS["index.html"]
        assert session.failovers == 1
        # The cached binding was NOT reused: the replacement replica's
        # key and certificate were fetched and verified afresh.
        assert result.metrics.phase_time("get_public_key") > 0
        assert result.metrics.phase_time("get_integrity_certificate") > 0
        assert result.metrics.resilience is not None
        assert result.metrics.resilience.failovers == 1

    def test_exhaustion_chains_binding_failure(self, stack, published, testbed):
        """Regression: when rebinding has nowhere left to go, the caller
        sees the operational root cause with the binding exhaustion
        attached as ``__cause__`` — not a bare swallowed error."""
        session = make_session(stack, published, testbed)
        # Every genuine address is already in the tried list, so the
        # widened lookup yields nothing fresh.
        all_tried = list(session.bound.addresses) + [DEAD]
        session.bound = rebound(stack, session.bound, all_tried, len(all_tried) - 1)
        with pytest.raises(TransportError) as excinfo:
            session.establish(AccessTimer(testbed.clock))
        assert isinstance(excinfo.value.__cause__, BindingError)

    def test_unexpected_rebind_error_propagates(
        self, stack, published, testbed, monkeypatch
    ):
        """Regression: only binding-layer failures are folded into the
        original error; a genuine bug in rebinding must surface as-is."""
        session = make_session(stack, published, testbed)
        session.bound = rebound(stack, session.bound, [DEAD], 0)

        def broken_rebind(bound):
            raise RuntimeError("rebind bug")

        monkeypatch.setattr(stack.binder, "rebind", broken_rebind)
        with pytest.raises(RuntimeError, match="rebind bug"):
            session.establish(AccessTimer(testbed.clock))

    def test_max_rebinds_zero_disables_failover(self, stack, published, testbed):
        session = make_session(stack, published, testbed, max_rebinds=0)
        good = session.bound.addresses
        session.bound = rebound(stack, session.bound, [DEAD] + good, 0)
        with pytest.raises(TransportError):
            session.establish(AccessTimer(testbed.clock))
        assert session.failovers == 0
