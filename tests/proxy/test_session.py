"""Secure sessions: binding establishment, caching, fetch verification."""

from __future__ import annotations

import pytest

from repro.globedoc.urls import HybridUrl
from repro.proxy.metrics import AccessTimer
from repro.proxy.session import SecureSession
from tests.proxy.conftest import ELEMENTS


def make_session(stack, published, testbed, **kwargs) -> SecureSession:
    timer = AccessTimer(testbed.clock)
    bound = stack.binder.bind(HybridUrl.parse(published.url("index.html")), timer)
    return SecureSession(binder=stack.binder, checker=stack.checker, bound=bound, **kwargs)


class TestEstablish:
    def test_establish_verifies_binding(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        verified = session.establish(AccessTimer(testbed.clock))
        assert verified.oid == published.owner.oid
        assert verified.public_key == published.owner.public_key
        verified.integrity.verify_signature(published.owner.public_key)

    def test_cached_binding_reused(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        t1 = AccessTimer(testbed.clock)
        first = session.establish(t1)
        t2 = AccessTimer(testbed.clock)
        second = session.establish(t2)
        assert first is second
        assert t2.finish().total == 0.0  # no network activity on reuse

    def test_uncached_repeats_exchange(self, stack, published, testbed):
        session = make_session(stack, published, testbed, cache_binding=False)
        session.fetch("index.html")
        assert session.verified is None  # dropped after each fetch


class TestFetch:
    def test_fetch_verified_content(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        result = session.fetch("index.html")
        assert result.content == ELEMENTS["index.html"]
        assert result.metrics.total > 0
        assert result.metrics.security_time > 0

    def test_fetch_both_elements(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        assert session.fetch("img/logo.png").content == ELEMENTS["img/logo.png"]
        assert session.fetch("index.html").content == ELEMENTS["index.html"]

    def test_second_fetch_cheaper_with_cache(self, stack, published, testbed):
        """The ~2 KB key+certificate exchange happens once per binding."""
        session = make_session(stack, published, testbed)
        first = session.fetch("index.html").metrics
        second = session.fetch("index.html").metrics
        assert second.total < first.total
        assert second.phase_time("get_public_key") == 0.0
        assert second.phase_time("get_integrity_certificate") == 0.0

    def test_unknown_element_fails_consistency(self, stack, published, testbed):
        from repro.errors import ConsistencyError, RpcError

        session = make_session(stack, published, testbed)
        with pytest.raises((ConsistencyError, RpcError)):
            session.fetch("ghost.html")

    def test_invalidate_forces_reestablish(self, stack, published, testbed):
        session = make_session(stack, published, testbed)
        session.fetch("index.html")
        session.invalidate()
        result = session.fetch("index.html")
        assert result.metrics.phase_time("get_public_key") > 0
