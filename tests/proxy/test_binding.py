"""Binding: name → OID → contact address → LR installation (Fig. 1)."""

from __future__ import annotations

import pytest

from repro.errors import BindingError, NameNotFound, ObjectNotFound
from repro.globedoc.urls import HybridUrl
from repro.proxy.metrics import AccessTimer
from tests.proxy.conftest import ELEMENTS


class TestResolveOid:
    def test_name_form_resolves(self, stack, published, testbed):
        timer = AccessTimer(testbed.clock)
        url = HybridUrl.parse(published.url("index.html"))
        oid = stack.binder.resolve_oid(url, timer)
        assert oid == published.owner.oid
        assert timer.finish().phase_time("resolve_name") > 0

    def test_oid_form_skips_naming(self, stack, published, testbed):
        timer = AccessTimer(testbed.clock)
        url = HybridUrl.for_oid(published.owner.oid, "index.html")
        oid = stack.binder.resolve_oid(url, timer)
        assert oid == published.owner.oid
        assert timer.finish().phase_time("resolve_name") == 0

    def test_passthrough_url_rejected(self, stack, testbed):
        timer = AccessTimer(testbed.clock)
        with pytest.raises(BindingError):
            stack.binder.resolve_oid(HybridUrl.parse("http://x.com/a"), timer)

    def test_unknown_name(self, stack, testbed):
        timer = AccessTimer(testbed.clock)
        with pytest.raises(NameNotFound):
            stack.binder.resolve_oid(HybridUrl.for_name("ghost.example"), timer)


class TestBind:
    def test_bind_installs_lr(self, stack, published, testbed):
        timer = AccessTimer(testbed.clock)
        bound = stack.binder.bind(HybridUrl.parse(published.url("index.html")), timer)
        assert bound.oid == published.owner.oid
        assert bound.lr.get_element("index.html").content == ELEMENTS["index.html"]
        metrics = timer.finish()
        assert metrics.phase_time("find_replica") > 0

    def test_bind_unknown_oid(self, stack, testbed, shared_keys):
        from repro.globedoc.oid import ObjectId

        timer = AccessTimer(testbed.clock)
        phantom = ObjectId.from_public_key(shared_keys.public)
        with pytest.raises(ObjectNotFound):
            stack.binder.bind(HybridUrl.for_oid(phantom, "x.html"), timer)

    def test_rebind_without_alternative(self, stack, published, testbed):
        timer = AccessTimer(testbed.clock)
        bound = stack.binder.bind(HybridUrl.parse(published.url("index.html")), timer)
        assert not bound.has_alternative
        with pytest.raises(BindingError, match="exhausted"):
            stack.binder.rebind(bound)

    def test_rebind_moves_to_next_address(self, stack, published, testbed):
        timer = AccessTimer(testbed.clock)
        bound = stack.binder.bind(HybridUrl.parse(published.url("index.html")), timer)
        # Fabricate a second address as the location service would return.
        bound.addresses.append(bound.addresses[0])
        rebound = stack.binder.rebind(bound)
        assert rebound.address_index == 1
        assert rebound.oid == bound.oid
