"""Binding: name → OID → contact address → LR installation (Fig. 1)."""

from __future__ import annotations

import pytest

from repro.errors import BindingError, NameNotFound, ObjectNotFound
from repro.globedoc.urls import HybridUrl
from repro.net.address import ContactAddress, Endpoint
from repro.net.health import ReplicaHealthTracker
from repro.proxy.binding import Binder
from repro.proxy.metrics import AccessTimer
from tests.proxy.conftest import ELEMENTS


class TestResolveOid:
    def test_name_form_resolves(self, stack, published, testbed):
        timer = AccessTimer(testbed.clock)
        url = HybridUrl.parse(published.url("index.html"))
        oid = stack.binder.resolve_oid(url, timer)
        assert oid == published.owner.oid
        assert timer.finish().phase_time("resolve_name") > 0

    def test_oid_form_skips_naming(self, stack, published, testbed):
        timer = AccessTimer(testbed.clock)
        url = HybridUrl.for_oid(published.owner.oid, "index.html")
        oid = stack.binder.resolve_oid(url, timer)
        assert oid == published.owner.oid
        assert timer.finish().phase_time("resolve_name") == 0

    def test_passthrough_url_rejected(self, stack, testbed):
        timer = AccessTimer(testbed.clock)
        with pytest.raises(BindingError):
            stack.binder.resolve_oid(HybridUrl.parse("http://x.com/a"), timer)

    def test_unknown_name(self, stack, testbed):
        timer = AccessTimer(testbed.clock)
        with pytest.raises(NameNotFound):
            stack.binder.resolve_oid(HybridUrl.for_name("ghost.example"), timer)


class TestBind:
    def test_bind_installs_lr(self, stack, published, testbed):
        timer = AccessTimer(testbed.clock)
        bound = stack.binder.bind(HybridUrl.parse(published.url("index.html")), timer)
        assert bound.oid == published.owner.oid
        assert bound.lr.get_element("index.html").content == ELEMENTS["index.html"]
        metrics = timer.finish()
        assert metrics.phase_time("find_replica") > 0

    def test_bind_unknown_oid(self, stack, testbed, shared_keys):
        from repro.globedoc.oid import ObjectId

        timer = AccessTimer(testbed.clock)
        phantom = ObjectId.from_public_key(shared_keys.public)
        with pytest.raises(ObjectNotFound):
            stack.binder.bind(HybridUrl.for_oid(phantom, "x.html"), timer)

    def test_rebind_without_alternative(self, stack, published, testbed):
        timer = AccessTimer(testbed.clock)
        bound = stack.binder.bind(HybridUrl.parse(published.url("index.html")), timer)
        assert not bound.has_alternative
        with pytest.raises(BindingError, match="exhausted"):
            stack.binder.rebind(bound)

    def test_rebind_moves_to_next_address(self, stack, published, testbed):
        timer = AccessTimer(testbed.clock)
        bound = stack.binder.bind(HybridUrl.parse(published.url("index.html")), timer)
        # Fabricate a second address as the location service would return.
        bound.addresses.append(bound.addresses[0])
        rebound = stack.binder.rebind(bound)
        assert rebound.address_index == 1
        assert rebound.oid == bound.oid


class TestHealthAwareBinding:
    def health_binder(self, stack, testbed):
        health = ReplicaHealthTracker(clock=testbed.clock, failure_threshold=3)
        inner = stack.binder
        return Binder(inner.resolver, inner.location, inner.rpc, health=health), health

    def test_note_replica_failure_without_tracker_is_noop(
        self, stack, published, testbed
    ):
        bound = stack.binder.bind(
            HybridUrl.parse(published.url("index.html")), AccessTimer(testbed.clock)
        )
        stack.binder.note_replica_failure(bound)  # must not raise

    def test_note_replica_failure_charges_current_address(
        self, stack, published, testbed
    ):
        binder, health = self.health_binder(stack, testbed)
        bound = binder.bind(
            HybridUrl.parse(published.url("index.html")), AccessTimer(testbed.clock)
        )
        binder.note_replica_failure(bound)
        assert health.record(str(bound.address)).consecutive_failures == 1

    def test_quarantine_never_blocks_the_only_replica(
        self, stack, published, testbed
    ):
        """The tracker demotes ordering, it never refuses addresses —
        with a single replica the document must stay reachable."""
        binder, health = self.health_binder(stack, testbed)
        url = HybridUrl.parse(published.url("index.html"))
        bound = binder.bind(url, AccessTimer(testbed.clock))
        for _ in range(3):
            binder.note_replica_failure(bound)
        assert health.is_quarantined(str(bound.address))
        again = binder.bind(url, AccessTimer(testbed.clock))
        assert str(again.address) == str(bound.address)

    def test_bind_sinks_quarantined_address(self, stack, published, testbed):
        """With two registered replicas, whichever one is quarantined is
        ordered behind the healthy one at bind time."""
        binder, health = self.health_binder(stack, testbed)
        url = HybridUrl.parse(published.url("index.html"))
        oid = published.owner.oid
        real = binder.bind(url, AccessTimer(testbed.clock)).address
        phantom = ContactAddress(
            endpoint=Endpoint("sporty.cs.vu.nl", "phantom-objectserver"),
            replica_id="phantom",
        )
        site = "root/europe/vu"  # same site as the primary replica
        testbed.location_service.tree.insert(oid.hex, site, phantom)
        binder.location.cache.invalidate(oid.hex)
        try:
            for _ in range(3):
                health.record_failure(str(real))
            bound = binder.bind(url, AccessTimer(testbed.clock))
            assert str(bound.address) == str(phantom)
            assert len(bound.addresses) == 2  # the quarantined one stays listed

            health.reset()
            for _ in range(3):
                health.record_failure(str(phantom))
            bound = binder.bind(url, AccessTimer(testbed.clock))
            assert str(bound.address) == str(real)
        finally:
            binder.location.unregister_replica(oid, site, phantom)
