"""The eighth check: ``check_frontier`` verifies a served delta set.

End-to-end coverage lives in tests/versioning and the attack matrix;
here the check is exercised directly against the ``SecurityChecker`` so
span attribution, grant/revocation handling, and certificate validation
are pinned down at the unit level.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    BranchWithholdingError,
    RevokedWriterError,
    UnauthorizedWriterError,
)
from repro.globedoc.oid import ObjectId
from repro.obs import RingBufferSink, Tracer
from repro.proxy.checks import SecurityChecker
from repro.proxy.metrics import AccessTimer
from repro.sim.clock import SimClock
from repro.versioning import DeltaDag, DocumentWriter, WriterGrant, merge_deltas

from tests.conftest import EPOCH, fast_keys


@pytest.fixture(scope="module")
def owner_keys():
    return fast_keys()


@pytest.fixture(scope="module")
def oid(owner_keys):
    return ObjectId.from_public_key(owner_keys.public)


@pytest.fixture
def clock():
    return SimClock(EPOCH)


@pytest.fixture
def world(owner_keys, oid, clock):
    keys = fast_keys()
    writer = DocumentWriter(keys, "alice", oid, clock)
    grant = WriterGrant.issue(
        owner_keys, oid, "alice", keys.public, granted_at=clock.now()
    )
    dag = DeltaDag()
    writer.put(dag, "body", b"unit-test body")
    ring = RingBufferSink()
    checker = SecurityChecker(clock, tracer=Tracer(clock=clock, sinks=[ring]))
    return {
        "checker": checker, "writer": writer, "grant": grant, "dag": dag,
        "ring": ring, "owner_key": owner_keys.public, "oid": oid,
        "timer": AccessTimer(clock),
    }


def run_check(world, **overrides):
    kwargs = {
        "grants": [world["grant"]],
        "deltas": world["dag"].deltas,
        "known_frontier": None,
        "frontier_cert": None,
        "served_ids": None,
    }
    kwargs.update(overrides)
    return world["checker"].check_frontier(
        world["oid"], world["owner_key"], kwargs["grants"], kwargs["deltas"],
        world["timer"],
        known_frontier=kwargs["known_frontier"],
        frontier_cert=kwargs["frontier_cert"],
        served_ids=kwargs["served_ids"],
    )


class TestCheckFrontier:
    def test_genuine_set_verifies_and_merges(self, world):
        verified = run_check(world)
        assert verified.merged.elements["body"].content == b"unit-test body"
        assert verified.dag.heads() == world["dag"].heads()

    def test_span_and_counter_attributed(self, world):
        run_check(world)
        spans = world["ring"].named("check.frontier")
        assert spans and not spans[-1].is_error

    def test_ungranted_delta_rejected(self, world):
        with pytest.raises(UnauthorizedWriterError):
            run_check(world, grants=[])

    def test_revoked_writer_rejected(self, world, clock):
        class Condemning:
            def check(self, oid):
                return None

            def revoked_writers(self, oid):
                return {"alice"}

        world["checker"].revocation_checker = Condemning()
        with pytest.raises(RevokedWriterError):
            run_check(world)

    def test_known_head_missing_from_served_set_rejected(self, world):
        frontier = world["dag"].frontier()
        with pytest.raises(BranchWithholdingError):
            run_check(world, known_frontier=frontier, served_ids=set())

    def test_known_head_present_in_served_set_passes(self, world):
        frontier = world["dag"].frontier()
        run_check(
            world,
            known_frontier=frontier,
            served_ids=set(world["dag"].delta_ids),
        )

    def test_frontier_cert_digest_mismatch_rejected(self, world):
        merged = merge_deltas(world["dag"].deltas, oid_hex=world["oid"].hex)
        cert = world["writer"].certify_frontier(merged)
        # Advance the document past the certificate: the cert's digest
        # no longer recomputes from its claimed heads' ancestry — but
        # certifying a *prefix* is legitimate, so first check a genuine
        # old cert still passes, then break the digest by forging heads.
        run_check(world, frontier_cert=cert)
        world["writer"].put(world["dag"], "body", b"newer")
        run_check(world, frontier_cert=cert)  # honest prefix cert: fine

    def test_unauthorized_cert_signer_rejected(self, world, clock):
        mallory = DocumentWriter(fast_keys(), "mallory", world["oid"], clock)
        merged = merge_deltas(world["dag"].deltas, oid_hex=world["oid"].hex)
        cert = mallory.certify_frontier(merged)
        with pytest.raises(UnauthorizedWriterError):
            run_check(world, frontier_cert=cert)


class TestGrantLifecycles:
    """Lapsed grants are skipped (fail-safe); re-key grants accumulate."""

    def lapsed_grant(self, owner_keys, oid, clock, keys=None):
        keys = keys if keys is not None else fast_keys()
        return keys, WriterGrant.issue(
            owner_keys, oid, "carol", keys.public,
            granted_at=clock.now() - 100.0, not_after=clock.now() - 50.0,
        )

    def test_lapsed_grant_is_skipped_not_fatal(self, world, owner_keys, clock):
        """Regression: one expired grant in the served bundle must not
        condemn the whole read — it simply grants nothing."""
        _, lapsed = self.lapsed_grant(owner_keys, world["oid"], clock)
        verified = run_check(world, grants=[world["grant"], lapsed])
        assert verified.merged.elements["body"].content == b"unit-test body"

    def test_delta_under_lapsed_grant_rejected_as_unauthorized(
        self, world, owner_keys, oid, clock
    ):
        keys, lapsed = self.lapsed_grant(owner_keys, oid, clock)
        carol = DocumentWriter(keys, "carol", oid, clock)
        carol.put(world["dag"], "extra", b"too-late")
        with pytest.raises(UnauthorizedWriterError):
            run_check(
                world,
                grants=[world["grant"], lapsed],
                deltas=world["dag"].deltas,
            )

    def test_rekeyed_writer_any_grant_covers_its_deltas(
        self, world, owner_keys, oid, clock
    ):
        """Regression: after an owner re-key, deltas under the old key
        and the new key both verify — each against its own grant."""
        new_keys = fast_keys()
        rekey = WriterGrant.issue(
            owner_keys, oid, "alice", new_keys.public, granted_at=clock.now()
        )
        rekeyed = DocumentWriter(new_keys, "alice", oid, clock)
        rekeyed.put(world["dag"], "body", b"after-rekey")
        verified = run_check(
            world,
            grants=[world["grant"], rekey],
            deltas=world["dag"].deltas,
        )
        assert verified.merged.elements["body"].content == b"after-rekey"
