"""The concurrent access pipeline: coalescing, prefetch, speculation."""

from __future__ import annotations

import threading

import pytest

from repro.errors import TransportError
from repro.globedoc.urls import HybridUrl
from repro.net.address import Endpoint
from repro.net.rpc import BatchCall, BatchOutcome
from repro.obs import MetricsRegistry
from repro.proxy.pipeline import (
    AccessScheduler,
    PipelineConfig,
    PrefetchingRpcClient,
    SingleFlight,
)
from tests.proxy.conftest import ELEMENTS

TARGET = Endpoint(host="replica.example", service="objectserver")


class TestSingleFlight:
    def test_waiters_get_the_leaders_object(self):
        flight = SingleFlight()
        gate = threading.Event()
        entered = threading.Barrier(3)
        calls = []

        def fetch():
            calls.append(1)
            gate.wait(timeout=5.0)
            return {"payload": "hot"}

        results = [None] * 3

        def worker(i):
            entered.wait(timeout=5.0)
            results[i] = flight.do("oid-7", fetch)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        # All three are inside do(); exactly one runs fetch.
        while flight.leaders + flight.waiters < 3:
            pass
        gate.set()
        for t in threads:
            t.join(timeout=5.0)
        assert len(calls) == 1
        assert results[0] is results[1] is results[2]
        assert flight.leaders == 1
        assert flight.waiters == 2

    def test_exception_propagates_to_waiters(self):
        flight = SingleFlight()
        gate = threading.Event()

        def fetch():
            gate.wait(timeout=5.0)
            raise TransportError("replica down")

        errors = []

        def worker():
            try:
                flight.do("k", fetch)
            except TransportError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        while flight.leaders + flight.waiters < 2:
            pass
        gate.set()
        for t in threads:
            t.join(timeout=5.0)
        assert len(errors) == 2

    def test_key_released_after_landing(self):
        flight = SingleFlight()
        calls = []
        for _ in range(2):
            flight.do("k", lambda: calls.append(1))
        assert len(calls) == 2  # dedupes in-flight work only
        assert flight.leaders == 2
        assert flight.waiters == 0

    def test_waiter_counter_metric(self):
        metrics = MetricsRegistry()
        flight = SingleFlight(metrics=metrics)
        gate = threading.Event()
        threads = [
            threading.Thread(target=lambda: flight.do("k", lambda: gate.wait(5.0)))
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        while flight.leaders + flight.waiters < 3:
            pass
        gate.set()
        for t in threads:
            t.join(timeout=5.0)
        assert metrics.counter("coalesce_waiters_total").value == 2.0


class FakeInner:
    """Inner RPC client that records traffic and can fail chosen ops."""

    def __init__(self):
        self.transport = object()
        self.direct_ops = []
        self.waves = []
        self.fail_ops = set()
        self.counters = "inner-counters"

    def call(self, target, op, **args):
        self.direct_ops.append(op)
        return ("wire", op, tuple(sorted(args.items())))

    def call_many(self, calls, window=8):
        self.waves.append(list(calls))
        outcomes = []
        for call in calls:
            if call.op in self.fail_ops:
                outcomes.append(BatchOutcome(call=call, error=TransportError("down")))
            else:
                outcomes.append(
                    BatchOutcome(
                        call=call,
                        value=("wire", call.op, tuple(sorted(call.args.items()))),
                    )
                )
        return outcomes


def get_element(name):
    return BatchCall(TARGET, "globedoc.get_element", {"name": name})


class TestPrefetchingRpcClient:
    def test_parked_result_served_then_consumed(self):
        inner = FakeInner()
        client = PrefetchingRpcClient(inner)
        assert client.prefetch([get_element("a")]) == 1
        value = client.call(TARGET, "globedoc.get_element", name="a")
        assert value == ("wire", "globedoc.get_element", (("name", "a"),))
        assert client.counters_pipeline.prefetch_hits == 1
        # Pop-on-use: the second identical call goes to the wire.
        client.call(TARGET, "globedoc.get_element", name="a")
        assert inner.direct_ops == ["globedoc.get_element"]
        assert client.counters_pipeline.prefetch_misses == 1

    def test_peek_does_not_consume(self):
        client = PrefetchingRpcClient(FakeInner())
        client.prefetch([get_element("a")])
        first = client.peek(TARGET, "globedoc.get_element", name="a")
        second = client.peek(TARGET, "globedoc.get_element", name="a")
        assert first is second is not None
        assert len(client) == 1

    def test_clear_drops_everything(self):
        client = PrefetchingRpcClient(FakeInner())
        client.prefetch([get_element("a"), get_element("b")])
        assert len(client) == 2
        client.clear()
        assert len(client) == 0
        assert client.peek(TARGET, "globedoc.get_element", name="a") is None

    def test_duplicate_calls_coalesce_in_one_wave(self):
        inner = FakeInner()
        metrics = MetricsRegistry()
        client = PrefetchingRpcClient(inner, metrics=metrics)
        parked = client.prefetch(
            [get_element("hot"), get_element("hot"), get_element("hot")]
        )
        assert parked == 1
        assert len(inner.waves[0]) == 1  # one RPC on the wire
        assert client.counters_pipeline.coalesced_calls == 2
        assert metrics.counter("coalesce_hits_total").value == 2.0

    def test_failures_are_not_parked(self):
        inner = FakeInner()
        inner.fail_ops.add("globedoc.get_element")
        client = PrefetchingRpcClient(inner)
        assert client.prefetch([get_element("a")]) == 0
        assert len(client) == 0
        # The replay re-issues the call and sees the failure first-hand.
        inner.fail_ops.clear()
        client.call(TARGET, "globedoc.get_element", name="a")
        assert inner.direct_ops == ["globedoc.get_element"]

    def test_idempotent_miss_goes_through_single_flight(self):
        client = PrefetchingRpcClient(FakeInner())
        client.call(TARGET, "globedoc.get_element", name="a")
        assert client._flight.leaders == 1
        client.call(TARGET, "admin.execute", command="x")
        assert client._flight.leaders == 1  # writes bypass coalescing

    def test_rpc_client_surface_forwards(self):
        inner = FakeInner()
        client = PrefetchingRpcClient(inner)
        assert client.transport is inner.transport
        assert client.counters == "inner-counters"
        outcomes = client.call_many([get_element("a")])
        assert outcomes[0].ok


@pytest.fixture
def pipelined(testbed, published):
    return testbed.client_stack("sporty.cs.vu.nl", pipeline=PipelineConfig())


class TestAccessScheduler:
    def test_pipelined_matches_sequential(self, stack, published, pipelined):
        urls = [published.url("index.html"), published.url("img/logo.png")]
        expected = stack.proxy.handle_many(urls)
        actual = pipelined.proxy.handle_many(urls)
        for want, got in zip(expected, actual):
            assert got.status == want.status == 200
            assert got.content == want.content
            assert got.content_type == want.content_type

    def test_duplicate_urls_share_one_response_object(self, published, pipelined):
        url = published.url("index.html")
        before = pipelined.scheduler.counters.coalesced_responses
        responses = pipelined.proxy.handle_many([url, url, url])
        assert responses[0] is responses[1] is responses[2]
        assert responses[0].content == ELEMENTS["index.html"]
        assert pipelined.scheduler.counters.coalesced_responses - before == 2

    def test_non_globedoc_urls_pass_through(self, published, pipelined):
        responses = pipelined.proxy.handle_many(
            [
                "http://ginger.cs.vu.nl/ghost",
                published.url("index.html"),
                "ftp://weird",
            ]
        )
        assert responses[0].status == 404
        assert responses[1].status == 200
        assert responses[2].status == 400

    def test_speculation_hits_on_second_batch(self, published, pipelined):
        scheduler = pipelined.scheduler
        url = published.url("index.html")
        pipelined.proxy.handle_many([url])  # learns the name → OID hint
        pipelined.proxy.drop_all_sessions()
        before = scheduler.counters.speculations
        responses = pipelined.proxy.handle_many([url])
        assert responses[0].status == 200
        assert scheduler.counters.speculations == before + 1
        assert scheduler.counters.mispredictions == 0

    def test_stale_hint_is_repaired(self, testbed, published, pipelined):
        from repro.globedoc.element import PageElement
        from repro.globedoc.owner import DocumentOwner
        from tests.conftest import fast_keys

        decoy_owner = DocumentOwner(
            "vu.nl/decoy", keys=fast_keys(), clock=testbed.clock
        )
        decoy_owner.put_element(PageElement("index.html", b"<html>decoy</html>"))
        decoy = testbed.publish(decoy_owner)

        scheduler = pipelined.scheduler
        url = published.url("index.html")
        name = HybridUrl.parse(url).object_name
        pipelined.proxy.handle_many([url])
        pipelined.proxy.drop_all_sessions()
        scheduler._oid_hints[name] = decoy.owner.oid  # poison the hint
        before = scheduler.counters.mispredictions
        responses = pipelined.proxy.handle_many([url])
        assert responses[0].status == 200
        assert responses[0].content == ELEMENTS["index.html"]  # not the decoy
        assert scheduler.counters.mispredictions == before + 1
        # The repaired hint now points at the real object.
        assert scheduler._oid_hints[name] == published.owner.oid

    def test_multi_element_batch_prefetches_once_per_element(
        self, published, pipelined
    ):
        pipelined.proxy.drop_all_sessions()
        urls = [
            published.url("index.html"),
            published.url("img/logo.png"),
            published.url("index.html"),
        ]
        responses = pipelined.proxy.handle_many(urls)
        assert [r.status for r in responses] == [200, 200, 200]
        assert responses[0] is responses[2]
        assert responses[1].content == ELEMENTS["img/logo.png"]
