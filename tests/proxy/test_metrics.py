"""Access timers and the security/base decomposition."""

from __future__ import annotations

import pytest

from repro.proxy.metrics import (
    SECURITY_PHASES,
    AccessMetrics,
    AccessTimer,
    FastPathStats,
    ResilienceStats,
)
from repro.sim.clock import SimClock


class TestAccessTimer:
    def test_phase_measures_clock_delta(self):
        clock = SimClock(0.0)
        timer = AccessTimer(clock)
        with timer.phase("get_page_element"):
            clock.advance(2.0)
        metrics = timer.finish()
        assert metrics.phase_time("get_page_element") == pytest.approx(2.0)

    def test_charge_direct(self):
        timer = AccessTimer(SimClock(0.0))
        timer.charge("client_processing", 0.5)
        assert timer.finish().total == pytest.approx(0.5)

    def test_negative_charge_rejected(self):
        timer = AccessTimer(SimClock(0.0))
        with pytest.raises(ValueError):
            timer.charge("x", -1.0)

    def test_phase_records_on_exception(self):
        clock = SimClock(0.0)
        timer = AccessTimer(clock)
        with pytest.raises(RuntimeError):
            with timer.phase("verify_certificate"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        assert timer.finish().phase_time("verify_certificate") == pytest.approx(1.0)

    def test_record_resilience_accumulates(self):
        timer = AccessTimer(SimClock(0.0))
        assert timer.finish().resilience is None
        timer.record_resilience(ResilienceStats(retries=1, backoff_seconds=0.1))
        timer.record_resilience(ResilienceStats(failovers=1, quarantines=1))
        stats = timer.finish().resilience
        assert stats == ResilienceStats(
            retries=1, failovers=1, quarantines=1, backoff_seconds=0.1
        )
        assert stats.any_degradation
        assert not ResilienceStats(backoff_seconds=1.0).any_degradation

    def test_record_fastpath_accumulates(self):
        timer = AccessTimer(SimClock(0.0))
        assert timer.finish().fastpath is None
        timer.record_fastpath(FastPathStats(verify_hits=1, saved_us=10.0))
        timer.record_fastpath(
            FastPathStats(verify_misses=2, encode_misses=3, saved_us=5.0)
        )
        stats = timer.finish().fastpath
        assert stats == FastPathStats(
            verify_hits=1, verify_misses=2, encode_misses=3, saved_us=15.0
        )
        assert stats.verify_hit_rate == pytest.approx(1 / 3)

    def test_fastpath_and_resilience_addition_is_associative(self):
        f1 = FastPathStats(verify_hits=1, verify_misses=2, saved_us=10.0)
        f2 = FastPathStats(encode_hits=3, saved_us=5.0)
        f3 = FastPathStats(verify_hits=4, encode_misses=1)
        assert (f1 + f2) + f3 == f1 + (f2 + f3)
        r1 = ResilienceStats(retries=1, backoff_seconds=0.25)
        r2 = ResilienceStats(failovers=2)
        r3 = ResilienceStats(quarantines=1, backoff_seconds=0.5)
        assert (r1 + r2) + r3 == r1 + (r2 + r3)


class TestAccessMetrics:
    def make(self):
        return AccessMetrics(
            phases=(
                ("resolve_name", 1.0),
                ("get_page_element", 3.0),
                ("get_public_key", 0.5),
                ("verify_element_hash", 0.5),
            )
        )

    def test_total(self):
        assert self.make().total == pytest.approx(5.0)

    def test_security_split(self):
        metrics = self.make()
        assert metrics.security_time == pytest.approx(1.0)
        assert metrics.base_time == pytest.approx(4.0)
        assert metrics.overhead_percent == pytest.approx(20.0)

    def test_empty_metrics(self):
        empty = AccessMetrics(phases=())
        assert empty.total == 0.0
        assert empty.overhead_fraction == 0.0

    def test_by_phase_aggregates_repeats(self):
        metrics = AccessMetrics(phases=(("a", 1.0), ("a", 2.0)))
        assert metrics.by_phase() == {"a": 3.0}

    def test_merged(self):
        merged = self.make().merged_with(AccessMetrics(phases=(("extra", 1.0),)))
        assert merged.total == pytest.approx(6.0)

    def test_merged_combines_fastpath(self):
        left = AccessMetrics(
            phases=(("a", 1.0),),
            fastpath=FastPathStats(verify_hits=2, verify_misses=1, saved_us=50.0),
        )
        right = AccessMetrics(
            phases=(("b", 1.0),),
            fastpath=FastPathStats(verify_hits=3, encode_hits=4, saved_us=25.0),
        )
        merged = left.merged_with(right)
        assert merged.fastpath == FastPathStats(
            verify_hits=5, verify_misses=1, encode_hits=4, saved_us=75.0
        )
        # One side without counters: the other side's survive unchanged.
        bare = AccessMetrics(phases=(("c", 1.0),))
        assert left.merged_with(bare).fastpath == left.fastpath
        assert bare.merged_with(left).fastpath == left.fastpath
        assert bare.merged_with(bare).fastpath is None

    def test_merged_combines_resilience(self):
        left = AccessMetrics(
            phases=(("a", 1.0),),
            resilience=ResilienceStats(retries=2, backoff_seconds=0.3),
        )
        right = AccessMetrics(
            phases=(("b", 1.0),),
            resilience=ResilienceStats(retries=1, failovers=1, quarantines=1),
        )
        merged = left.merged_with(right)
        assert merged.resilience == ResilienceStats(
            retries=3, failovers=1, quarantines=1, backoff_seconds=0.3
        )
        bare = AccessMetrics(phases=(("c", 1.0),))
        assert left.merged_with(bare).resilience == left.resilience
        assert bare.merged_with(left).resilience == left.resilience
        assert bare.merged_with(bare).resilience is None

    def test_merged_with_is_associative(self):
        """Multi-element accesses merge pairwise in whatever order the
        proxy composes them; the grouping must not change the result."""
        a = AccessMetrics(
            phases=(("resolve_name", 1.0),),
            fastpath=FastPathStats(verify_hits=1, saved_us=10.0),
            resilience=ResilienceStats(retries=1),
        )
        b = AccessMetrics(
            phases=(("get_page_element", 2.0),),
            fastpath=FastPathStats(verify_misses=2, encode_hits=1),
        )
        c = AccessMetrics(
            phases=(("verify_element_hash", 0.5),),
            resilience=ResilienceStats(failovers=1, backoff_seconds=0.2),
        )
        left = a.merged_with(b).merged_with(c)
        right = a.merged_with(b.merged_with(c))
        assert left == right
        assert left.total == pytest.approx(3.5)
        assert left.fastpath == FastPathStats(
            verify_hits=1, verify_misses=2, encode_hits=1, saved_us=10.0
        )
        assert left.resilience == ResilienceStats(
            retries=1, failovers=1, backoff_seconds=0.2
        )

    def test_merged_with_associative_when_middle_side_is_bare(self):
        a = AccessMetrics(
            phases=(("a", 1.0),), fastpath=FastPathStats(verify_hits=1)
        )
        bare = AccessMetrics(phases=(("b", 1.0),))
        c = AccessMetrics(
            phases=(("c", 1.0),), fastpath=FastPathStats(encode_misses=1)
        )
        assert a.merged_with(bare).merged_with(c) == a.merged_with(
            bare.merged_with(c)
        )

    def test_security_phase_list_matches_paper(self):
        """§4 enumerates the security-specific operations; our phase set
        must cover them: key retrieval, OID hash check, certificate
        retrieval + verification, element hash computation."""
        for phase in (
            "get_public_key",
            "verify_public_key",
            "get_integrity_certificate",
            "verify_certificate",
            "verify_element_hash",
        ):
            assert phase in SECURITY_PHASES
        # Transfer of the element itself is NOT security overhead.
        assert "get_page_element" not in SECURITY_PHASES
        assert "resolve_name" not in SECURITY_PHASES
        assert "find_replica" not in SECURITY_PHASES
