"""The proxy facade: URL handling, sessions, passthrough, failure pages."""

from __future__ import annotations

import pytest

from repro.globedoc.urls import HybridUrl
from tests.proxy.conftest import ELEMENTS


class TestGlobedocRequests:
    def test_name_form(self, stack, published):
        response = stack.proxy.handle(published.url("index.html"))
        assert response.ok
        assert response.content == ELEMENTS["index.html"]
        assert response.content_type == "text/html"
        assert response.metrics is not None

    def test_oid_form(self, stack, published):
        url = HybridUrl.for_oid(published.owner.oid, "img/logo.png").raw
        response = stack.proxy.handle(url)
        assert response.ok
        assert response.content == ELEMENTS["img/logo.png"]
        assert response.content_type == "image/png"

    def test_session_reuse_across_requests(self, stack, published):
        proxy = stack.fresh_proxy()
        proxy.handle(published.url("index.html"))
        assert proxy.session_count == 1
        proxy.handle(published.url("img/logo.png"))
        assert proxy.session_count == 1  # same object, same session

    def test_unknown_name_is_404(self, stack):
        response = stack.proxy.handle("globe://ghost.example/index.html")
        assert response.status == 404
        assert b"Not Found" in response.content or b"Document Not Found" in response.content

    def test_unknown_element_is_failure(self, stack, published):
        response = stack.proxy.handle(published.url("ghost.html"))
        assert response.status in (403, 404)
        assert not response.ok

    def test_malformed_url_is_400(self, stack):
        assert stack.proxy.handle("ftp://weird").status == 400

    def test_request_counters(self, stack, published):
        proxy = stack.fresh_proxy()
        proxy.handle(published.url("index.html"))
        proxy.handle("globe://ghost.example/index.html")
        assert proxy.request_count == 2
        assert proxy.failure_count == 1

    def test_drop_sessions(self, stack, published):
        proxy = stack.fresh_proxy()
        proxy.handle(published.url("index.html"))
        proxy.drop_all_sessions()
        assert proxy.session_count == 0


class TestPassthrough:
    def test_plain_http_forwarded(self, testbed, stack, published):
        """§4: the proxy transparently handles regular HTTP requests."""
        response = stack.proxy.handle(
            f"http://ginger.cs.vu.nl/{published.name}/index.html"
        )
        assert response.ok
        assert response.content == ELEMENTS["index.html"]
        assert response.metrics is None  # no security pipeline ran

    def test_passthrough_404(self, stack):
        response = stack.proxy.handle("http://ginger.cs.vu.nl/ghost")
        assert response.status == 404

    def test_passthrough_unreachable_host(self, stack):
        response = stack.proxy.handle("http://nowhere.example/x")
        assert response.status == 502


class TestIdentityDisplay:
    def test_certified_as(self, testbed, session_ca):
        """§3.1.2: the proxy displays the certified name when the object
        presents a proof from a CA in the user's trust store."""
        from repro.crypto.identity import TrustStore
        from repro.globedoc.element import PageElement
        from repro.globedoc.owner import DocumentOwner
        from tests.conftest import fast_keys

        owner = DocumentOwner("vu.nl/shop", keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"<html>buy</html>"))
        owner.request_identity_certificate(session_ca)
        published = testbed.publish(owner)

        store = TrustStore()
        store.add_ca(session_ca)
        stack = testbed.client_stack("sporty.cs.vu.nl", trust_store=store)
        response = stack.proxy.handle(published.url("index.html"))
        assert response.ok
        assert response.certified_as == "vu.nl/shop"

    def test_no_trust_store_no_certified_name(self, stack, published):
        response = stack.proxy.handle(published.url("index.html"))
        assert response.certified_as is None
