"""The verified-content cache and its session/proxy integration."""

from __future__ import annotations

import pytest

from repro.globedoc.element import PageElement
from repro.proxy.contentcache import ContentCache
from repro.sim.clock import SimClock

OID = "aa" * 20


class TestContentCache:
    def test_put_get(self):
        cache = ContentCache(clock=SimClock(0.0), ttl=60.0)
        cache.put(OID, PageElement("a.html", b"data"), expires_at=100.0)
        hit = cache.get(OID, "a.html")
        assert hit is not None and hit.content == b"data"

    def test_miss(self):
        cache = ContentCache(clock=SimClock(0.0))
        assert cache.get(OID, "ghost") is None

    def test_certificate_expiry_wins_over_ttl(self):
        clock = SimClock(0.0)
        cache = ContentCache(clock=clock, ttl=1000.0)
        cache.put(OID, PageElement("a.html", b"x"), expires_at=10.0)
        clock.advance(11.0)
        assert cache.get(OID, "a.html") is None  # cert expired, TTL not

    def test_ttl_wins_over_certificate(self):
        clock = SimClock(0.0)
        cache = ContentCache(clock=clock, ttl=10.0)
        cache.put(OID, PageElement("a.html", b"x"), expires_at=1e12)
        clock.advance(11.0)
        assert cache.get(OID, "a.html") is None

    def test_byte_bound_lru_eviction(self):
        cache = ContentCache(clock=SimClock(0.0), max_bytes=100)
        cache.put(OID, PageElement("a", b"x" * 60), expires_at=1e12)
        cache.put(OID, PageElement("b", b"y" * 30), expires_at=1e12)
        cache.get(OID, "a")  # touch a -> b is LRU
        cache.put(OID, PageElement("c", b"z" * 40), expires_at=1e12)
        assert cache.get(OID, "b") is None
        assert cache.get(OID, "a") is not None
        assert cache.bytes_used <= 100

    def test_oversized_element_skipped(self):
        cache = ContentCache(clock=SimClock(0.0), max_bytes=10)
        cache.put(OID, PageElement("big", b"x" * 100), expires_at=1e12)
        assert len(cache) == 0

    def test_invalidate_object(self):
        cache = ContentCache(clock=SimClock(0.0))
        other = "bb" * 20
        cache.put(OID, PageElement("a", b"1"), expires_at=1e12)
        cache.put(OID, PageElement("b", b"2"), expires_at=1e12)
        cache.put(other, PageElement("a", b"3"), expires_at=1e12)
        assert cache.invalidate_object(OID) == 2
        assert cache.get(other, "a") is not None

    def test_hit_rate(self):
        cache = ContentCache(clock=SimClock(0.0))
        cache.put(OID, PageElement("a", b"1"), expires_at=1e12)
        cache.get(OID, "a")
        cache.get(OID, "nope")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            ContentCache(ttl=0)
        with pytest.raises(ValueError):
            ContentCache(max_bytes=0)

    def test_already_expired_put_rejected(self):
        clock = SimClock(100.0)
        cache = ContentCache(clock=clock, ttl=60.0)
        cache.put(OID, PageElement("dead", b"x" * 10), expires_at=100.0)
        cache.put(OID, PageElement("older", b"y" * 10), expires_at=50.0)
        assert len(cache) == 0
        assert cache.bytes_used == 0

    def test_evict_expired_sweep(self):
        clock = SimClock(0.0)
        cache = ContentCache(clock=clock, ttl=1000.0)
        cache.put(OID, PageElement("soon", b"1"), expires_at=10.0)
        cache.put(OID, PageElement("later", b"2"), expires_at=500.0)
        cache.put(OID, PageElement("long", b"3"), expires_at=1e12)
        clock.advance(11.0)
        assert cache.evict_expired() == 1
        assert len(cache) == 2
        assert cache.get(OID, "later") is not None
        # TTL-based death is swept too, not only certificate expiry.
        clock.advance(1000.0)
        assert cache.evict_expired() == 2
        assert cache.bytes_used == 0

    def test_sweep_frees_bytes_without_gets(self):
        clock = SimClock(0.0)
        cache = ContentCache(clock=clock, ttl=1e6, max_bytes=100)
        cache.put(OID, PageElement("dying", b"x" * 90), expires_at=10.0)
        clock.advance(11.0)
        cache.evict_expired()
        # The freed bytes are usable again without any eviction pressure.
        cache.put(OID, PageElement("fresh", b"y" * 90), expires_at=1e12)
        assert cache.get(OID, "fresh") is not None


class TestProxyIntegration:
    def test_cached_fetch_skips_network(self, testbed, published):
        from repro.proxy.clientproxy import GlobeDocProxy

        stack = testbed.client_stack("canardo.inria.fr")
        cache = ContentCache(clock=testbed.clock, ttl=600.0)
        proxy = GlobeDocProxy(
            stack.binder, stack.checker, stack.rpc, content_cache=cache
        )
        url = published.url("index.html")

        first = proxy.handle(url)
        assert first.ok
        requests_after_first = stack.transport.stats.requests

        second = proxy.handle(url)
        assert second.ok
        assert second.content == first.content
        # No network traffic for the cached hit.
        assert stack.transport.stats.requests == requests_after_first
        assert cache.hits == 1

    def test_cache_respects_element_expiry(self):
        # A private testbed: this test advances the clock past expiry,
        # which must not leak into the module-scoped fixtures.
        from repro.globedoc.owner import DocumentOwner
        from repro.harness.experiment import Testbed
        from repro.proxy.clientproxy import GlobeDocProxy
        from tests.conftest import fast_keys

        testbed = Testbed()
        owner = DocumentOwner("vu.nl/short", keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"<html>short-lived</html>"))
        published = testbed.publish(owner, validity=60.0)

        stack = testbed.client_stack("canardo.inria.fr")
        cache = ContentCache(clock=testbed.clock, ttl=1e6)
        proxy = GlobeDocProxy(
            stack.binder, stack.checker, stack.rpc, content_cache=cache
        )
        url = published.url("index.html")
        assert proxy.handle(url).ok
        testbed.clock.advance(61.0)
        stale = proxy.handle(url)
        # The cache refuses the expired entry; the refetch then fails the
        # freshness check against the (equally expired) certificate.
        assert stale.status == 403
        assert stale.security_failure == "FreshnessError"

    def test_cache_hit_is_faster(self, testbed, published):
        from repro.proxy.clientproxy import GlobeDocProxy

        stack = testbed.client_stack("ensamble02.cornell.edu")
        cache = ContentCache(clock=testbed.clock, ttl=600.0)
        proxy = GlobeDocProxy(
            stack.binder, stack.checker, stack.rpc, content_cache=cache
        )
        url = published.url("img/logo.png")
        start = testbed.clock.now()
        proxy.handle(url)
        cold = testbed.clock.now() - start
        start = testbed.clock.now()
        proxy.handle(url)
        warm = testbed.clock.now() - start
        assert warm < cold / 10

    def test_proxy_sweeps_expired_entries_periodically(self):
        from repro.proxy.clientproxy import CACHE_SWEEP_INTERVAL, GlobeDocProxy
        from repro.globedoc.owner import DocumentOwner
        from repro.harness.experiment import Testbed
        from tests.conftest import fast_keys

        testbed = Testbed()
        owner = DocumentOwner("vu.nl/sweep", keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"<html>x</html>"))
        published = testbed.publish(owner, validity=30.0)

        stack = testbed.client_stack("sporty.cs.vu.nl")
        cache = ContentCache(clock=testbed.clock, ttl=1e6)
        proxy = GlobeDocProxy(
            stack.binder, stack.checker, stack.rpc, content_cache=cache
        )
        assert proxy.handle(published.url("index.html")).ok
        assert len(cache) == 1
        testbed.clock.advance(31.0)  # certificate now expired
        # Plain-HTTP requests tick the same request counter, so dead
        # GlobeDoc entries get swept even with no GlobeDoc traffic.
        for _ in range(CACHE_SWEEP_INTERVAL):
            proxy.handle("http://ginger.cs.vu.nl/nothing.html")
        assert len(cache) == 0
