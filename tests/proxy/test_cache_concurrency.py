"""Shared caches under real threads: the pipeline's safety assumptions.

The concurrent access pipeline shares one ``VerificationCache`` and one
``ContentCache`` across request threads. These tests hammer both from
many threads at once and check the invariants the pipeline relies on:
no lost updates corrupt the tables, reads only ever observe values that
were actually stored, and the bookkeeping (entry counts, byte totals,
hit/miss stats) stays consistent once the threads land.
"""

from __future__ import annotations

import threading

from repro.crypto.hashes import SHA256
from repro.crypto.verifycache import VerificationCache
from repro.globedoc.element import PageElement
from repro.proxy.contentcache import ContentCache
from repro.sim.clock import SimClock

THREADS = 8
ROUNDS = 50


def run_threads(worker):
    """Start THREADS copies of *worker(i)* behind one barrier; join all."""
    barrier = threading.Barrier(THREADS)
    failures = []

    def wrapped(i):
        barrier.wait(timeout=10.0)
        try:
            worker(i)
        except Exception as exc:  # surfaced after join, with context
            failures.append((i, exc))

    threads = [
        threading.Thread(target=wrapped, args=(i,), daemon=True)
        for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
    assert not failures, failures


class TestVerificationCacheThreads:
    def test_racing_record_and_lookup_keeps_stats_consistent(self, shared_keys):
        cache = VerificationCache(max_entries=64)
        payloads = [b"payload-%d" % n for n in range(16)]
        signatures = [b"sig-%d" % n for n in range(16)]

        def worker(i):
            for round_no in range(ROUNDS):
                n = (i + round_no) % 16
                cache.record(
                    shared_keys.public, signatures[n], payloads[n], SHA256
                )
                assert cache.lookup(
                    shared_keys.public, signatures[n], payloads[n], SHA256
                )
                # A key nobody records must never report a hit.
                assert not cache.lookup(
                    shared_keys.public, b"ghost-sig", payloads[n], SHA256
                )

        run_threads(worker)
        stats = cache.stats
        assert stats.hits == THREADS * ROUNDS
        assert stats.misses == THREADS * ROUNDS
        assert len(cache._entries) <= cache.max_entries

    def test_eviction_pressure_under_threads(self, shared_keys):
        cache = VerificationCache(max_entries=8)

        def worker(i):
            for round_no in range(ROUNDS):
                signature = b"sig-%d-%d" % (i, round_no)
                cache.record(shared_keys.public, signature, b"payload", SHA256)
                cache.lookup(shared_keys.public, signature, b"payload", SHA256)

        run_threads(worker)
        assert len(cache._entries) <= 8

    def test_expiry_races_do_not_resurrect_entries(self, shared_keys):
        cache = VerificationCache()
        cache.record(
            shared_keys.public, b"sig", b"payload", SHA256, expires_at=10.0
        )

        def worker(i):
            for _ in range(ROUNDS):
                # Past expiry: every thread must see a miss, never a
                # stale hit, no matter who evicts first.
                assert not cache.lookup(
                    shared_keys.public, b"sig", b"payload", SHA256, now=20.0
                )

        run_threads(worker)


class TestContentCacheThreads:
    def test_racing_put_and_get_returns_only_stored_bytes(self):
        clock = SimClock()
        cache = ContentCache(clock=clock, ttl=1000.0)
        contents = {f"e{n}.html": b"content-%d" % n for n in range(8)}

        def worker(i):
            for round_no in range(ROUNDS):
                name = f"e{(i + round_no) % 8}.html"
                cache.put(
                    "oid-1", PageElement(name, contents[name]), expires_at=1000.0
                )
                element = cache.get("oid-1", name)
                if element is not None:
                    assert element.content == contents[name]

        run_threads(worker)
        assert len(cache) <= len(contents)
        assert cache.bytes_used == sum(
            len(cache.get("oid-1", name).content)
            for name in contents
            if cache.get("oid-1", name) is not None
        )

    def test_invalidation_races_with_readers(self):
        clock = SimClock()
        cache = ContentCache(clock=clock, ttl=1000.0)
        element = PageElement("index.html", b"<html>genuine</html>")

        def worker(i):
            for _ in range(ROUNDS):
                if i % 2 == 0:
                    cache.put("oid-1", element, expires_at=1000.0)
                    got = cache.get("oid-1", "index.html")
                    if got is not None:
                        assert got.content == element.content
                else:
                    cache.invalidate_object("oid-1")
                    cache.evict_expired()

        run_threads(worker)
        # Post-race bookkeeping is coherent either way.
        remaining = cache.get("oid-1", "index.html")
        if remaining is None:
            assert len(cache) == 0
        else:
            assert len(cache) == 1

    def test_byte_budget_respected_under_threads(self):
        clock = SimClock()
        cache = ContentCache(clock=clock, ttl=1000.0, max_bytes=4096)

        def worker(i):
            for round_no in range(ROUNDS):
                name = f"big-{i}-{round_no}.bin"
                cache.put(
                    "oid-1", PageElement(name, bytes(512)), expires_at=1000.0
                )
                cache.get("oid-1", name)

        run_threads(worker)
        assert cache.bytes_used <= 4096
