"""Proxy test wiring: a module-scoped testbed with one published doc."""

from __future__ import annotations

import pytest

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from tests.conftest import fast_keys

ELEMENTS = {
    "index.html": b"<html><a href='img/logo.png'>hi</a></html>",
    "img/logo.png": b"\x89PNG-logo-bytes",
}


@pytest.fixture(scope="module")
def testbed():
    return Testbed()


@pytest.fixture(scope="module")
def published(testbed):
    owner = DocumentOwner("vu.nl/research", keys=fast_keys(), clock=testbed.clock)
    for name, content in ELEMENTS.items():
        owner.put_element(PageElement(name, content))
    return testbed.publish(owner, validity=3600)


@pytest.fixture
def stack(testbed, published):
    return testbed.client_stack("canardo.inria.fr")
