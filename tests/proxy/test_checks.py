"""The security checker primitives in isolation."""

from __future__ import annotations

import pytest

from repro.crypto.identity import TrustStore
from repro.errors import (
    AuthenticityError,
    ConsistencyError,
    FreshnessError,
)
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import IntegrityCertificate
from repro.globedoc.oid import ObjectId
from repro.proxy.checks import SecurityChecker
from repro.proxy.metrics import AccessTimer
from repro.sim.clock import SimClock
from tests.conftest import EPOCH, fast_keys


@pytest.fixture
def object_keys():
    return fast_keys()


@pytest.fixture
def oid(object_keys):
    return ObjectId.from_public_key(object_keys.public)


@pytest.fixture
def elements():
    return [PageElement("index.html", b"main"), PageElement("pic.png", b"img")]


@pytest.fixture
def integrity(object_keys, oid, elements):
    return IntegrityCertificate.for_elements(
        object_keys, oid.hex, elements, expires_at=EPOCH + 600
    )


@pytest.fixture
def checker(clock):
    return SecurityChecker(clock)


def timer(clock) -> AccessTimer:
    return AccessTimer(clock)


class TestPublicKeyCheck:
    def test_matching_key(self, checker, oid, object_keys, clock):
        t = timer(clock)
        assert checker.check_public_key(oid, object_keys.public, t) == object_keys.public
        assert t.finish().phase_time("verify_public_key") >= 0

    def test_wrong_key(self, checker, oid, other_keys, clock):
        with pytest.raises(AuthenticityError):
            checker.check_public_key(oid, other_keys.public, timer(clock))


class TestCertificateCheck:
    def test_valid(self, checker, oid, object_keys, integrity, clock):
        checker.check_certificate(object_keys.public, integrity, oid, timer(clock))

    def test_wrong_signer(self, checker, oid, other_keys, integrity, clock):
        with pytest.raises(AuthenticityError):
            checker.check_certificate(other_keys.public, integrity, oid, timer(clock))

    def test_cross_object_replay_rejected(self, checker, object_keys, elements, clock):
        """A certificate signed by the right key but issued for another
        OID must not be accepted (cross-object replay)."""
        oid = ObjectId.from_public_key(object_keys.public)
        foreign = IntegrityCertificate.for_elements(
            object_keys, "ff" * 20, elements, expires_at=EPOCH + 600
        )
        with pytest.raises(AuthenticityError, match="different object"):
            checker.check_certificate(object_keys.public, foreign, oid, timer(clock))


class TestElementCheck:
    def test_valid(self, checker, integrity, elements, clock):
        entry = checker.check_element(integrity, "index.html", elements[0], timer(clock))
        assert entry.name == "index.html"

    def test_tamper(self, checker, integrity, elements, clock):
        with pytest.raises(AuthenticityError):
            checker.check_element(
                integrity, "index.html", elements[0].with_content(b"evil"), timer(clock)
            )

    def test_stale(self, checker, integrity, elements, clock):
        clock.advance(601)
        with pytest.raises(FreshnessError):
            checker.check_element(integrity, "index.html", elements[0], timer(clock))

    def test_swap(self, checker, integrity, elements, clock):
        with pytest.raises(ConsistencyError):
            checker.check_element(integrity, "index.html", elements[1], timer(clock))

    def test_phases_recorded(self, checker, integrity, elements, clock):
        t = timer(clock)
        checker.check_element(integrity, "index.html", elements[0], t)
        phases = dict(t.finish().by_phase())
        assert "check_consistency" in phases
        assert "verify_element_hash" in phases
        assert "check_freshness" in phases


class TestIdentityCheck:
    def test_advisory_none_on_no_match(self, clock, object_keys):
        checker = SecurityChecker(clock, trust_store=TrustStore())
        assert (
            checker.check_identity(object_keys.public, [], timer(clock), require=False)
            is None
        )

    def test_required_raises(self, clock, object_keys):
        checker = SecurityChecker(clock, trust_store=TrustStore())
        with pytest.raises(AuthenticityError):
            checker.check_identity(object_keys.public, [], timer(clock), require=True)

    def test_match_returns_name(self, clock, object_keys, session_ca):
        store = TrustStore()
        store.add_ca(session_ca)
        checker = SecurityChecker(clock, trust_store=store)
        cert = session_ca.certify("VU Research Group", object_keys.public)
        name = checker.check_identity(object_keys.public, [cert], timer(clock))
        assert name == "VU Research Group"

    def test_cert_for_other_key_ignored(self, clock, object_keys, other_keys, session_ca):
        store = TrustStore()
        store.add_ca(session_ca)
        checker = SecurityChecker(clock, trust_store=store)
        cert = session_ca.certify("Someone Else", other_keys.public)
        assert checker.check_identity(object_keys.public, [cert], timer(clock)) is None
