"""The security checker primitives in isolation."""

from __future__ import annotations

import pytest

from repro.crypto.identity import TrustStore
from repro.errors import (
    AuthenticityError,
    ConsistencyError,
    FreshnessError,
)
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import IntegrityCertificate
from repro.globedoc.oid import ObjectId
from repro.proxy.checks import SecurityChecker
from repro.proxy.metrics import AccessTimer
from repro.sim.clock import SimClock
from tests.conftest import EPOCH, fast_keys


@pytest.fixture
def object_keys():
    return fast_keys()


@pytest.fixture
def oid(object_keys):
    return ObjectId.from_public_key(object_keys.public)


@pytest.fixture
def elements():
    return [PageElement("index.html", b"main"), PageElement("pic.png", b"img")]


@pytest.fixture
def integrity(object_keys, oid, elements):
    return IntegrityCertificate.for_elements(
        object_keys, oid.hex, elements, expires_at=EPOCH + 600
    )


@pytest.fixture
def checker(clock):
    return SecurityChecker(clock)


def timer(clock) -> AccessTimer:
    return AccessTimer(clock)


class TestPublicKeyCheck:
    def test_matching_key(self, checker, oid, object_keys, clock):
        t = timer(clock)
        assert checker.check_public_key(oid, object_keys.public, t) == object_keys.public
        assert t.finish().phase_time("verify_public_key") >= 0

    def test_wrong_key(self, checker, oid, other_keys, clock):
        with pytest.raises(AuthenticityError):
            checker.check_public_key(oid, other_keys.public, timer(clock))


class TestCertificateCheck:
    def test_valid(self, checker, oid, object_keys, integrity, clock):
        checker.check_certificate(object_keys.public, integrity, oid, timer(clock))

    def test_wrong_signer(self, checker, oid, other_keys, integrity, clock):
        with pytest.raises(AuthenticityError):
            checker.check_certificate(other_keys.public, integrity, oid, timer(clock))

    def test_cross_object_replay_rejected(self, checker, object_keys, elements, clock):
        """A certificate signed by the right key but issued for another
        OID must not be accepted (cross-object replay)."""
        oid = ObjectId.from_public_key(object_keys.public)
        foreign = IntegrityCertificate.for_elements(
            object_keys, "ff" * 20, elements, expires_at=EPOCH + 600
        )
        with pytest.raises(AuthenticityError, match="different object"):
            checker.check_certificate(object_keys.public, foreign, oid, timer(clock))


class TestElementCheck:
    def test_valid(self, checker, integrity, elements, clock):
        entry = checker.check_element(integrity, "index.html", elements[0], timer(clock))
        assert entry.name == "index.html"

    def test_tamper(self, checker, integrity, elements, clock):
        with pytest.raises(AuthenticityError):
            checker.check_element(
                integrity, "index.html", elements[0].with_content(b"evil"), timer(clock)
            )

    def test_stale(self, checker, integrity, elements, clock):
        clock.advance(601)
        with pytest.raises(FreshnessError):
            checker.check_element(integrity, "index.html", elements[0], timer(clock))

    def test_swap(self, checker, integrity, elements, clock):
        with pytest.raises(ConsistencyError):
            checker.check_element(integrity, "index.html", elements[1], timer(clock))

    def test_phases_recorded(self, checker, integrity, elements, clock):
        t = timer(clock)
        checker.check_element(integrity, "index.html", elements[0], t)
        phases = dict(t.finish().by_phase())
        assert "check_consistency" in phases
        assert "verify_element_hash" in phases
        assert "check_freshness" in phases


class TestIdentityCheck:
    def test_advisory_none_on_no_match(self, clock, object_keys):
        checker = SecurityChecker(clock, trust_store=TrustStore())
        assert (
            checker.check_identity(object_keys.public, [], timer(clock), require=False)
            is None
        )

    def test_required_raises(self, clock, object_keys):
        checker = SecurityChecker(clock, trust_store=TrustStore())
        with pytest.raises(AuthenticityError):
            checker.check_identity(object_keys.public, [], timer(clock), require=True)

    def test_match_returns_name(self, clock, object_keys, session_ca):
        store = TrustStore()
        store.add_ca(session_ca)
        checker = SecurityChecker(clock, trust_store=store)
        cert = session_ca.certify("VU Research Group", object_keys.public)
        name = checker.check_identity(object_keys.public, [cert], timer(clock))
        assert name == "VU Research Group"

    def test_cert_for_other_key_ignored(self, clock, object_keys, other_keys, session_ca):
        store = TrustStore()
        store.add_ca(session_ca)
        checker = SecurityChecker(clock, trust_store=store)
        cert = session_ca.certify("Someone Else", other_keys.public)
        assert checker.check_identity(object_keys.public, [cert], timer(clock)) is None


class TestVerificationFastPath:
    """The checker with a VerificationCache: hits are counted, expiry is
    honored, and every failure still fails closed on warm caches."""

    def make_checker(self, clock):
        from repro.crypto.verifycache import VerificationCache

        return SecurityChecker(clock, verification_cache=VerificationCache())

    def test_repeat_check_hits_and_records_metrics(
        self, oid, object_keys, integrity, clock
    ):
        checker = self.make_checker(clock)
        t1 = timer(clock)
        checker.check_certificate(object_keys.public, integrity, oid, t1)
        first = t1.finish().fastpath
        assert first is not None
        assert first.verify_misses == 1 and first.verify_hits == 0

        t2 = timer(clock)
        checker.check_certificate(object_keys.public, integrity, oid, t2)
        second = t2.finish().fastpath
        assert second is not None
        assert second.verify_hits == 1 and second.verify_misses == 0
        assert second.saved_us > 0.0

    def test_warm_cache_still_rejects_wrong_signer(
        self, oid, object_keys, other_keys, integrity, clock
    ):
        checker = self.make_checker(clock)
        checker.check_certificate(object_keys.public, integrity, oid, timer(clock))
        with pytest.raises(AuthenticityError):
            checker.check_certificate(other_keys.public, integrity, oid, timer(clock))

    def test_warm_cache_still_rejects_tampered_reparse(
        self, oid, object_keys, integrity, clock
    ):
        """A re-parsed certificate with one flipped entry must not ride
        the warm cache of the genuine one."""
        checker = self.make_checker(clock)
        checker.check_certificate(object_keys.public, integrity, oid, timer(clock))
        wire = integrity.to_dict()
        # Tamper consistently (outer fields and signed payload alike), as
        # a capable adversary would — only the signature can catch it.
        wire["body"]["entries"][0]["content_hash"] = b"\x00" * 20
        wire["envelope"]["payload"]["body"]["entries"][0]["content_hash"] = b"\x00" * 20
        forged = IntegrityCertificate.from_dict(wire)
        with pytest.raises(AuthenticityError):
            checker.check_certificate(object_keys.public, forged, oid, timer(clock))

    def test_cached_verdict_expires_with_certificate(self, object_keys, clock):
        """Integrity certificates bound freshness per entry, but windowed
        certificates (e.g. identity proofs) must drop their cached
        verdicts once ``not_after`` passes."""
        from repro.crypto.certificates import Certificate
        from repro.crypto.verifycache import VerificationCache
        from repro.errors import CertificateError

        cache = VerificationCache()
        cert = Certificate.issue(
            object_keys, "test/windowed", {"x": 1}, not_after=clock.now() + 600
        )
        cert.verify(object_keys.public, clock=clock, cache=cache)
        cert.verify(object_keys.public, clock=clock, cache=cache)
        assert cache.stats.hits == 1 and len(cache) == 1
        clock.advance(601)
        with pytest.raises(CertificateError, match="expired"):
            cert.verify(object_keys.public, clock=clock, cache=cache)
        # The stale verdict was invalidated, not replayed.
        assert cache.stats.invalidations == 1
