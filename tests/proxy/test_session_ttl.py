"""Proxy session TTL: bindings follow dynamic replica placement."""

from __future__ import annotations

import pytest

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner, SignedDocument
from repro.harness.experiment import Testbed
from repro.net.address import ContactAddress, Endpoint
from repro.net.rpc import RpcClient
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from tests.conftest import fast_keys


@pytest.fixture
def world():
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/ttl", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"<html>content</html>"))
    published = testbed.publish(owner)
    return testbed, owner, published


class TestSessionTtl:
    def test_no_ttl_means_sticky_binding(self, world):
        testbed, owner, published = world
        stack = testbed.client_stack("ensamble02.cornell.edu")
        proxy = stack.fresh_proxy()
        assert proxy.session_ttl is None
        proxy.handle(published.url("index.html"))
        testbed.clock.advance(1000.0)
        proxy.handle(published.url("index.html"))
        assert proxy.session_count == 1  # same session forever

    def test_expired_session_rebinds(self, world):
        testbed, owner, published = world
        stack = testbed.client_stack("ensamble02.cornell.edu", location_ttl=1.0)
        proxy = stack.fresh_proxy()
        proxy.session_ttl = 10.0
        first = proxy.handle(published.url("index.html"))
        assert first.ok
        testbed.clock.advance(11.0)
        second = proxy.handle(published.url("index.html"))
        assert second.ok
        # Re-binding re-fetched the key/certificate.
        assert second.metrics.phase_time("get_public_key") > 0

    def test_rebind_discovers_new_local_replica(self, world):
        """The property the load simulator depends on: after the session
        TTL, a Cornell proxy finds a replica placed at Cornell."""
        testbed, owner, published = world
        stack = testbed.client_stack("ensamble02.cornell.edu", location_ttl=1.0)
        proxy = stack.fresh_proxy()
        proxy.session_ttl = 5.0
        proxy.handle(published.url("index.html"))  # bound to Amsterdam

        # Place a local replica (server-push path).
        cornell = ObjectServer(
            host="ensamble02.cornell.edu", site="root/us/cornell", clock=testbed.clock
        )
        cornell.keystore.authorize("owner", owner.public_key)
        testbed.network.register(
            Endpoint("ensamble02.cornell.edu", "objectserver"),
            cornell.rpc_server().handle_frame,
        )
        admin = AdminClient(
            RpcClient(testbed.network.transport_for("sporty.cs.vu.nl")),
            Endpoint("ensamble02.cornell.edu", "objectserver"),
            owner.keys,
            testbed.clock,
        )
        result = admin.create_replica(published.document)
        testbed.location_service.tree.insert(
            published.oid_hex,
            "root/us/cornell",
            ContactAddress.from_dict(result["address"]),
        )

        testbed.clock.advance(6.0)  # past session + location TTLs
        response = proxy.handle(published.url("index.html"))
        assert response.ok
        assert cornell.replica_for_oid(published.oid_hex).lr.serve_count == 1
