"""Adversarial conformance matrix: every tamper mode × cache state.

Each scenario violates one security property through a different attack
vector (MITM transport, malicious replica behaviour, lying location
service) and must be rejected by exactly the expected
:class:`~repro.errors.SecurityError` subclass — with **zero** attacker
bytes reaching the caller — both on a cold stack and with a warm
:class:`~repro.crypto.verifycache.VerificationCache` (the fast path
must never convert a cached verdict into a bypass).

The tracing layer is the second witness: the ``check.*`` span of the
responsible security check must close with error status and the same
exception type, proving the rejection happened at the check the paper's
§3.2.1 taxonomy assigns to that attack.

The matrix itself lives in :mod:`repro.attacks.scenarios` so the
security benchmark can replay the identical scenarios; this module is
the pytest harness over it.
"""

from __future__ import annotations

import pytest

from repro.attacks.scenarios import SCENARIOS, Scenario, run_scenario
from tests.conftest import fast_keys


@pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.id)
class TestConformanceMatrix:
    def test_rejected_by_expected_check(self, scenario: Scenario, warm: bool):
        result = run_scenario(scenario, warm, key_factory=fast_keys)

        assert result["detected"], (
            f"{scenario.id}/{'warm' if warm else 'cold'}: expected detection"
        )
        assert result["failure_type"] == scenario.expected_error
        # Zero unverified bytes: the caller sees only the failure page.
        assert not result["unverified_bytes_leaked"]
        assert result["span_ok"], (
            f"{scenario.id}: no error span named {scenario.expected_span!r} "
            f"closing with {scenario.expected_error}"
        )
        assert result["ok"]
