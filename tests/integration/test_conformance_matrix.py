"""Adversarial conformance matrix: every tamper mode × cache state.

Each scenario violates one security property through a different attack
vector (MITM transport, malicious replica behaviour, lying location
service) and must be rejected by exactly the expected
:class:`~repro.errors.SecurityError` subclass — with **zero** attacker
bytes reaching the caller — both on a cold stack and with a warm
:class:`~repro.crypto.verifycache.VerificationCache` (the fast path
must never convert a cached verdict into a bypass).

The tracing layer is the second witness: the ``check.*`` span of the
responsible security check must close with error status and the same
exception type, proving the rejection happened at the check the paper's
§3.2.1 taxonomy assigns to that attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import pytest

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_location import LyingLocationService
from repro.attacks.malicious_server import (
    ElementSwapBehavior,
    ElementSwapRenamedBehavior,
    HonestBehavior,
    ImpostorBehavior,
    MaliciousReplica,
    StaleReplayBehavior,
    TamperBehavior,
)
from repro.attacks.mitm import MitmTransport
from repro.crypto.verifycache import VerificationCache
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.net.address import Endpoint
from repro.obs import RingBufferSink, Tracer
from repro.revocation.statement import RevocationStatement
from tests.conftest import fast_keys

ELEMENTS = {
    "index.html": b"<html>genuine matrix page</html>",
    "retraction.html": b"<html>genuine retraction</html>",
}

#: Bytes every attacker injects/serves; must never reach the caller.
EVIL_MARKER = b"EVIL-PAYLOAD"

CLIENT_HOST = "canardo.inria.fr"
ATTACK_SITE = "root/europe/inria"

#: Staleness window for the revocation scenario's stack (poll at half).
REVOCATION_STALENESS = 30.0


class FlippedBytesBehavior(HonestBehavior):
    """Flip one content byte — the minimal authenticity violation."""

    def element(self, state, name):
        element = state.element(name)
        content = bytearray(element.content)
        content[0] ^= 0xFF
        return element.with_content(bytes(content) + EVIL_MARKER)


@dataclass
class World:
    """One scenario's universe: testbed, victim document, client stack."""

    testbed: Testbed
    published: object
    stack: object
    ring: RingBufferSink

    def deploy_replica(self, behavior) -> MaliciousReplica:
        replica = MaliciousReplica(
            host=CLIENT_HOST, document=self.published.document, behavior=behavior
        )
        self.testbed.network.register(
            Endpoint(CLIENT_HOST, "objectserver"), replica.rpc_server().handle_frame
        )
        self.testbed.location_service.tree.insert(
            self.published.owner.oid.hex, ATTACK_SITE, replica.contact_address()
        )
        return replica


@dataclass(frozen=True)
class Scenario:
    """One tamper mode and the check that must reject it."""

    id: str
    expected_error: str
    expected_span: str
    deploy: Callable[[World], None]
    #: Scenarios that need the seventh check build their stack with a
    #: revocation checker attached (the rest keep the six-check pipeline).
    revocation: bool = False


def deploy_mitm(world: World) -> None:
    # The stack's transport is a MitmTransport built with the rewriter
    # disarmed (so the warm-up access is clean); arm it now.
    world.stack.transport.rewrite = MitmTransport.content_injector(EVIL_MARKER)


def deploy_tamper(world: World) -> None:
    world.deploy_replica(TamperBehavior(target="index.html", payload=EVIL_MARKER))


def deploy_flipped_bytes(world: World) -> None:
    world.deploy_replica(FlippedBytesBehavior())


def deploy_element_swap(world: World) -> None:
    world.deploy_replica(
        ElementSwapBehavior(
            when_asked_for="index.html", serve_instead="retraction.html"
        )
    )


def deploy_element_swap_renamed(world: World) -> None:
    world.deploy_replica(
        ElementSwapRenamedBehavior(
            when_asked_for="index.html", serve_instead="retraction.html"
        )
    )


def deploy_stale_replay(world: World) -> None:
    # Re-sign the *current* elements with a certificate that expires in
    # 60 s, replay it, and let the interval lapse: every signature still
    # verifies, only the freshness check can object.
    stale = world.published.owner.publish(validity=60.0)
    world.deploy_replica(StaleReplayBehavior(stale))
    world.testbed.clock.advance(61.0)


def deploy_impostor(world: World) -> None:
    impostor_owner = DocumentOwner(
        "evil.example/fake", keys=fast_keys(), clock=world.testbed.clock
    )
    impostor_owner.put_element(PageElement("index.html", EVIL_MARKER))
    world.deploy_replica(ImpostorBehavior(impostor_owner.publish(validity=3600.0)))


def deploy_lying_location(world: World) -> None:
    impostor_owner = DocumentOwner(
        "evil.example/fake", keys=fast_keys(), clock=world.testbed.clock
    )
    impostor_owner.put_element(PageElement("index.html", EVIL_MARKER))
    impostor = MaliciousReplica(
        host=CLIENT_HOST,
        document=world.published.document,
        behavior=ImpostorBehavior(impostor_owner.publish(validity=3600.0)),
        replica_id="impostor",
    )
    world.testbed.network.register(
        Endpoint(CLIENT_HOST, "objectserver"), impostor.rpc_server().handle_frame
    )
    liar = LyingLocationService(world.testbed.location_service.tree)
    liar.lie_about(
        world.published.owner.oid.hex,
        [impostor.contact_address()],
        suppress_truth=True,
    )
    world.testbed.network.register(  # replaces the honest handler
        world.testbed.location_endpoint, liar.rpc_server().handle_frame
    )


def deploy_compromised_key(world: World) -> None:
    # The ultimate replay: an attacker who stole the object key serves
    # the *genuine* document, bit-perfect, from a replica the six checks
    # fully trust — only the revocation check can reject it. The owner
    # publishes a key-scope statement to the feed; the serving replica
    # never hears of it.
    world.deploy_replica(HonestBehavior())
    owner = world.published.owner
    statement = RevocationStatement.revoke_key(
        owner.keys,
        owner.oid,
        serial=1,
        issued_at=world.testbed.clock.now(),
        reason="object key compromised",
    )
    world.testbed.object_server.revocation_feed.publish(statement)
    # Past the poll interval: the next check must refresh and see it.
    world.testbed.clock.advance(REVOCATION_STALENESS / 2.0 + 1.0)


SCENARIOS = [
    Scenario("mitm_inject", "AuthenticityError", "check.element_hash", deploy_mitm),
    Scenario("tamper", "AuthenticityError", "check.element_hash", deploy_tamper),
    Scenario(
        "flipped_bytes", "AuthenticityError", "check.element_hash",
        deploy_flipped_bytes,
    ),
    Scenario(
        "element_swap", "ConsistencyError", "check.consistency",
        deploy_element_swap,
    ),
    Scenario(
        "element_swap_renamed", "AuthenticityError", "check.element_hash",
        deploy_element_swap_renamed,
    ),
    Scenario(
        "stale_replay", "FreshnessError", "check.freshness", deploy_stale_replay
    ),
    Scenario(
        "impostor_key", "AuthenticityError", "check.public_key", deploy_impostor
    ),
    Scenario(
        "lying_location", "AuthenticityError", "check.public_key",
        deploy_lying_location,
    ),
    Scenario(
        "compromised_key_replay", "RevokedKeyError", "check.revocation",
        deploy_compromised_key, revocation=True,
    ),
]


def build_world(revocation: bool = False) -> World:
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/matrix", keys=fast_keys(), clock=testbed.clock)
    for name, content in ELEMENTS.items():
        owner.put_element(PageElement(name, content))
    published = testbed.publish(owner, validity=3600.0)

    ring = RingBufferSink()
    tracer = Tracer(clock=testbed.clock, sinks=(ring,))
    # A disarmed MITM wrapper on every stack: scenarios that need it arm
    # the rewriter, the rest pass traffic through untouched.
    transport = MitmTransport(testbed.network.transport_for(CLIENT_HOST))
    stack = testbed.client_stack(
        CLIENT_HOST,
        transport=transport,
        verification_cache=VerificationCache(),
        max_rebinds=0,  # fail closed: no silent failover to ginger
        tracer=tracer,
        revocation_max_staleness=REVOCATION_STALENESS if revocation else None,
    )
    return World(testbed=testbed, published=published, stack=stack, ring=ring)


@pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.id)
class TestConformanceMatrix:
    def test_rejected_by_expected_check(self, scenario: Scenario, warm: bool):
        world = build_world(revocation=scenario.revocation)
        url = world.published.url("index.html")
        if warm:
            # One honest access first: the VerificationCache now holds
            # the genuine certificate's verdict. Then force a cold bind
            # so the attacker (deployed at the client's own site) is
            # found first on the next access.
            warmup = world.stack.proxy.handle(url)
            assert warmup.ok and warmup.content == ELEMENTS["index.html"]
            world.stack.proxy.drop_all_sessions()
            world.stack.location.invalidate(world.published.owner.oid)
        scenario.deploy(world)
        world.ring.clear()

        probe = run_attack_probe(world.stack.proxy, url, ELEMENTS["index.html"])

        assert probe.outcome is AttackOutcome.DETECTED, (
            f"{scenario.id}/{'warm' if warm else 'cold'}: "
            f"expected detection, got {probe.outcome} "
            f"(status {probe.response.status})"
        )
        assert probe.failure_type == scenario.expected_error
        # Zero unverified bytes: the caller sees only the failure page.
        assert EVIL_MARKER not in probe.response.content
        for name, content in ELEMENTS.items():
            assert content not in probe.response.content

        error_spans = [
            s for s in world.ring.errors() if s.name == scenario.expected_span
        ]
        assert error_spans, (
            f"{scenario.id}: no error span named {scenario.expected_span!r}; "
            f"errors seen: {[(s.name, s.error_type) for s in world.ring.errors()]}"
        )
        assert error_spans[-1].error_type == scenario.expected_error
