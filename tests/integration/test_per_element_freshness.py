"""Per-element freshness constraints over the full stack (§5).

The design point the paper claims over r-OSFS: a single document can
carry a fast-expiring hot element (a stock ticker) next to long-lived
cold elements (the page layout) — when the ticker lapses, the layout is
still served.
"""

from __future__ import annotations

import pytest

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from tests.conftest import fast_keys


@pytest.fixture
def world():
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/portal", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("ticker.html", b"<html>AAPL 123.45</html>"))
    owner.put_element(PageElement("layout.css", b"body { margin: 0 }"))
    owner.put_element(PageElement("logo.png", b"\x89PNG-logo"))
    now = testbed.clock.now()
    document = owner.publish(
        validity=3600.0,  # cold default: one hour
        per_element_expiry={"ticker.html": now + 60.0},  # hot: one minute
    )
    # publish() consumed version 1; push it manually through the testbed
    # plumbing by re-publishing identical state is wrong — place this
    # exact version instead.
    testbed.object_server.keystore.authorize(owner.name, owner.public_key)
    from repro.naming.records import OidRecord
    from repro.net.address import ContactAddress
    from repro.net.rpc import RpcClient
    from repro.server.admin import AdminClient

    admin = AdminClient(
        RpcClient(testbed.network.transport_for("sporty.cs.vu.nl")),
        testbed.objectserver_endpoint,
        owner.keys,
        testbed.clock,
    )
    result = admin.create_replica(document)
    testbed.location_service.tree.insert(
        owner.oid.hex, "root/europe/vu", ContactAddress.from_dict(result["address"])
    )
    testbed.naming.register(OidRecord(name=owner.name, oid=owner.oid))
    return testbed, owner


class TestPerElementFreshness:
    def test_all_fresh_initially(self, world):
        testbed, owner = world
        stack = testbed.client_stack("canardo.inria.fr")
        for element in ("ticker.html", "layout.css", "logo.png"):
            assert stack.proxy.handle(f"globe://vu.nl/portal!/{element}").ok

    def test_hot_element_expires_alone(self, world):
        """61 s in: the ticker is rejected, the layout still serves —
        impossible with a single global interval."""
        testbed, owner = world
        testbed.clock.advance(61.0)
        stack = testbed.client_stack("canardo.inria.fr")

        ticker = stack.proxy.handle("globe://vu.nl/portal!/ticker.html")
        assert ticker.status == 403
        assert ticker.security_failure == "FreshnessError"

        layout = stack.proxy.handle("globe://vu.nl/portal!/layout.css")
        assert layout.ok
        assert layout.content == b"body { margin: 0 }"
        logo = stack.proxy.handle("globe://vu.nl/portal!/logo.png")
        assert logo.ok

    def test_refresh_restores_hot_element(self, world):
        """The owner re-publishes (only the certificate changes) and the
        ticker serves again — the per-element refresh cycle."""
        testbed, owner = world
        testbed.clock.advance(61.0)

        now = testbed.clock.now()
        refreshed = owner.publish(
            validity=3600.0, per_element_expiry={"ticker.html": now + 60.0}
        )
        from repro.net.rpc import RpcClient
        from repro.server.admin import AdminClient

        admin = AdminClient(
            RpcClient(testbed.network.transport_for("sporty.cs.vu.nl")),
            testbed.objectserver_endpoint,
            owner.keys,
            testbed.clock,
        )
        admin.update_replica(refreshed)

        stack = testbed.client_stack("canardo.inria.fr")
        ticker = stack.proxy.handle("globe://vu.nl/portal!/ticker.html")
        assert ticker.ok
        assert ticker.content == b"<html>AAPL 123.45</html>"
