"""Resilience under infrastructure faults: flaky networks must degrade
GlobeDoc accesses into clean errors/failovers, never into accepted
wrong content."""

from __future__ import annotations

import pytest

from repro.errors import SecurityError, TransportError
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.location.service import LocationClient
from repro.naming.service import SecureResolver
from repro.net.faults import FaultPlan, FlakyTransport
from repro.net.rpc import RpcClient
from repro.proxy.binding import Binder
from repro.proxy.checks import SecurityChecker
from repro.proxy.clientproxy import GlobeDocProxy
from tests.conftest import fast_keys

GENUINE = b"<html>the one true content</html>"


@pytest.fixture(scope="module")
def world():
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/solid", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", GENUINE))
    published = testbed.publish(owner)
    return testbed, published


def flaky_proxy(testbed, plan: FaultPlan) -> GlobeDocProxy:
    inner = testbed.network.transport_for("canardo.inria.fr")
    flaky = FlakyTransport(inner, plan)
    rpc = RpcClient(flaky)
    resolver = SecureResolver(
        rpc, testbed.naming_endpoint, testbed.naming.root_key, clock=testbed.clock
    )
    location = LocationClient(
        rpc, testbed.location_endpoint, "root/europe/inria", clock=testbed.clock
    )
    proxy = GlobeDocProxy(
        Binder(resolver, location, rpc), SecurityChecker(testbed.clock), rpc
    )
    return proxy


class TestFaultPlan:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_probability=-0.1)


class TestStats:
    def test_dropped_requests_are_counted(self, world):
        """Regression: a dropped request still went on the wire, so it
        must appear in the transfer stats before the error is raised."""
        testbed, _ = world
        inner = testbed.network.transport_for("canardo.inria.fr")
        flaky = FlakyTransport(inner, FaultPlan(drop_probability=1.0, seed=5))
        frame = b"never delivered"
        with pytest.raises(TransportError):
            flaky.request(testbed.naming_endpoint, frame)
        assert flaky.drops == 1
        assert flaky.stats.requests == 1
        assert flaky.stats.bytes_sent == len(frame)
        assert flaky.stats.bytes_received == 0


class TestDrops:
    def test_drops_yield_clean_errors(self, world):
        """Heavy request dropping: some accesses fail (404-class), the
        rest serve genuine bytes — never anything else."""
        testbed, published = world
        proxy = flaky_proxy(testbed, FaultPlan(drop_probability=0.3, seed=11))
        outcomes = {"ok": 0, "error": 0}
        for _ in range(30):
            proxy.drop_all_sessions()
            response = proxy.handle(published.url("index.html"))
            if response.ok:
                assert response.content == GENUINE
                outcomes["ok"] += 1
            else:
                assert response.status in (403, 404, 502)
                outcomes["error"] += 1
        assert outcomes["error"] > 0  # faults actually fired
        assert outcomes["ok"] > 0  # and the service still works sometimes

    def test_total_outage_is_denial_of_service(self, world):
        testbed, published = world
        proxy = flaky_proxy(testbed, FaultPlan(drop_probability=1.0, seed=1))
        response = proxy.handle(published.url("index.html"))
        assert not response.ok
        assert response.content != GENUINE


class TestCorruption:
    def test_corrupted_frames_never_become_content(self, world):
        """Random bit flips anywhere in the response path: every
        successful response still carries exactly the genuine bytes (a
        flip in the element body is caught by the hash check; a flip in
        framing by the codec)."""
        testbed, published = world
        proxy = flaky_proxy(testbed, FaultPlan(corrupt_probability=0.25, seed=23))
        flaky = proxy.rpc.transport
        served_wrong = 0
        for _ in range(40):
            proxy.drop_all_sessions()
            response = proxy.handle(published.url("index.html"))
            if response.ok and response.content != GENUINE:
                served_wrong += 1
        assert flaky.corruptions > 0  # faults actually fired
        assert served_wrong == 0

    def test_recovery_after_transient_faults(self, world):
        """Once the fault clears (plan seed exhausted of bad luck), the
        same proxy recovers without manual intervention."""
        testbed, published = world
        proxy = flaky_proxy(testbed, FaultPlan(drop_probability=0.9, seed=3))
        # Hammer through the bad phase.
        for _ in range(10):
            proxy.drop_all_sessions()
            proxy.handle(published.url("index.html"))
        # Disable faults in place.
        proxy.rpc.transport.plan = FaultPlan(drop_probability=0.0)
        proxy.drop_all_sessions()
        response = proxy.handle(published.url("index.html"))
        assert response.ok and response.content == GENUINE
