"""End-to-end over REAL TCP sockets: the same services and proxy code,
real wall clock, localhost networking — proving the stack is not
simulator-bound."""

from __future__ import annotations

import pytest

from repro.crypto.identity import TrustStore
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.location.service import LocationClient, LocationService
from repro.location.tree import DomainTree
from repro.naming.dnssec import SignedZone
from repro.naming.records import OidRecord
from repro.naming.service import NameService, SecureResolver
from repro.naming.zone import Zone, ZoneKeys
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.net.tcpnet import TcpEndpointServer, TcpTransport
from repro.proxy.binding import Binder
from repro.proxy.checks import SecurityChecker
from repro.proxy.clientproxy import GlobeDocProxy
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from repro.sim.clock import RealClock
from tests.conftest import fast_keys


@pytest.fixture(scope="module")
def tcp_world():
    """All services behind one real TCP listener."""
    clock = RealClock()

    root = SignedZone(Zone(""), keys=ZoneKeys(zone="", keys=fast_keys()))
    naming = NameService(root)

    tree = DomainTree()
    tree.add_site("root/local")
    location = LocationService(tree)

    object_server = ObjectServer(host="server-host", site="root/local", clock=clock)

    listener = TcpEndpointServer()
    listener.register("naming", naming.rpc_server().handle_frame)
    listener.register("location", location.rpc_server().handle_frame)
    listener.register("objectserver", object_server.rpc_server().handle_frame)
    listener.start()

    ip, port = listener.address
    transport = TcpTransport(directory={"server-host": (ip, port)})

    yield clock, naming, location, object_server, transport
    listener.stop()


@pytest.fixture(scope="module")
def published(tcp_world):
    clock, naming, location, object_server, transport = tcp_world
    owner = DocumentOwner("vu.nl/tcpdemo", keys=fast_keys(), clock=clock)
    owner.put_element(PageElement("index.html", b"<html>over real sockets</html>"))
    owner.put_element(PageElement("style.css", b"body { color: blue }"))
    document = owner.publish(validity=3600)

    object_server.keystore.authorize("owner", owner.public_key)
    admin = AdminClient(
        RpcClient(transport),
        Endpoint("server-host", "objectserver"),
        owner.keys,
        clock,
    )
    result = admin.create_replica(document)
    from repro.net.address import ContactAddress

    location.tree.insert(
        owner.oid.hex, "root/local", ContactAddress.from_dict(result["address"])
    )
    naming.register(OidRecord(name=owner.name, oid=owner.oid))
    return owner, document


@pytest.fixture
def proxy(tcp_world):
    clock, naming, _, _, transport = tcp_world
    rpc = RpcClient(transport)
    resolver = SecureResolver(
        rpc, Endpoint("server-host", "naming"), naming.root_key, clock=clock
    )
    location_client = LocationClient(
        rpc, Endpoint("server-host", "location"), origin_site="root/local", clock=clock
    )
    checker = SecurityChecker(clock)
    return GlobeDocProxy(Binder(resolver, location_client, rpc), checker, rpc)


class TestTcpEndToEnd:
    def test_secure_fetch(self, proxy, published):
        owner, _ = published
        response = proxy.handle("globe://vu.nl/tcpdemo!/index.html")
        assert response.ok
        assert response.content == b"<html>over real sockets</html>"
        assert response.metrics is not None and response.metrics.total > 0

    def test_second_element_reuses_binding(self, proxy, published):
        assert proxy.handle("globe://vu.nl/tcpdemo!/index.html").ok
        response = proxy.handle("globe://vu.nl/tcpdemo!/style.css")
        assert response.ok
        assert response.content == b"body { color: blue }"
        assert response.metrics.phase_time("get_public_key") == 0.0

    def test_oid_form_over_tcp(self, proxy, published):
        owner, _ = published
        from repro.globedoc.urls import HybridUrl

        url = HybridUrl.for_oid(owner.oid, "index.html").raw
        assert proxy.handle(url).ok

    def test_tampered_replica_detected_over_tcp(self, tcp_world, published, proxy):
        """Server-side tampering is caught across a real network too."""
        clock, _, _, object_server, _ = tcp_world
        owner, _ = published
        replica = object_server.replica_for_oid(owner.oid.hex)
        genuine = replica.lr.state.elements["index.html"]
        replica.lr.state.elements["index.html"] = genuine.with_content(b"<html>evil</html>")
        try:
            response = proxy.handle("globe://vu.nl/tcpdemo!/index.html")
            assert response.status == 403
            assert response.security_failure == "AuthenticityError"
        finally:
            replica.lr.state.elements["index.html"] = genuine
