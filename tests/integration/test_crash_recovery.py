"""End-to-end crash recovery on the full testbed.

The scenario the durability subsystem exists for: a durable world is
populated, killed, and restarted over the same directory; the restarted
world must serve the same proven bytes, and a client that persisted its
revocation cursor must reject a revoked OID before reaching any feed.
These tests drive the public harness entry points so what CI gates is
exactly what a user of the harness runs.
"""

from __future__ import annotations

import os

import pytest

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.harness.recovery import check_report, run_recovery
from tests.conftest import fast_keys


class TestRecoveryBench:
    def test_quick_bench_passes_every_gate(self):
        report = run_recovery(quick=True, seed=3)
        assert check_report(report) == []

    def test_report_counts_are_live(self):
        report = run_recovery(quick=True, seed=4)
        assert report.replica.recovered_replicas == report.replica.documents == 2
        assert report.torn.torn_bytes_dropped > 0
        assert report.tamper.error_type == "RecoveryIntegrityError"


class TestTestbedRestart:
    """The restart primitive itself, outside the bench harness."""

    def test_restarted_testbed_serves_identical_bytes(self, tmp_path):
        data_dir = str(tmp_path / "world")
        testbed = Testbed(data_dir=data_dir, storage_sync=False)
        owner = DocumentOwner("vu.nl/crash-doc", keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"<html>survives</html>"))
        published = testbed.publish(owner)
        zone_keys = testbed.zone_keys
        clock = testbed.clock
        testbed.close_stores()

        restarted = Testbed(
            clock=clock, data_dir=data_dir, storage_sync=False, zone_keys=zone_keys
        )
        assert restarted.object_server.recovered_replicas == 1
        assert restarted.object_server.reverified_replicas == 1
        stack = restarted.client_stack("ensamble02.cornell.edu")
        response = stack.proxy.handle(published.url("index.html"))
        assert response.ok and response.content == b"<html>survives</html>"
        restarted.close_stores()

    def test_restarted_client_rejects_revoked_before_any_rpc(self, tmp_path):
        from repro.revocation.statement import RevocationStatement

        data_dir = str(tmp_path / "world")
        cursor_dir = os.path.join(str(tmp_path), "cursor")
        testbed = Testbed(data_dir=data_dir, storage_sync=False)
        owner = DocumentOwner("vu.nl/doomed", keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"compromised"))
        published = testbed.publish(owner)
        stack = testbed.client_stack(
            "sporty.cs.vu.nl",
            revocation_max_staleness=60.0,
            revocation_cursor_dir=cursor_dir,
        )
        assert stack.proxy.handle(published.url("index.html")).ok
        testbed.object_server.revocation_feed.publish(
            RevocationStatement.revoke_key(
                owner.keys, owner.oid, serial=1, issued_at=testbed.clock.now()
            )
        )
        testbed.clock.advance(stack.revocation.poll_interval + 1.0)
        assert not stack.proxy.handle(published.url("index.html")).ok
        stack.revocation.store.close()
        zone_keys = testbed.zone_keys
        clock = testbed.clock
        testbed.close_stores()

        restarted = Testbed(
            clock=clock, data_dir=data_dir, storage_sync=False, zone_keys=zone_keys
        )
        stack = restarted.client_stack(
            "sporty.cs.vu.nl",
            revocation_max_staleness=60.0,
            revocation_cursor_dir=cursor_dir,
        )
        response = stack.proxy.handle(published.url("index.html"))
        assert response.status == 403
        assert response.security_failure == "RevokedKeyError"
        # Condemned straight from the recovered cursor: no feed RPC ran.
        assert stack.revocation.stats.refreshes == 0
        restarted.close_stores()
