"""The whole pipeline under SHA-256 (the suite is a real knob, not a
paper-faithful-only default)."""

from __future__ import annotations

import pytest

from repro.crypto.hashes import SHA256
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.globedoc.urls import HybridUrl
from repro.harness.experiment import Testbed
from tests.conftest import fast_keys


@pytest.fixture(scope="module")
def testbed():
    return Testbed()


@pytest.fixture(scope="module")
def sha256_published(testbed):
    owner = DocumentOwner(
        "vu.nl/modern", keys=fast_keys(), suite=SHA256, clock=testbed.clock
    )
    owner.put_element(PageElement("index.html", b"<html>sha256 world</html>"))
    return testbed.publish(owner)


class TestSha256EndToEnd:
    def test_oid_is_256_bit(self, sha256_published):
        assert sha256_published.owner.oid.bits == 256

    def test_secure_browse_by_name(self, testbed, sha256_published):
        stack = testbed.client_stack("canardo.inria.fr")
        response = stack.proxy.handle(sha256_published.url("index.html"))
        assert response.ok
        assert response.content == b"<html>sha256 world</html>"

    def test_oid_form_url_roundtrip(self, testbed, sha256_published):
        """64-hex OIDs in hybrid URLs parse with the right suite."""
        url = HybridUrl.for_oid(sha256_published.owner.oid, "index.html")
        parsed = HybridUrl.parse(url.raw)
        assert parsed.oid == sha256_published.owner.oid
        assert parsed.oid.suite_name == "sha256"
        stack = testbed.client_stack("sporty.cs.vu.nl")
        assert stack.proxy.handle(url.raw).ok

    def test_tamper_detected_under_sha256(self, testbed, sha256_published):
        replica = testbed.object_server.replica_for_oid(
            sha256_published.owner.oid.hex
        )
        genuine = replica.lr.state.elements["index.html"]
        replica.lr.state.elements["index.html"] = genuine.with_content(b"evil")
        try:
            stack = testbed.client_stack("canardo.inria.fr")
            response = stack.proxy.handle(sha256_published.url("index.html"))
            assert response.status == 403
            assert response.security_failure == "AuthenticityError"
        finally:
            replica.lr.state.elements["index.html"] = genuine

    def test_sha1_key_does_not_match_sha256_oid(self, sha256_published):
        """A SHA-1 OID over the same key is a *different* identity."""
        from repro.globedoc.oid import ObjectId

        sha1_oid = ObjectId.from_public_key(sha256_published.owner.public_key)
        assert sha1_oid.hex != sha256_published.owner.oid.hex

    def test_mixed_suites_coexist_on_testbed(self, testbed, sha256_published):
        """A SHA-1 document and a SHA-256 document live side by side."""
        owner = DocumentOwner("vu.nl/legacy", keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"<html>sha1 world</html>"))
        legacy = testbed.publish(owner)
        stack = testbed.client_stack("ensamble02.cornell.edu")
        assert stack.proxy.handle(legacy.url("index.html")).ok
        assert stack.proxy.handle(sha256_published.url("index.html")).ok
