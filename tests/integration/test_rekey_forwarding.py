"""Emergency re-keying, end to end: revoke, forward, recover.

The lifecycle under test: an owner's key is compromised, the owner runs
:func:`~repro.revocation.rekey.emergency_rekey`, and the three artifacts
are deployed — the successor object published, the forwarding record
registered with the naming service, the revocation pushed to the feed.
Clients holding **old** hybrid URLs must then reach the successor, by
whichever path the failure takes:

* the **revocation-check path** — the compromised replica keeps serving
  (an attacker's would), the seventh check rejects it, and the proxy
  follows the signed forwarding record;
* the **teardown path** — an honest server received the key-scope
  publish and dropped the replica, so the client sees
  :class:`~repro.errors.ReplicaError` instead and recovers the same way.

Without a forwarding record, both paths must fail closed.
"""

from __future__ import annotations

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.globedoc.urls import HybridUrl
from repro.harness.experiment import Testbed
from repro.revocation.rekey import emergency_rekey
from tests.conftest import fast_keys

ELEMENTS = {"index.html": b"<html>the genuine page</html>"}
CLIENT_HOST = "canardo.inria.fr"
MAX_STALENESS = 30.0  # polls at 15 s


def build_world():
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/rekey", keys=fast_keys(), clock=testbed.clock)
    for name, content in ELEMENTS.items():
        owner.put_element(PageElement(name, content))
    testbed.publish(owner, validity=7 * 24 * 3600.0)
    return testbed, owner


def deploy_successor(testbed, result) -> None:
    """What the owner's tooling does with a RekeyResult: successor
    replica + records through the ordinary publish path, forwarding
    through the naming service."""
    testbed.publish(result.successor, validity=7 * 24 * 3600.0)
    testbed.naming.register_forwarding(result.forwarding)


class TestRekeyForwarding:
    def test_revocation_check_redirects_to_successor(self):
        """Compromised replica still serving: the seventh check rejects
        the old OID mid-session, the forwarding record recovers."""
        testbed, owner = build_world()
        stack = testbed.client_stack(
            CLIENT_HOST, revocation_max_staleness=MAX_STALENESS
        )
        old_url = HybridUrl.for_oid(owner.oid, "index.html").raw
        warmup = stack.proxy.handle(old_url)
        assert warmup.ok and warmup.content == ELEMENTS["index.html"]

        result = emergency_rekey(owner, serial=1, new_keys=fast_keys())
        # Straight into the feed: the replica hosting the old OID never
        # hears of the revocation and keeps serving (as an attacker's
        # server would) — only the client-side check can redirect.
        testbed.object_server.revocation_feed.publish(result.revocation)
        deploy_successor(testbed, result)
        testbed.clock.advance(MAX_STALENESS / 2.0 + 1.0)

        response = stack.proxy.handle(old_url)  # warm session, old OID
        assert response.ok, response.security_failure
        assert response.content == ELEMENTS["index.html"]
        assert stack.revocation.stats.rejections >= 1

    def test_replica_teardown_redirects_to_successor(self):
        """Honest server tore the replica down on the key-scope publish:
        the stale URL fails with ReplicaError, recovery is identical —
        and needs no revocation checker on the client at all."""
        testbed, owner = build_world()
        stack = testbed.client_stack(CLIENT_HOST)  # six checks only
        old_url = HybridUrl.for_oid(owner.oid, "index.html").raw
        assert stack.proxy.handle(old_url).ok

        result = emergency_rekey(owner, serial=1, new_keys=fast_keys())
        # Through the server's publish RPC: key scope → hosting entity
        # revoked → replica dropped.
        testbed.object_server.rpc_revocation_publish(result.revocation.to_dict())
        assert not testbed.object_server.hosts_oid(owner.oid.hex)
        deploy_successor(testbed, result)

        stack.proxy.drop_all_sessions()  # cold client, stale URL
        response = stack.proxy.handle(old_url)
        assert response.ok, response.security_failure
        assert response.content == ELEMENTS["index.html"]

    def test_name_urls_follow_the_republish(self):
        """Relative/name-form URLs need no forwarding at all: the
        successor's publish re-bound the name to the new OID."""
        testbed, owner = build_world()
        result = emergency_rekey(owner, serial=1, new_keys=fast_keys())
        testbed.object_server.rpc_revocation_publish(result.revocation.to_dict())
        deploy_successor(testbed, result)

        stack = testbed.client_stack(
            CLIENT_HOST, revocation_max_staleness=MAX_STALENESS
        )
        name_url = HybridUrl.for_name(owner.name, "index.html").raw
        response = stack.proxy.handle(name_url)
        assert response.ok and response.content == ELEMENTS["index.html"]
        new_url = HybridUrl.for_oid(result.new_oid, "index.html").raw
        assert stack.proxy.handle(new_url).ok

    def test_without_forwarding_fails_closed(self):
        """No forwarding record registered: the revoked object is dead,
        not replaced — zero bytes, the dedicated error, no fallback."""
        testbed, owner = build_world()
        stack = testbed.client_stack(
            CLIENT_HOST, revocation_max_staleness=MAX_STALENESS
        )
        old_url = HybridUrl.for_oid(owner.oid, "index.html").raw
        assert stack.proxy.handle(old_url).ok

        result = emergency_rekey(owner, serial=1, new_keys=fast_keys())
        testbed.object_server.revocation_feed.publish(result.revocation)
        testbed.clock.advance(MAX_STALENESS / 2.0 + 1.0)

        response = stack.proxy.handle(old_url)
        assert response.status == 403
        assert response.security_failure == "RevokedKeyError"
        assert ELEMENTS["index.html"] not in response.content

    def test_forwarding_hop_budget_bounds_chains(self):
        """A twice-re-keyed object resolves through chained records —
        but a forwarding loop cannot spin the proxy forever."""
        testbed, owner = build_world()
        first = emergency_rekey(owner, serial=1, new_keys=fast_keys())
        testbed.object_server.rpc_revocation_publish(first.revocation.to_dict())
        deploy_successor(testbed, first)
        second = emergency_rekey(first.successor, serial=1, new_keys=fast_keys())
        testbed.object_server.rpc_revocation_publish(second.revocation.to_dict())
        deploy_successor(testbed, second)

        stack = testbed.client_stack(CLIENT_HOST)
        old_url = HybridUrl.for_oid(owner.oid, "index.html").raw
        response = stack.proxy.handle(old_url)
        assert response.ok and response.content == ELEMENTS["index.html"]
