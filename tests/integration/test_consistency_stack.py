"""Consistency models over the full stack: staleness under TTL vs push.

The paper's object model lets each document pick its consistency
maintenance; this integration test runs both models through real
replicas and clients and measures staleness with the tracker.
"""

from __future__ import annotations

import pytest

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.location.service import LocationClient
from repro.naming.records import OidRecord
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.replication.consistency import (
    PushInvalidation,
    StalenessTracker,
    TtlConsistency,
)
from repro.replication.coordinator import ReplicationCoordinator, SitePort
from repro.replication.strategies import StaticReplication
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from tests.conftest import fast_keys

REMOTE_SITE = "root/us/cornell"
REMOTE_HOST = "ensamble02.cornell.edu"


def build(consistency):
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/feed", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"version-1"))
    document = owner.publish(validity=600.0)
    testbed.object_server.keystore.authorize("owner", owner.public_key)
    testbed.naming.register(OidRecord(name=owner.name, oid=owner.oid))

    remote = ObjectServer(host=REMOTE_HOST, site=REMOTE_SITE, clock=testbed.clock)
    remote.keystore.authorize("owner", owner.public_key)
    testbed.network.register(
        Endpoint(REMOTE_HOST, "objectserver"), remote.rpc_server().handle_frame
    )

    rpc = RpcClient(testbed.network.transport_for("sporty.cs.vu.nl"))
    coordinator = ReplicationCoordinator(
        LocationClient(rpc, testbed.location_endpoint, "root/europe/vu", clock=testbed.clock),
        consistency=consistency,
    )
    for site, host in (("root/europe/vu", "ginger.cs.vu.nl"), (REMOTE_SITE, REMOTE_HOST)):
        coordinator.add_site(
            SitePort(
                site=site,
                admin=AdminClient(rpc, Endpoint(host, "objectserver"), owner.keys, testbed.clock),
            )
        )
    coordinator.manage(
        owner, document, StaticReplication(sites=[REMOTE_SITE]), home_site="root/europe/vu"
    )
    return testbed, owner, remote, coordinator


def fetch_version(testbed, remote) -> int:
    """What version does a Cornell client actually receive?"""
    stack = testbed.client_stack(REMOTE_HOST)
    response = stack.proxy.handle("globe://vu.nl/feed!/index.html")
    assert response.ok
    return int(response.content.decode().rpartition("-")[2])


class TestPushInvalidation:
    def test_update_visible_immediately_everywhere(self):
        testbed, owner, remote, coordinator = build(PushInvalidation())
        assert fetch_version(testbed, remote) == 1
        owner.put_element(PageElement("index.html", b"version-2"))
        coordinator.publish_update(owner.oid, owner.publish(validity=600.0))
        assert fetch_version(testbed, remote) == 2
        assert remote.replica_for_oid(owner.oid.hex).lr.version == 2


class TestTtlConsistency:
    def test_remote_serves_stale_until_expiry(self):
        """TTL mode: the remote replica keeps serving v1 — *safely*,
        because v1's certificate is still inside its validity window.
        The staleness is bounded and measurable."""
        testbed, owner, remote, coordinator = build(
            TtlConsistency(refresh_sites=("root/europe/vu",))
        )
        tracker = StalenessTracker(clock=testbed.clock)
        tracker.on_publish(1)

        owner.put_element(PageElement("index.html", b"version-2"))
        coordinator.publish_update(owner.oid, owner.publish(validity=600.0))
        tracker.on_publish(2)

        testbed.clock.advance(30.0)
        served = fetch_version(testbed, remote)
        tracker.on_serve(served)
        assert served == 1  # stale but certificate-valid
        assert tracker.stale_serves == 1
        assert tracker.mean_staleness == pytest.approx(30.0, abs=1.0)

        # The home site, on the refresh list, already serves v2.
        home = remote  # readability: check via the testbed's own server
        assert testbed.object_server.replica_for_oid(owner.oid.hex).lr.version == 2

    def test_stale_window_hard_bounded_by_certificate(self):
        """Past v1's validity interval the remote replica's answers are
        REJECTED, not silently served — weak consistency in GlobeDoc can
        never exceed the owner-signed bound."""
        testbed, owner, remote, coordinator = build(
            TtlConsistency(refresh_sites=("root/europe/vu",))
        )
        owner.put_element(PageElement("index.html", b"version-2"))
        coordinator.publish_update(owner.oid, owner.publish(validity=600.0))

        testbed.clock.advance(601.0)  # v1's certificate lapses
        stack = testbed.client_stack(REMOTE_HOST)
        response = stack.proxy.handle("globe://vu.nl/feed!/index.html")
        assert response.status == 403
        assert response.security_failure == "FreshnessError"
