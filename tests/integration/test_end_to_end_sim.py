"""End-to-end over the simulated WAN: the full Fig. 3 browsing flow,
multi-document sites, linked navigation, and update cycles."""

from __future__ import annotations

import pytest

from repro.crypto.identity import TrustStore
from repro.globedoc.element import PageElement
from repro.globedoc.links import extract_links
from repro.globedoc.owner import DocumentOwner
from repro.globedoc.urls import HybridUrl
from repro.harness.experiment import Testbed
from tests.conftest import fast_keys


@pytest.fixture(scope="module")
def testbed():
    return Testbed()


class TestFullBrowsingFlow:
    def test_publish_browse_update_browse(self, testbed):
        owner = DocumentOwner("vu.nl/blog", keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"<html>post v1</html>"))
        published = testbed.publish(owner, validity=3600)

        stack = testbed.client_stack("canardo.inria.fr")
        first = stack.proxy.handle(published.url("index.html"))
        assert first.ok and first.content == b"<html>post v1</html>"

        # Owner updates; pushes the new version to the replica.
        owner.put_element(PageElement("index.html", b"<html>post v2</html>"))
        doc2 = owner.publish(validity=3600)
        from repro.net.rpc import RpcClient
        from repro.server.admin import AdminClient

        admin = AdminClient(
            RpcClient(testbed.network.transport_for("sporty.cs.vu.nl")),
            testbed.objectserver_endpoint,
            owner.keys,
            testbed.clock,
        )
        admin.update_replica(doc2)

        # A *fresh* proxy sees v2 (the old one still holds the v1 binding
        # with its valid certificate — TTL semantics).
        fresh = testbed.client_stack("canardo.inria.fr")
        second = fresh.proxy.handle(published.url("index.html"))
        assert second.ok and second.content == b"<html>post v2</html>"

    def test_navigation_across_linked_documents(self, testbed):
        """Absolute GlobeDoc hyperlinks: browse one document, follow a
        link into a second, both verified."""
        target = DocumentOwner("vu.nl/paper", keys=fast_keys(), clock=testbed.clock)
        target.put_element(PageElement("index.html", b"<html>the paper</html>"))
        target_pub = testbed.publish(target)

        link_url = HybridUrl.for_name("vu.nl/paper", "index.html").raw
        home = DocumentOwner("vu.nl/home", keys=fast_keys(), clock=testbed.clock)
        home.put_element(
            PageElement(
                "index.html", f'<html><a href="{link_url}">paper</a></html>'.encode()
            )
        )
        home_pub = testbed.publish(home)

        stack = testbed.client_stack("ensamble02.cornell.edu")
        response = stack.proxy.handle(home_pub.url("index.html"))
        assert response.ok
        links = extract_links(response.content.decode())
        followed = stack.proxy.handle(links[0].target)
        assert followed.ok
        assert followed.content == b"<html>the paper</html>"
        assert stack.proxy.session_count == 2  # one secure session per object

    def test_multielement_document_one_binding(self, testbed):
        owner = DocumentOwner("vu.nl/gallery", keys=fast_keys(), clock=testbed.clock)
        for i in range(5):
            owner.put_element(PageElement(f"img/photo{i}.png", bytes([i]) * 100))
        owner.put_element(PageElement("index.html", b"<html>gallery</html>"))
        published = testbed.publish(owner)

        stack = testbed.client_stack("canardo.inria.fr")
        transport_stats = stack.transport.stats
        for name in ["index.html"] + [f"img/photo{i}.png" for i in range(5)]:
            assert stack.proxy.handle(published.url(name)).ok
        # Binding ops (key + cert) happened once; elements fetched 6x.
        # name(3 iterative zone steps) + location(1) + key(1) + cert(1) + 6 elements = 12
        assert transport_stats.requests == 12

    def test_freshness_expiry_end_to_end(self, testbed):
        owner = DocumentOwner("vu.nl/ticker", keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"<html>prices</html>"))
        published = testbed.publish(owner, validity=60.0)

        stack = testbed.client_stack("sporty.cs.vu.nl")
        assert stack.proxy.handle(published.url("index.html")).ok
        testbed.clock.advance(120.0)
        fresh_stack = testbed.client_stack("sporty.cs.vu.nl")
        stale = fresh_stack.proxy.handle(published.url("index.html"))
        assert stale.status == 403
        assert stale.security_failure == "FreshnessError"

    def test_identity_proof_end_to_end(self, testbed, session_ca):
        owner = DocumentOwner("vu.nl/bank", keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"<html>account</html>"))
        owner.request_identity_certificate(session_ca)
        published = testbed.publish(owner)

        store = TrustStore()
        store.add_ca(session_ca)
        stack = testbed.client_stack("canardo.inria.fr", trust_store=store)
        stack.proxy.require_identity = True
        response = stack.proxy.handle(published.url("index.html"))
        assert response.ok
        assert response.certified_as == "vu.nl/bank"

    def test_required_identity_blocks_uncertified(self, testbed, session_ca):
        owner = DocumentOwner("vu.nl/shady", keys=fast_keys(), clock=testbed.clock)
        owner.put_element(PageElement("index.html", b"<html>shady</html>"))
        published = testbed.publish(owner)  # no identity certificate

        store = TrustStore()
        store.add_ca(session_ca)
        stack = testbed.client_stack("canardo.inria.fr", trust_store=store)
        stack.proxy.require_identity = True
        response = stack.proxy.handle(published.url("index.html"))
        assert response.status == 403
        assert response.security_failure == "AuthenticityError"
