"""The conformance matrix under the concurrent access pipeline.

The batched pipeline prefetches RPC responses, reuses verification
verdicts across a batch, and coalesces identical requests — three fast
paths, three new chances to serve unverified bytes. This suite replays
the *identical* adversarial matrix with the pipeline enabled and
demands the identical outcome: every tamper mode rejected by the exact
expected :class:`~repro.errors.SecurityError` subclass, zero attacker
bytes delivered, the responsible ``check.*`` span closing with that
error — cold and with a warm :class:`VerificationCache`.

Prefetched bytes are parked *unverified* and replayed through the full
sequential check pipeline, so detection must be byte-for-byte identical
to the sequential path; these tests are the proof.
"""

from __future__ import annotations

import pytest

from repro.attacks.scenarios import SCENARIOS, Scenario, run_scenario
from repro.proxy.pipeline import PipelineConfig
from tests.conftest import fast_keys


@pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.id)
class TestPipelinedConformanceMatrix:
    def test_rejected_by_expected_check(self, scenario: Scenario, warm: bool):
        result = run_scenario(
            scenario, warm, key_factory=fast_keys, pipeline=PipelineConfig()
        )

        assert result["pipelined"]
        assert result["detected"], (
            f"{scenario.id}/{'warm' if warm else 'cold'}/pipelined: "
            "expected detection"
        )
        assert result["failure_type"] == scenario.expected_error
        assert not result["unverified_bytes_leaked"]
        assert result["span_ok"], (
            f"{scenario.id}: no error span named {scenario.expected_span!r} "
            f"closing with {scenario.expected_error}"
        )
        assert result["ok"]


def test_pipeline_batch_rejects_only_tampered_element():
    """A batch mixing honest and tampered objects: the honest URLs are
    served verified, the tampered one is rejected — per-element checks
    survive batching."""
    from repro.attacks.malicious_server import TamperBehavior
    from repro.attacks.scenarios import ELEMENTS, EVIL_MARKER, build_world

    world = build_world(key_factory=fast_keys, pipeline=PipelineConfig())
    world.deploy_replica(TamperBehavior(target="index.html", payload=EVIL_MARKER))

    index_url = world.published.url("index.html")
    retraction_url = world.published.url("retraction.html")
    responses = world.stack.proxy.handle_many([index_url, retraction_url])

    tampered, honest = responses
    assert tampered.status == 403 and tampered.security_failure
    assert EVIL_MARKER not in tampered.content
    assert honest.status == 200
    assert honest.content == ELEMENTS["retraction.html"]
