"""Integration: flash crowd → detection → dynamic replication → relief.

The paper's motivating scenario (§1) driven end to end: a document gets
popular at a remote site, the hotspot policy pushes a replica there, and
client-perceived retrieval time at that site drops.
"""

from __future__ import annotations

import pytest

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.location.service import LocationClient
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.replication.coordinator import ReplicationCoordinator, SitePort
from repro.replication.flashcrowd import FlashCrowdDetector
from repro.replication.policy import RequestObservation
from repro.replication.strategies import HotspotReplication
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from tests.conftest import fast_keys

CORNELL_HOST = "ensamble02.cornell.edu"
CORNELL_SITE = "root/us/cornell"


@pytest.fixture
def world():
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/viral", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"<html>viral story</html>" * 40))
    document = owner.publish(validity=7200)
    testbed.publish(owner)  # home replica on ginger + naming/location

    # A Cornell object server the coordinator can push replicas to.
    cornell_server = ObjectServer(host=CORNELL_HOST, site=CORNELL_SITE, clock=testbed.clock)
    cornell_server.keystore.authorize("owner", owner.public_key)
    testbed.network.register(
        Endpoint(CORNELL_HOST, "objectserver"), cornell_server.rpc_server().handle_frame
    )

    rpc = RpcClient(testbed.network.transport_for("sporty.cs.vu.nl"))
    location = LocationClient(
        rpc, testbed.location_endpoint, origin_site="root/europe/vu", clock=testbed.clock
    )
    coordinator = ReplicationCoordinator(location)
    coordinator.add_site(
        SitePort(
            site="root/europe/vu",
            admin=AdminClient(
                rpc, testbed.objectserver_endpoint, owner.keys, testbed.clock
            ),
        )
    )
    coordinator.add_site(
        SitePort(
            site=CORNELL_SITE,
            admin=AdminClient(
                rpc, Endpoint(CORNELL_HOST, "objectserver"), owner.keys, testbed.clock
            ),
        )
    )
    policy = HotspotReplication(create_rate=1.0, destroy_rate=0.05, window=10.0)
    return testbed, owner, document, cornell_server, coordinator, policy


def cornell_fetch_time(stack, testbed, url: str) -> float:
    """One full secure access from a *warm* client (name/location caches
    populated, as for any repeat visitor) but a fresh secure session —
    the steady-state cost a crowd member pays."""
    proxy = stack.fresh_proxy()
    start = testbed.clock.now()
    response = proxy.handle(url)
    assert response.ok
    return testbed.clock.now() - start


class TestFlashCrowdRelief:
    def test_dynamic_replication_cuts_latency(self, world):
        testbed, owner, document, cornell_server, coordinator, policy = world
        url = f"globe://vu.nl/viral!/index.html"

        stack = testbed.client_stack(CORNELL_HOST, location_ttl=1.0)
        stack.proxy.handle(url)  # warm the name/location caches
        before = cornell_fetch_time(stack, testbed, url)

        # Drive the crowd into the detector and the hotspot policy,
        # executing placement actions through the authenticated admin
        # path (the unit under test is the whole
        # policy → placement → location → client pipeline).
        detector = FlashCrowdDetector(short_window=5.0, long_window=100.0, surge_factor=3.0)
        onset = None
        current_sites = ["root/europe/vu"]
        for i in range(40):
            now = testbed.clock.now()
            event = detector.observe(now)
            if event and event.kind == "onset":
                onset = event
            actions = policy.on_request(
                RequestObservation(site=CORNELL_SITE, time=now), current_sites
            )
            for action in actions:
                if action.kind.value == "create" and action.site == CORNELL_SITE:
                    admin = AdminClient(
                        RpcClient(testbed.network.transport_for("sporty.cs.vu.nl")),
                        Endpoint(CORNELL_HOST, "objectserver"),
                        owner.keys,
                        testbed.clock,
                    )
                    result = admin.create_replica(document)
                    from repro.net.address import ContactAddress

                    testbed.location_service.tree.insert(
                        owner.oid.hex,
                        CORNELL_SITE,
                        ContactAddress.from_dict(result["address"]),
                    )
                    current_sites.append(CORNELL_SITE)
            testbed.clock.advance(0.2)

        assert onset is not None, "flash crowd was never detected"
        assert cornell_server.hosts_oid(owner.oid.hex), "no replica pushed"

        # The burst advanced the clock past the 1 s location TTL, so the
        # warm client re-queries and finds the new local replica.
        after = cornell_fetch_time(stack, testbed, url)
        # Local replica: no transatlantic key/cert/element transfers.
        assert after < before / 2

    def test_replica_serves_identical_verified_content(self, world):
        testbed, owner, document, cornell_server, _, _ = world
        admin = AdminClient(
            RpcClient(testbed.network.transport_for("sporty.cs.vu.nl")),
            Endpoint(CORNELL_HOST, "objectserver"),
            owner.keys,
            testbed.clock,
        )
        result = admin.create_replica(document)
        from repro.net.address import ContactAddress

        testbed.location_service.tree.insert(
            owner.oid.hex, CORNELL_SITE, ContactAddress.from_dict(result["address"])
        )
        stack = testbed.client_stack(CORNELL_HOST)
        response = stack.proxy.handle("globe://vu.nl/viral!/index.html")
        assert response.ok
        assert response.content == b"<html>viral story</html>" * 40
        # And it really came from the local replica.
        assert cornell_server.replica_for_oid(owner.oid.hex).lr.serve_count == 1
