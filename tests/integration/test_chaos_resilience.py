"""Chaos resilience: with genuine replicas available, the resilient
stack turns faults into retries and failovers — every completed fetch
is verified-genuine, and transport faults never escape to the user
while an alternative replica remains (§3.1.2's bound, plus the
availability the resilience layer buys back)."""

from __future__ import annotations

import pytest

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import SERVICES_HOST, Testbed
from repro.net.address import ContactAddress, Endpoint
from repro.net.faults import FaultPlan, FlakyTransport
from repro.net.health import ReplicaHealthTracker
from repro.net.retry import RetryPolicy
from repro.net.rpc import RpcClient
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from repro.sim.random import derive_seed
from tests.conftest import fast_keys

GENUINE = b"<html>the one chaotic truth</html>"
CLIENT_HOST = "sporty.cs.vu.nl"

EXTRA_SITES = (
    ("root/europe/inria", "canardo.inria.fr"),
    ("root/us/cornell", "ensamble02.cornell.edu"),
)


def build_world():
    """A testbed with the document on the primary plus two more sites."""
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/chaotic", keys=fast_keys(), clock=testbed.clock)
    owner.put_element(PageElement("index.html", GENUINE))
    published = testbed.publish(owner, validity=7 * 24 * 3600.0)
    admin_rpc = RpcClient(testbed.network.transport_for(CLIENT_HOST))
    for site, host in EXTRA_SITES:
        server = ObjectServer(host=host, site=site, clock=testbed.clock)
        server.keystore.authorize(owner.name, owner.public_key)
        testbed.network.register(
            Endpoint(host, "objectserver"), server.rpc_server().handle_frame
        )
        admin = AdminClient(
            admin_rpc, Endpoint(host, "objectserver"), owner.keys, testbed.clock
        )
        result = admin.create_replica(published.document)
        testbed.location_service.tree.insert(
            owner.oid.hex, site, ContactAddress.from_dict(result["address"])
        )
    return testbed, published


@pytest.fixture(scope="module")
def world():
    return build_world()


def resilient_stack(testbed, drop: float, corrupt: float = 0.0, seed: int = 0):
    plan = FaultPlan(
        drop_probability=drop,
        corrupt_probability=corrupt,
        seed=derive_seed(seed, "chaos-itest", int(drop * 100), int(corrupt * 100)),
    )
    flaky = FlakyTransport(testbed.network.transport_for(CLIENT_HOST), plan)
    health = ReplicaHealthTracker(
        clock=testbed.clock, failure_threshold=3, quarantine_seconds=600.0
    )
    policy = RetryPolicy(
        max_attempts=5,
        base_delay=0.02,
        multiplier=2.0,
        max_delay=0.5,
        jitter=0.1,
        seed=derive_seed(seed, "chaos-itest-retry"),
    )
    stack = testbed.client_stack(
        CLIENT_HOST, transport=flaky, retry_policy=policy, health=health
    )
    return stack, flaky, health


class TestDroppedRequests:
    @pytest.mark.parametrize("drop", [0.1, 0.2, 0.3])
    def test_no_transport_error_escapes_while_replicas_remain(self, world, drop):
        """Three healthy replicas, drop rates up to 0.3: retries plus
        failover absorb every fault, and what is served is genuine."""
        testbed, published = world
        stack, flaky, _ = resilient_stack(testbed, drop=drop)
        url = published.url("index.html")
        for i in range(24):
            if i % 6 == 0:
                stack.proxy.drop_all_sessions()  # exercise cold binds too
            response = stack.proxy.handle(url)
            assert response.ok, f"request {i} failed at drop={drop}: {response.status}"
            assert response.content == GENUINE
        assert flaky.drops > 0  # faults actually fired

    def test_retry_work_lands_in_access_metrics(self, world):
        testbed, published = world
        stack, flaky, _ = resilient_stack(testbed, drop=0.3, seed=2)
        url = published.url("index.html")
        totals = 0
        for i in range(24):
            if i % 6 == 0:
                stack.proxy.drop_all_sessions()
            response = stack.proxy.handle(url)
            stats = response.metrics.resilience if response.metrics else None
            if stats is not None:
                totals += stats.retries
        assert flaky.drops > 0
        assert totals > 0  # the per-access counters saw the retries
        # Every drop hit an idempotent read and every access succeeded,
        # so every drop was retried. Drops during the bind phase are
        # attributed to the aggregate counters, not a single access.
        assert stack.rpc.counters.retries == flaky.drops
        assert stack.rpc.counters.giveups == 0


class TestCorruptedFrames:
    def test_corruption_costs_retries_never_integrity(self, world):
        testbed, published = world
        stack, flaky, _ = resilient_stack(testbed, drop=0.0, corrupt=0.25, seed=3)
        url = published.url("index.html")
        for i in range(20):
            if i % 5 == 0:
                stack.proxy.drop_all_sessions()
            response = stack.proxy.handle(url)
            assert response.ok
            assert response.content == GENUINE
        assert flaky.corruptions > 0


class TestReplicaCrash:
    def test_primary_crash_fails_over_and_quarantines(self):
        """Kill the primary mid-run with the location service none the
        wiser: client-side failover keeps serving genuine bytes from
        the surviving sites, and the breaker opens on the dead address."""
        testbed, published = build_world()  # private world: we break it
        stack, _, health = resilient_stack(testbed, drop=0.0)
        url = published.url("index.html")
        for _ in range(3):
            assert stack.proxy.handle(url).ok
        primary = Endpoint(SERVICES_HOST, "objectserver")
        testbed.network.unregister(primary)
        failovers = 0
        for i in range(6):
            if i == 3:
                stack.proxy.drop_all_sessions()  # cold bind against the corpse
            response = stack.proxy.handle(url)
            assert response.ok
            assert response.content == GENUINE
            stats = response.metrics.resilience if response.metrics else None
            failovers += stats.failovers if stats else 0
        assert failovers > 0
        quarantined = health.quarantined_addresses()
        assert any(SERVICES_HOST in address for address in quarantined)
