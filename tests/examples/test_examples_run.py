"""Every example script must run to completion (they are living docs)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": b"security overhead",
    "flash_crowd_cdn.py": b"replica pushed",
    "attack_detection.py": b"Attacks that slipped wrong bytes past the proxy: 0",
    "secure_publishing_workflow.py": b"Crawled",
    "dynamic_content_audit.py": b"convictions: ",
}


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr.decode()[-2000:]
    assert EXPECTED_MARKERS[script] in result.stdout


def test_all_examples_have_markers():
    """New examples must be registered here so they stay exercised."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_MARKERS)
