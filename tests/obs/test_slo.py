"""SLO objectives, burn-rate rules, and the fast/slow alert plane."""

from __future__ import annotations

import pytest

from repro.obs import (
    STATE_FIRING,
    STATE_INACTIVE,
    STATE_PENDING,
    STATE_RESOLVED,
    AlertEngine,
    AvailabilityObjective,
    BurnRateRule,
    BurnWindow,
    LatencyObjective,
    MetricsRegistry,
    SloPlane,
)
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock(0.0)


@pytest.fixture
def registry(clock):
    return MetricsRegistry(clock=clock)


class TestLatencyObjective:
    def test_counts_from_cumulative_buckets(self, registry):
        latency = registry.histogram("access_seconds")
        for value in (0.1, 0.2, 0.25, 0.4, 1.0):
            latency.observe(value)
        objective = LatencyObjective(
            "lat", metric="access_seconds", threshold_s=0.25, target=0.99
        )
        # Buckets are upper-inclusive: 0.25 itself is a good event.
        assert objective.counts(registry) == (3.0, 5.0)
        assert objective.compliance(registry) == pytest.approx(0.6)
        verdict = objective.verdict(registry)
        assert verdict["met"] is False
        assert verdict["events"] == 5.0

    def test_missing_metric_reads_zero_traffic(self, registry):
        objective = LatencyObjective(
            "lat", metric="never_created", threshold_s=0.25, target=0.99
        )
        assert objective.counts(registry) == (0.0, 0.0)
        # No traffic is not a breach.
        assert objective.compliance(registry) == 1.0
        assert objective.verdict(registry)["met"] is True

    def test_non_histogram_metric_rejected(self, registry):
        registry.counter("requests_total")
        objective = LatencyObjective(
            "lat", metric="requests_total", threshold_s=0.25, target=0.99
        )
        with pytest.raises(ValueError, match="needs a histogram"):
            objective.counts(registry)

    def test_off_bucket_threshold_rejected(self, registry):
        registry.histogram("access_seconds")
        objective = LatencyObjective(
            "lat", metric="access_seconds", threshold_s=0.3, target=0.99
        )
        # Rounding 0.3 to a neighbouring bound would silently redefine
        # the promise; refuse instead.
        with pytest.raises(ValueError, match="not a bucket bound"):
            objective.counts(registry)

    def test_label_prefixes_select_series(self, registry):
        latency = registry.histogram("op_seconds", labelnames=("op",))
        latency.labels(op="read").observe(0.1)
        latency.labels(op="read").observe(5.0)
        latency.labels(op="write").observe(5.0)
        objective = LatencyObjective(
            "lat", metric="op_seconds", threshold_s=0.25, target=0.5,
            label_prefixes={"op": "read"},
        )
        assert objective.counts(registry) == (1.0, 2.0)

    def test_target_must_be_a_fraction(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="target"):
                LatencyObjective("lat", metric="m", threshold_s=0.25, target=bad)


class TestAvailabilityObjective:
    def test_good_and_total_from_labeled_counter(self, registry):
        requests = registry.counter("requests_total", labelnames=("outcome",))
        requests.labels(outcome="ok").inc(3)
        requests.labels(outcome="rejected").inc(1)
        objective = AvailabilityObjective(
            "avail", metric="requests_total",
            good_labels={"outcome": "ok"}, target=0.9,
        )
        assert objective.counts(registry) == (3.0, 4.0)
        assert objective.error_budget == pytest.approx(0.1)
        assert objective.verdict(registry)["compliance"] == pytest.approx(0.75)

    def test_good_labels_required(self):
        with pytest.raises(ValueError, match="good_labels"):
            AvailabilityObjective(
                "avail", metric="requests_total", good_labels={}, target=0.9
            )


class TestBurnRateRule:
    def make(self, registry, window=60.0, threshold=1.0, target=0.9):
        requests = registry.counter("requests_total", labelnames=("outcome",))
        objective = AvailabilityObjective(
            "avail", metric="requests_total",
            good_labels={"outcome": "ok"}, target=target,
        )
        return requests, BurnRateRule(
            "avail:burn", objective, window_seconds=window, threshold=threshold
        )

    def test_first_sample_measures_nothing(self, registry):
        requests, rule = self.make(registry)
        requests.labels(outcome="error").inc(100)
        assert rule.value(registry, now=0.0) == 0.0

    def test_burn_is_bad_fraction_over_budget(self, registry):
        requests, rule = self.make(registry, target=0.9)  # budget 0.1
        rule.value(registry, now=0.0)  # anchor
        requests.labels(outcome="ok").inc(8)
        requests.labels(outcome="error").inc(2)
        # bad_fraction 0.2 over budget 0.1 → burning 2× tolerated rate.
        assert rule.value(registry, now=10.0) == pytest.approx(2.0)
        assert rule.breached(2.0)
        assert not rule.breached(1.0)  # strictly greater-than

    def test_quiet_window_burns_nothing(self, registry):
        requests, rule = self.make(registry)
        requests.labels(outcome="error").inc(5)
        rule.value(registry, now=0.0)
        # No new events since the anchor: d_total == 0.
        assert rule.value(registry, now=30.0) == 0.0

    def test_window_anchor_forgets_old_breaches(self, registry):
        requests, rule = self.make(registry, window=60.0, target=0.9)
        rule.value(registry, now=0.0)
        requests.labels(outcome="error").inc(10)
        assert rule.value(registry, now=10.0) > 0.0
        requests.labels(outcome="ok").inc(10)
        rule.value(registry, now=30.0)
        # 100 s later the breach samples have left the 60 s window; the
        # surviving anchor already contains the errors, so the measured
        # window is clean.
        assert rule.value(registry, now=130.0) == 0.0

    def test_invalid_parameters_rejected(self, registry):
        _, rule = self.make(registry)
        with pytest.raises(ValueError, match="window_seconds"):
            BurnRateRule("r", rule.objective, window_seconds=0.0, threshold=1.0)
        with pytest.raises(ValueError, match="threshold"):
            BurnRateRule("r", rule.objective, window_seconds=60.0, threshold=0.0)


class TestSloPlane:
    def wired(self, clock, registry):
        engine = AlertEngine(registry, clock)
        return SloPlane(registry, engine), engine

    def test_add_registers_fast_and_slow_rules(self, clock, registry):
        plane, engine = self.wired(clock, registry)
        objective = AvailabilityObjective(
            "avail", metric="requests_total",
            good_labels={"outcome": "ok"}, target=0.9,
        )
        plane.add(objective)
        assert [r.name for r in engine.rules] == [
            "avail:fast_burn", "avail:slow_burn",
        ]
        assert plane.objectives == [objective]
        with pytest.raises(ValueError, match="already registered"):
            plane.add(objective)

    def test_none_window_skipped(self, clock, registry):
        plane, engine = self.wired(clock, registry)
        plane.add(
            AvailabilityObjective(
                "avail", metric="requests_total",
                good_labels={"outcome": "ok"}, target=0.9,
            ),
            fast=BurnWindow(window_seconds=60.0, threshold=10.0),
            slow=None,
        )
        assert [r.name for r in engine.rules] == ["avail:fast_burn"]

    def test_breach_walks_pending_firing_resolved(self, clock, registry):
        plane, engine = self.wired(clock, registry)
        requests = registry.counter("requests_total", labelnames=("outcome",))
        plane.add(
            AvailabilityObjective(
                "avail", metric="requests_total",
                good_labels={"outcome": "ok"}, target=0.75,
            ),
            fast=BurnWindow(window_seconds=60.0, threshold=1.0,
                            severity="critical"),
            slow=None,
        )
        rule = "avail:fast_burn"
        engine.evaluate()  # first sample: anchors, measures nothing
        assert engine.state_of(rule) == STATE_INACTIVE

        requests.labels(outcome="ok").inc(10)
        clock.advance(10.0)
        engine.evaluate()
        assert engine.state_of(rule) == STATE_INACTIVE  # healthy traffic

        requests.labels(outcome="error").inc(10)
        clock.advance(10.0)
        engine.evaluate()  # bad fraction 0.5 over budget 0.25 → burn 2.0
        assert engine.state_of(rule) == STATE_FIRING

        clock.advance(70.0)  # breach samples age out of the window
        engine.evaluate()
        assert engine.state_of(rule) == STATE_RESOLVED
        engine.evaluate()
        assert engine.state_of(rule) == STATE_INACTIVE

        states = [e.state for e in engine.timeline if e.rule == rule]
        assert states == [STATE_PENDING, STATE_FIRING, STATE_RESOLVED]
        assert all(
            e.severity == "critical" for e in engine.timeline if e.rule == rule
        )

    def test_report_filters_timeline_and_judges_compliance(
        self, clock, registry
    ):
        plane, engine = self.wired(clock, registry)
        requests = registry.counter("requests_total", labelnames=("outcome",))
        plane.add(
            AvailabilityObjective(
                "avail", metric="requests_total",
                good_labels={"outcome": "ok"}, target=0.75,
            ),
            fast=BurnWindow(window_seconds=60.0, threshold=1.0),
            slow=None,
        )
        # A foreign rule's transitions must not leak into the SLO report.
        from repro.obs import ThresholdRule

        engine.add_rule(
            ThresholdRule("other_rule", metric="requests_total", threshold=0.5)
        )
        engine.evaluate()
        requests.labels(outcome="error").inc(4)
        requests.labels(outcome="ok").inc(4)
        clock.advance(10.0)
        engine.evaluate()

        report = plane.report()
        assert [v["objective"] for v in report["objectives"]] == ["avail"]
        verdict = report["objectives"][0]
        assert verdict["compliance"] == pytest.approx(0.5)
        assert verdict["met"] is False
        assert verdict["alerts"]["avail:fast_burn"] == STATE_FIRING
        assert report["all_met"] is False
        assert report["alert_timeline"]  # the burn transitions are there
        assert all(
            event["rule"].startswith("avail:")
            for event in report["alert_timeline"]
        )
