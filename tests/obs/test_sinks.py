"""Sink behaviour: ring buffer retention, JSONL export, aggregation."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import JsonlSink, RingBufferSink, SpanStats, Tracer
from repro.sim.clock import SimClock


def make_spans(durations, name="work", error_on=()):
    """Emit one span per duration through a tracer into the given sinks."""
    clock = SimClock(0.0)
    tracer = Tracer(clock=clock)
    spans = []

    class Collect:
        def on_span(self, span):
            spans.append(span)

    tracer.add_sink(Collect())
    for i, duration in enumerate(durations):
        with tracer.span(name, index=i) as span:
            clock.advance(duration)
            if i in error_on:
                span.mark_error(ValueError(f"bad {i}"))
    return spans


class TestRingBufferSink:
    def test_retains_up_to_capacity(self):
        ring = RingBufferSink(capacity=3)
        for span in make_spans([0.1] * 5):
            ring.on_span(span)
        assert len(ring) == 3
        assert ring.seen == 5
        assert ring.dropped == 2
        # Oldest dropped first.
        assert [s.attributes["index"] for s in ring.spans] == [2, 3, 4]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_named_and_errors(self):
        ring = RingBufferSink()
        for span in make_spans([0.1, 0.2], name="a", error_on={1}):
            ring.on_span(span)
        for span in make_spans([0.3], name="b"):
            ring.on_span(span)
        assert len(ring.named("a")) == 2
        assert len(ring.named("b")) == 1
        errors = ring.errors()
        assert len(errors) == 1
        assert errors[0].error_type == "ValueError"

    def test_slowest(self):
        ring = RingBufferSink()
        for span in make_spans([0.3, 0.1, 0.5, 0.2]):
            ring.on_span(span)
        slowest = ring.slowest(2)
        assert [s.duration for s in slowest] == [0.5, 0.3]

    def test_drain_returns_and_clears_atomically(self):
        ring = RingBufferSink(capacity=4)
        spans = make_spans([0.1] * 3)
        for span in spans:
            ring.on_span(span)
        drained = ring.drain()
        assert drained == spans
        assert len(ring) == 0
        # Drained spans were delivered, not lost: seen stays, dropped
        # does not grow.
        assert ring.seen == 3
        assert ring.dropped == 0
        assert ring.drain() == []

    def test_drain_under_concurrent_append(self):
        import threading

        ring = RingBufferSink(capacity=10_000)
        spans = make_spans([0.01] * 500)
        collected = []
        stop = threading.Event()

        def drainer():
            while not stop.is_set():
                collected.extend(ring.drain())
            collected.extend(ring.drain())

        thread = threading.Thread(target=drainer)
        thread.start()
        try:
            for span in spans:
                ring.on_span(span)
        finally:
            stop.set()
            thread.join()
        # Every span ends up exactly once: drained or still buffered,
        # never dropped, never duplicated.
        assert ring.dropped == 0
        assert ring.seen == 500
        assert len(collected) + len(ring) == 500
        assert len({id(s) for s in collected + ring.spans}) == 500

    def test_clear_preserves_cumulative_counters(self):
        ring = RingBufferSink(capacity=2)
        for span in make_spans([0.1] * 3):
            ring.on_span(span)
        assert ring.seen == 3
        assert ring.dropped == 1
        ring.clear()
        assert len(ring) == 0
        assert ring.spans == []
        # Lifetime accounting is monotone: a buffer reset is not a drop
        # and must not look like traffic vanishing.
        assert ring.seen == 3
        assert ring.dropped == 1
        for span in make_spans([0.1]):
            ring.on_span(span)
        assert ring.seen == 4
        assert ring.dropped == 1  # plenty of room after the clear


class TestJsonlSink:
    def test_writes_one_parseable_line_per_span(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        spans = make_spans([0.25, 0.75], error_on={1})
        for span in spans:
            sink.on_span(span)
        assert sink.written == 2
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["name"] == "work"
        assert first["duration_s"] == 0.25
        assert second["status"] == "error"
        assert second["error_type"] == "ValueError"

    def test_path_target_and_context_manager(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlSink(str(path)) as sink:
            for span in make_spans([0.5]):
                sink.on_span(span)
        assert sink.closed
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["duration_s"] == 0.5

    def test_flush_makes_lines_visible_before_close(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSink(str(path))
        for span in make_spans([0.5]):
            sink.on_span(span)
        sink.flush()
        assert len(path.read_text().splitlines()) == 1
        sink.close()

    def test_close_is_idempotent_and_leaves_caller_handles_open(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        for span in make_spans([0.5]):
            sink.on_span(span)
        sink.close()
        sink.close()  # idempotent
        assert sink.closed
        assert not buffer.closed  # caller-owned handle stays usable
        with pytest.raises(ValueError):
            sink.on_span(make_spans([0.1])[0])


class TestSpanStats:
    def test_count_total_percentiles(self):
        stats = SpanStats()
        durations = [float(i) for i in range(1, 11)]  # 1..10
        for span in make_spans(durations):
            stats.on_span(span)
        table = stats.stats()["work"]
        assert table["count"] == 10
        assert table["errors"] == 0
        assert table["total_s"] == pytest.approx(55.0)
        assert table["mean_s"] == pytest.approx(5.5)
        assert table["p50_s"] == pytest.approx(5.5)
        assert table["p95_s"] == pytest.approx(9.55)
        assert table["max_s"] == 10.0

    def test_error_accounting_and_census(self):
        stats = SpanStats()
        for span in make_spans([0.1] * 4, name="check.hash", error_on={1, 3}):
            stats.on_span(span)
        for span in make_spans([0.1], name="rpc.call", error_on={0}):
            stats.on_span(span)
        table = stats.stats()["check.hash"]
        assert table["errors"] == 2
        assert table["error_types"] == {"ValueError": 2}
        census = stats.error_census(prefix="check.")
        assert census == {"check.hash": {"ValueError": 2}}
        assert "rpc.call" in stats.error_census()

    def test_sample_cap_keeps_exact_counts(self):
        stats = SpanStats(max_samples_per_name=2)
        for span in make_spans([1.0, 2.0, 3.0]):
            stats.on_span(span)
        entry = stats.stats()["work"]
        assert entry["count"] == 3
        assert entry["total_s"] == pytest.approx(6.0)
        assert entry["max_s"] == 3.0
        # Percentiles describe only the retained samples.
        assert entry["p95_s"] <= 2.0

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            SpanStats(max_samples_per_name=0)

    def test_unclosed_spans_skipped_but_counted(self):
        from repro.obs.span import Span

        stats = SpanStats()
        for span in make_spans([1.0, 2.0]):
            stats.on_span(span)
        open_span = Span(name="work", span_id=99, parent_id=None, start=0.0)
        stats.on_span(open_span)
        table = stats.stats()["work"]
        # The open span neither distorts the aggregates...
        assert table["count"] == 2
        assert table["total_s"] == pytest.approx(3.0)
        # ...nor disappears silently.
        assert stats.unclosed_total == 1

    def test_names_get_and_clear(self):
        stats = SpanStats()
        for span in make_spans([0.1], name="b"):
            stats.on_span(span)
        for span in make_spans([0.1], name="a"):
            stats.on_span(span)
        assert stats.names == ["a", "b"]
        assert stats.get("a").count == 1
        assert stats.get("missing") is None
        stats.clear()
        assert stats.names == []
