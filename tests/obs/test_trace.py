"""Cross-process trace assembly: stitching, orphans, skew, dedup."""

from __future__ import annotations

import pytest

from repro.obs import RingBufferSink, Span, TraceAssembler, Tracer
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock(0.0)


def two_processes(clock):
    """A client and a server tracer, each with its own ring sink."""
    client_ring, server_ring = RingBufferSink(), RingBufferSink()
    client = Tracer(clock=clock, sinks=(client_ring,), origin="client")
    server = Tracer(clock=clock, sinks=(server_ring,), origin="server")
    return client, client_ring, server, server_ring


def span_of(name, span_id, start, end, *, origin="p", trace_id="p-000001",
            parent_id=None, remote_parent=None) -> Span:
    """A closed span with explicit interval (direct construction)."""
    return Span(
        name=name, span_id=span_id, parent_id=parent_id, start=start,
        end=end, trace_id=trace_id, origin=origin,
        remote_parent=remote_parent,
    )


class TestCrossProcessStitching:
    def test_adopted_context_joins_one_trace(self, clock):
        client, client_ring, server, server_ring = two_processes(clock)
        with client.span("proxy.handle") as root:
            clock.advance(0.1)
            with client.span("rpc.call", op="globedoc.get") as call:
                ctx = client.context()
                with server.span_from(ctx, "server.handle") as handled:
                    clock.advance(0.2)
            clock.advance(0.1)

        assert handled.trace_id == root.trace_id
        assert handled.remote_parent == call.ref
        assert handled.parent_id is None

        assembler = TraceAssembler()
        assembler.add_sink(client_ring)
        assembler.add_sink(server_ring)
        traces = assembler.collect()
        assert len(traces) == 1
        trace = traces[0]
        assert trace.root is not None and trace.root.name == "proxy.handle"
        assert trace.origins == ["client", "server"]
        assert trace.stitched
        assert trace.stitch_rate == 1.0
        assert [s.name for s in trace.cross_process_spans] == ["server.handle"]
        assert trace.children_of(call) == trace.named("server.handle")
        assert trace.duration == pytest.approx(0.4)

    def test_live_local_parent_wins_over_wire_context(self, clock):
        _, _, server, server_ring = two_processes(clock)
        foreign = {"trace": "client-000042", "span": "client:7"}
        with server.span("gossip.run") as outer:
            with server.span_from(foreign, "server.handle") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert inner.remote_parent is None

    def test_garbage_context_degrades_to_root(self, clock):
        _, _, server, server_ring = two_processes(clock)
        for garbage in (None, 42, "trace", {}, {"trace": "", "span": "x:1"},
                        {"trace": "t", "span": 9}):
            with server.span_from(garbage, "server.handle") as span:
                pass
            assert span.remote_parent is None
            assert span.trace_id.startswith("server-")
        # Each degraded adoption is its own fully-stitched root trace.
        assembler = TraceAssembler()
        assembler.add_sink(server_ring)
        traces = assembler.collect()
        assert len(traces) == 6
        assert all(t.stitched for t in traces)

    def test_summary_aggregates_over_traces(self, clock):
        client, client_ring, server, server_ring = two_processes(clock)
        # One cross-process trace...
        with client.span("proxy.handle"):
            with server.span_from(client.context(), "server.handle"):
                clock.advance(0.1)
        # ...and one local-only trace.
        with client.span("revocation.refresh"):
            clock.advance(0.1)
        assembler = TraceAssembler()
        assembler.add_sink(client_ring)
        assembler.add_sink(server_ring)
        summary = assembler.summary(assembler.collect())
        assert summary["traces"] == 2
        assert summary["spans"] == 3
        assert summary["stitch_rate"] == 1.0
        assert summary["fully_stitched_traces"] == 2
        assert summary["orphan_spans"] == 0
        assert summary["skewed_spans"] == 0
        assert summary["cross_process_traces"] == 1
        assert summary["cross_process_trace_rate"] == 0.5
        assert summary["cross_process_spans"] == 1
        assert summary["duplicate_refs"] == 0


class TestOrphans:
    def test_missing_remote_parent_flags_orphan(self):
        # The server adopted a context whose client span was never
        # collected (dropped by a ring, or fabricated wire context).
        lone = span_of("server.handle", 1, 0.0, 1.0, origin="server",
                       trace_id="client-000001",
                       remote_parent="client:99")
        assembler = TraceAssembler()
        assembler.add_spans([lone])
        trace = assembler.assemble()[0]
        assert trace.orphans == [lone]
        assert trace.roots == []
        assert trace.stitch_rate == 0.0
        assert not trace.stitched
        assert trace.unreachable() == [lone]
        assert trace.duration == 0.0  # no unique root to measure

    def test_orphan_subtree_not_reachable(self):
        root = span_of("proxy.handle", 1, 0.0, 1.0)
        orphan = span_of("rpc.call", 2, 0.1, 0.5, parent_id=77)
        child_of_orphan = span_of("server.handle", 3, 0.2, 0.4, parent_id=2)
        assembler = TraceAssembler()
        assembler.add_spans([root, orphan, child_of_orphan])
        trace = assembler.assemble()[0]
        assert trace.orphans == [orphan]
        assert trace.stitch_rate == pytest.approx(1 / 3)
        assert trace.is_reachable(root)
        assert not trace.is_reachable(orphan)
        assert not trace.is_reachable(child_of_orphan)
        assert set(s.ref for s in trace.unreachable()) == {
            orphan.ref, child_of_orphan.ref,
        }


class TestSkew:
    def test_child_escaping_parent_flagged(self):
        parent = span_of("proxy.handle", 1, 0.0, 1.0)
        late = span_of("rpc.call", 2, 0.5, 1.5, parent_id=1)
        early = span_of("cache.get", 3, -0.5, 0.2, parent_id=1)
        inside = span_of("check.hash", 4, 0.2, 0.4, parent_id=1)
        assembler = TraceAssembler()
        assembler.add_spans([parent, late, early, inside])
        trace = assembler.assemble()[0]
        assert {s.ref for s in trace.skewed} == {late.ref, early.ref}
        # Skew is a flag, not an exclusion: the spans still stitch.
        assert trace.stitch_rate == 1.0

    def test_tolerance_absorbs_float_rounding(self):
        parent = span_of("proxy.handle", 1, 0.0, 1.0)
        child = span_of("rpc.call", 2, 0.0, 1.0 + 1e-12, parent_id=1)
        assembler = TraceAssembler()
        assembler.add_spans([parent, child])
        assert assembler.assemble()[0].skewed == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            TraceAssembler(skew_tolerance=-1.0)


class TestDedupAndDrain:
    def test_same_span_object_ingested_once(self):
        span = span_of("proxy.handle", 1, 0.0, 1.0)
        assembler = TraceAssembler()
        assert assembler.add_spans([span, span]) == 1
        assert assembler.add_spans([span]) == 0
        assert assembler.span_count == 1
        assert assembler.duplicate_refs == 0

    def test_conflicting_ref_counted_and_discarded(self):
        first = span_of("proxy.handle", 1, 0.0, 1.0)
        impostor = span_of("cache.get", 1, 5.0, 6.0)  # same origin:id
        assembler = TraceAssembler()
        assembler.add_spans([first])
        assert assembler.add_spans([impostor]) == 0
        assert assembler.duplicate_refs == 1
        # First writer wins.
        assert assembler.assemble()[0].spans[0].name == "proxy.handle"

    def test_collect_drains_ring_sinks(self, clock):
        client, client_ring, _, _ = two_processes(clock)
        with client.span("proxy.handle"):
            clock.advance(0.1)
        assembler = TraceAssembler()
        assembler.add_sink(client_ring)
        assert len(assembler.collect()) == 1
        assert len(client_ring) == 0  # drained, not copied
        # Ingested spans are retained: a second collect still sees them.
        assert len(assembler.collect()) == 1

    def test_sink_without_drain_read_via_spans(self, clock):
        class Plain:
            def __init__(self):
                self.spans = []

            def on_span(self, span):
                self.spans.append(span)

        sink = Plain()
        tracer = Tracer(clock=clock, sinks=(sink,), origin="client")
        with tracer.span("proxy.handle"):
            pass
        assembler = TraceAssembler()
        assembler.add_sink(sink)
        assert len(assembler.collect()) == 1
        assert len(sink.spans) == 1  # non-draining sinks keep theirs
        # Re-collecting the same objects is idempotent, not a duplicate.
        assert len(assembler.collect()) == 1
        assert assembler.duplicate_refs == 0

    def test_clear_forgets_spans_keeps_sinks(self, clock):
        client, client_ring, _, _ = two_processes(clock)
        with client.span("proxy.handle"):
            pass
        assembler = TraceAssembler()
        assembler.add_sink(client_ring)
        assembler.collect()
        assembler.clear()
        assert assembler.span_count == 0
        assert assembler.assemble() == []
        with client.span("proxy.handle"):
            pass
        assert len(assembler.collect()) == 1  # sink still registered
