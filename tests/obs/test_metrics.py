"""The labeled metrics registry: instruments, exposition, NOOP path."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_METRICS,
    NoopMetricsRegistry,
)
from repro.sim.clock import SimClock


class TestCounter:
    def test_unlabeled_inc(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter("requests_total").inc(-1.0)

    def test_labeled_series_are_cached(self):
        counter = Counter("ops_total", labelnames=("op",))
        child = counter.labels(op="get")
        child.inc()
        assert counter.labels(op="get") is child
        counter.labels(op="put").inc(3)
        assert counter.total() == pytest.approx(4.0)

    def test_label_mismatch_rejected(self):
        counter = Counter("ops_total", labelnames=("op",))
        with pytest.raises(ValueError):
            counter.labels(verb="get")
        with pytest.raises(ValueError):
            Counter("plain_total").labels(op="get")

    def test_labeled_parent_rejects_direct_inc(self):
        with pytest.raises(ValueError):
            Counter("ops_total", labelnames=("op",)).inc()

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("9starts_with_digit")
        with pytest.raises(ValueError):
            Counter("ok_total", labelnames=("bad-dash",))
        with pytest.raises(ValueError):
            Counter("ok_total", labelnames=("__reserved",))


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec()
        assert gauge.value == pytest.approx(6.0)

    def test_max_over_series(self):
        gauge = Gauge("state", labelnames=("address",))
        gauge.labels(address="a").set(1.0)
        gauge.labels(address="b").set(2.0)
        assert gauge.max() == 2.0
        assert Gauge("empty").max() == 0.0


class TestHistogram:
    def test_observe_buckets_sum_count(self):
        hist = Histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.sum == pytest.approx(5.55)
        assert hist.count == 3
        buckets = hist._default().cumulative_buckets()
        assert buckets == [(0.1, 1), (1.0, 2), (float("inf"), 3)]

    def test_default_buckets(self):
        assert Histogram("latency").bounds == DEFAULT_LATENCY_BUCKETS

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_factories_are_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "help", labelnames=("op",))
        b = registry.counter("hits_total", "other help", labelnames=("op",))
        assert a is b
        assert len(registry) == 1

    def test_kind_or_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits_total")
        with pytest.raises(ValueError):
            registry.gauge("hits_total")
        with pytest.raises(ValueError):
            registry.counter("hits_total", labelnames=("op",))

    def test_total_and_series_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", labelnames=("op",))
        counter.labels(op="get").inc(2)
        counter.labels(op="put").inc(3)
        hist = registry.histogram("lat", buckets=(1.0,))
        hist.observe(0.5)
        assert registry.total("ops_total") == pytest.approx(5.0)
        assert registry.total("lat") == pytest.approx(0.5)  # histogram: sum
        assert registry.total("unknown") == 0.0
        assert registry.series_values("unknown") == []
        assert sorted(registry.series_values("ops_total")) == [2.0, 3.0]

    def test_series_values_label_prefix_filter(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("state", labelnames=("address",))
        gauge.labels(address="globedoc/replica://h/s#1").set(2.0)
        gauge.labels(address="feed.example/service").set(1.0)
        only_replicas = registry.series_values(
            "state", {"address": "globedoc/replica"}
        )
        assert only_replicas == [2.0]

    def test_collectors_run_on_collect(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("derived")
        registry.register_collector(lambda: gauge.set(42.0))
        assert gauge.value == 0.0
        registry.collect()
        assert gauge.value == 42.0

    def test_injected_clock_is_exposed(self):
        clock = SimClock(7.0)
        assert MetricsRegistry(clock=clock).clock.now() == 7.0


class TestExposition:
    def build(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "ops_total", "Operations.", labelnames=("op",)
        )
        counter.labels(op="put").inc()
        counter.labels(op="get").inc(2)
        registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0)).observe(0.5)
        registry.gauge("depth", "Queue depth.").set(3.0)
        return registry

    def test_prometheus_text_shape_and_order(self):
        text = self.build().to_prometheus_text()
        lines = text.splitlines()
        # Metrics sorted by name; series sorted by label value.
        assert lines[0] == "# HELP depth Queue depth."
        assert 'ops_total{op="get"} 2' in lines
        assert lines.index('ops_total{op="get"} 2') < lines.index(
            'ops_total{op="put"} 1'
        )
        assert 'lat_seconds_bucket{le="+Inf"} 1' in lines
        assert "lat_seconds_sum 0.5" in lines
        assert "lat_seconds_count 1" in lines

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("path",)).labels(
            path='a"b\\c\nd'
        ).inc()
        assert r'path="a\"b\\c\nd"' in registry.to_prometheus_text()

    def test_idle_scrapes_byte_identical(self):
        registry = self.build()
        registry.collect()
        assert registry.to_prometheus_text() == registry.to_prometheus_text()
        assert registry.to_json() == registry.to_json()

    def test_json_snapshot_shape(self):
        snapshot = json.loads(self.build().to_json())
        assert sorted(snapshot) == ["depth", "lat_seconds", "ops_total"]
        ops = snapshot["ops_total"]
        assert ops["type"] == "counter"
        assert [s["labels"]["op"] for s in ops["series"]] == ["get", "put"]
        hist = snapshot["lat_seconds"]["series"][0]
        assert hist["count"] == 1
        assert hist["buckets"][-1]["le"] == "+Inf"


class TestNoopRegistry:
    def test_disabled_flag_and_shared_instrument(self):
        assert NOOP_METRICS.enabled is False
        assert MetricsRegistry().enabled is True
        counter = NOOP_METRICS.counter("anything_total")
        assert counter is NOOP_METRICS.gauge("anything_else")
        assert counter is NoopMetricsRegistry().histogram("h")

    def test_all_operations_are_inert(self):
        instrument = NOOP_METRICS.counter("c", labelnames=("op",))
        child = instrument.labels(op="get")
        assert child is instrument
        child.inc()
        child.set(3.0)
        child.dec()
        child.observe(1.0)
        assert child.value == 0.0
        calls = []
        NOOP_METRICS.register_collector(lambda: calls.append(1))
        NOOP_METRICS.collect()
        assert calls == []  # collectors dropped: nothing to scrape
