"""Critical-path profiler: categorisation, attribution, aggregation."""

from __future__ import annotations

import pytest

from repro.obs import CriticalPathProfiler, Span, TraceAssembler, categorize
from repro.obs.profile import OTHER_CATEGORY


def span_of(name, span_id, start, end, *, parent_id=None) -> Span:
    return Span(
        name=name, span_id=span_id, parent_id=parent_id, start=start,
        end=end, trace_id="p-000001", origin="p",
    )


def assembled(spans):
    assembler = TraceAssembler()
    assembler.add_spans(spans)
    return assembler.assemble()[0]


class TestCategorize:
    @pytest.mark.parametrize(
        "name,category",
        [
            ("check.certificate", "crypto"),
            ("pipeline.batch_verify", "crypto"),
            ("revocation.refresh", "crypto"),
            ("cache.get", "cache"),
            ("storage.journal", "storage"),
            ("versioning.put_delta", "merge"),
            ("gossip.run", "merge"),
            ("rpc.call", "rpc"),
            ("rpc.attempt", "rpc"),
            ("server.handle", "rpc"),
            ("proxy.handle", "proxy"),
            ("session.fetch", "proxy"),
            ("bind.resolve", "proxy"),
            ("http.get", OTHER_CATEGORY),
        ],
    )
    def test_default_table(self, name, category):
        assert categorize(name) == category

    def test_first_match_wins_over_later_prefixes(self):
        # "pipeline.batch_verify" sits in crypto *before* the generic
        # "pipeline." proxy prefix; any other pipeline span is proxy.
        assert categorize("pipeline.batch_verify") == "crypto"
        assert categorize("pipeline.schedule") == "proxy"

    def test_custom_table(self):
        table = (("hot", ("x.",)),)
        assert categorize("x.y", table) == "hot"
        assert categorize("rpc.call", table) == OTHER_CATEGORY


class TestSingleTraceAttribution:
    def test_leaf_root_is_pure_self_time(self):
        trace = assembled([span_of("proxy.handle", 1, 0.0, 10.0)])
        profile = CriticalPathProfiler().profile(trace)
        assert profile.duration == 10.0
        assert profile.by_category == {"proxy": 10.0}
        assert profile.attribution_error == 0.0

    def test_sequential_children_and_gaps(self):
        trace = assembled([
            span_of("proxy.handle", 1, 0.0, 10.0),
            span_of("rpc.call", 2, 2.0, 5.0, parent_id=1),
            span_of("check.element_hash", 3, 6.0, 8.0, parent_id=1),
        ])
        profile = CriticalPathProfiler().profile(trace)
        # Uncovered instants are the root's own time: [0,2]+[5,6]+[8,10].
        assert profile.by_name == {
            "proxy.handle": pytest.approx(5.0),
            "rpc.call": pytest.approx(3.0),
            "check.element_hash": pytest.approx(2.0),
        }
        assert profile.by_category == {
            "proxy": pytest.approx(5.0),
            "rpc": pytest.approx(3.0),
            "crypto": pytest.approx(2.0),
        }
        assert profile.attributed == pytest.approx(profile.duration)

    def test_nested_children_recurse(self):
        trace = assembled([
            span_of("proxy.handle", 1, 0.0, 10.0),
            span_of("rpc.call", 2, 1.0, 9.0, parent_id=1),
            span_of("server.handle", 3, 2.0, 8.0, parent_id=2),
        ])
        profile = CriticalPathProfiler().profile(trace)
        assert profile.by_name == {
            "proxy.handle": pytest.approx(2.0),   # [0,1] + [9,10]
            "rpc.call": pytest.approx(2.0),       # [1,2] + [8,9]
            "server.handle": pytest.approx(6.0),  # [2,8]
        }
        assert profile.attribution_error == pytest.approx(0.0, abs=1e-12)

    def test_parallel_children_charge_the_longest_cover(self):
        # Two children overlap on [1,6]; the one ending last bounded
        # the latency there (max-of-parallel semantics), so the whole
        # covered region belongs to it.
        trace = assembled([
            span_of("proxy.handle", 1, 0.0, 10.0),
            span_of("rpc.call", 2, 1.0, 6.0, parent_id=1),
            span_of("check.certificate", 3, 1.0, 8.0, parent_id=1),
        ])
        profile = CriticalPathProfiler().profile(trace)
        assert profile.by_category == {
            "proxy": pytest.approx(3.0),   # [0,1] + [8,10]
            "crypto": pytest.approx(7.0),  # [1,8] — the critical branch
        }
        assert "rpc" not in profile.by_category
        assert profile.attributed == pytest.approx(10.0)

    def test_segments_partition_the_root_interval(self):
        trace = assembled([
            span_of("proxy.handle", 1, 0.0, 10.0),
            span_of("rpc.call", 2, 0.0, 4.0, parent_id=1),
            span_of("rpc.call", 3, 3.0, 7.0, parent_id=1),
            span_of("cache.get", 4, 6.5, 9.0, parent_id=1),
        ])
        profile = CriticalPathProfiler().profile(trace)
        segments = sorted(profile.segments, key=lambda s: s.start)
        assert segments[0].start == 0.0
        assert segments[-1].end == 10.0
        for left, right in zip(segments, segments[1:]):
            assert left.end == pytest.approx(right.start)  # gap-free
        assert profile.attribution_error == pytest.approx(0.0, abs=1e-12)


class TestAggregation:
    def test_rootless_traces_counted_not_profiled(self):
        ambiguous = assembled([
            span_of("proxy.handle", 1, 0.0, 1.0),
            span_of("gossip.run", 2, 2.0, 3.0),  # second root
        ])
        still_open = assembled([
            Span(name="proxy.handle", span_id=3, parent_id=None,
                 start=0.0, trace_id="p-000002", origin="p"),
        ])
        profiler = CriticalPathProfiler()
        assert profiler.add(ambiguous) is None
        assert profiler.add(still_open) is None
        assert profiler.rootless_traces == 2
        assert profiler.traces_profiled == 0

    def test_aggregate_totals_percentiles_and_fractions(self):
        profiler = CriticalPathProfiler()
        profiler.add(assembled([span_of("proxy.handle", 1, 0.0, 10.0)]))
        profiler.add(assembled([
            span_of("proxy.handle", 1, 0.0, 30.0),
            span_of("rpc.call", 2, 0.0, 20.0, parent_id=1),
        ]))
        aggregate = profiler.aggregate()
        assert aggregate["traces_profiled"] == 2
        assert aggregate["rootless_traces"] == 0
        path = aggregate["critical_path_s"]
        assert path["total"] == pytest.approx(40.0)
        assert path["mean"] == pytest.approx(20.0)
        assert path["max"] == 30.0
        assert 10.0 <= path["p50"] <= 30.0
        assert path["p50"] <= path["p99"] <= 30.0
        categories = aggregate["categories"]
        assert categories["proxy"]["critical_s"] == pytest.approx(20.0)
        assert categories["rpc"]["critical_s"] == pytest.approx(20.0)
        assert sum(c["fraction"] for c in categories.values()) == pytest.approx(1.0)
        assert aggregate["max_attribution_error_s"] <= 1e-9

    def test_hottest_ranks_by_critical_self_time(self):
        profiler = CriticalPathProfiler()
        profiler.add(assembled([
            span_of("proxy.handle", 1, 0.0, 10.0),
            span_of("rpc.call", 2, 0.0, 7.0, parent_id=1),
        ]))
        profiler.add(assembled([
            span_of("proxy.handle", 1, 0.0, 4.0),
            span_of("check.certificate", 2, 0.0, 4.0, parent_id=1),
        ]))
        hottest = profiler.hottest(2)
        assert [h["name"] for h in hottest] == ["rpc.call", "check.certificate"]
        assert hottest[0]["category"] == "rpc"
        assert hottest[0]["critical_s"] == pytest.approx(7.0)
        assert hottest[0]["traces"] == 1
        # Equal totals fall back to name order — deterministic output.
        tied = CriticalPathProfiler()
        tied.add(assembled([
            span_of("proxy.handle", 1, 0.0, 4.0),
            span_of("cache.get", 2, 0.0, 2.0, parent_id=1),
            span_of("storage.journal", 3, 2.0, 4.0, parent_id=1),
        ]))
        assert [h["name"] for h in tied.hottest(2)] == [
            "cache.get", "storage.journal",
        ]

    def test_empty_profiler_aggregate_is_well_formed(self):
        aggregate = CriticalPathProfiler().aggregate()
        assert aggregate["traces_profiled"] == 0
        assert aggregate["critical_path_s"]["total"] == 0.0
        assert aggregate["critical_path_s"]["p99"] == 0.0
        assert aggregate["categories"] == {}
        assert aggregate["hottest"] == []
