"""Tracer and span semantics: nesting, timing, status, noop cost."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticityError
from repro.obs import NOOP_TRACER, NoopTracer, RingBufferSink, Span, Tracer
from repro.obs.span import NoopSpan
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock(1000.0)


@pytest.fixture
def ring():
    return RingBufferSink()


@pytest.fixture
def tracer(clock, ring):
    return Tracer(clock=clock, sinks=(ring,))


class TestSpanBasics:
    def test_duration_from_clock(self, tracer, clock, ring):
        with tracer.span("work"):
            clock.advance(2.5)
        (span,) = ring.spans
        assert span.name == "work"
        assert span.duration == 2.5
        assert span.start == 1000.0
        assert span.end == 1002.5

    def test_open_span_has_zero_duration(self, tracer):
        with tracer.span("work") as span:
            assert span.duration == 0.0

    def test_attributes_from_kwargs_and_setter(self, tracer, ring):
        with tracer.span("rpc", op="get", target="ginger") as span:
            span.set_attribute("bytes", 128)
        (span,) = ring.spans
        assert span.attributes == {"op": "get", "target": "ginger", "bytes": 128}

    def test_name_attribute_does_not_collide(self, tracer, ring):
        # The span-name parameter is positional-only, so components can
        # attach an attribute literally called "name".
        with tracer.span("bind.resolve", name="vu.nl/doc"):
            pass
        (span,) = ring.spans
        assert span.attributes["name"] == "vu.nl/doc"

    def test_ok_status_by_default(self, tracer, ring):
        with tracer.span("work"):
            pass
        (span,) = ring.spans
        assert span.status == "ok"
        assert not span.is_error
        assert span.error_type == ""


class TestErrorStatus:
    def test_escaping_exception_marks_error_and_reraises(self, tracer, ring):
        with pytest.raises(AuthenticityError):
            with tracer.span("check"):
                raise AuthenticityError("hash mismatch")
        (span,) = ring.spans
        assert span.is_error
        assert span.error_type == "AuthenticityError"

    def test_explicit_mark_error_keeps_control_flow(self, tracer, ring):
        with tracer.span("attempt") as span:
            span.mark_error(TimeoutError("no answer"))
        (span,) = ring.spans
        assert span.is_error
        assert span.error_type == "TimeoutError"


class TestNesting:
    def test_child_gets_parent_id(self, tracer, ring):
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        child, parent = ring.spans  # children close (and emit) first
        assert child.name == "child"
        assert parent.parent_id is None
        assert child.parent_id == parent.span_id

    def test_siblings_share_parent(self, tracer, ring):
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, parent = ring.spans
        assert a.parent_id == b.parent_id == parent.span_id

    def test_current_tracks_innermost(self, tracer):
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_span_ids_unique(self, tracer, ring):
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in ring.spans]
        assert len(set(ids)) == 5


class TestToDict:
    def test_jsonable_rendering(self, tracer, clock, ring):
        with tracer.span("work", raw=b"\x01\x02", obj=object()) as span:
            clock.advance(1.0)
            span.mark_error(ValueError("boom"))
        d = ring.spans[0].to_dict()
        assert d["name"] == "work"
        assert d["duration_s"] == 1.0
        assert d["status"] == "error"
        assert d["error_type"] == "ValueError"
        assert d["attributes"]["raw"] == "0102"
        assert isinstance(d["attributes"]["obj"], str)


class TestTraceContext:
    def test_root_mints_trace_id_children_inherit(self, clock, ring):
        tracer = Tracer(clock=clock, sinks=(ring,), origin="proxy-a")
        with tracer.span("proxy.handle") as root:
            with tracer.span("rpc.call") as child:
                pass
        assert root.trace_id == "proxy-a-000001"
        assert child.trace_id == root.trace_id
        with tracer.span("proxy.handle") as second:
            pass
        assert second.trace_id == "proxy-a-000002"

    def test_context_names_innermost_live_span(self, tracer):
        assert tracer.context() is None  # idle tracer: nothing to carry
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                ctx = tracer.context()
                assert ctx == {"trace": inner.trace_id, "span": inner.ref}
        assert tracer.context() is None

    def test_ref_is_origin_qualified(self, clock):
        tracer = Tracer(clock=clock, origin="server-x")
        with tracer.span("server.handle") as span:
            assert span.ref == f"server-x:{span.span_id}"
            assert span.parent_ref is None

    def test_adoption_sets_remote_parent(self, clock, ring):
        tracer = Tracer(clock=clock, sinks=(ring,), origin="server-x")
        ctx = {"trace": "client-000009", "span": "client:4"}
        with tracer.span_from(ctx, "server.handle") as span:
            pass
        assert span.trace_id == "client-000009"
        assert span.remote_parent == "client:4"
        assert span.parent_id is None
        assert span.parent_ref == "client:4"

    def test_parse_context_accepts_exactly_the_wire_shape(self):
        from repro.obs.span import parse_context

        good = {"trace": "t-000001", "span": "t:1"}
        assert parse_context(good) == good
        assert parse_context({**good, "extra": "ignored"}) == good
        for garbage in (
            None, "t:1", 7, [], {},
            {"trace": "t-000001"}, {"span": "t:1"},
            {"trace": "", "span": "t:1"}, {"trace": "t", "span": ""},
            {"trace": 1, "span": "t:1"}, {"trace": "t", "span": 1},
        ):
            assert parse_context(garbage) is None


class TestSchema:
    def test_to_dict_carries_schema_and_v2_fields(self, tracer, clock, ring):
        from repro.obs.span import SPAN_SCHEMA

        with tracer.span("work"):
            clock.advance(0.5)
        d = ring.spans[0].to_dict()
        assert d["schema"] == SPAN_SCHEMA
        assert SPAN_SCHEMA >= 2  # v2 added the propagation fields
        for key in ("trace_id", "origin", "remote_parent"):
            assert key in d


class TestNoopTracer:
    def test_shared_context_and_span(self):
        tracer = NoopTracer()
        ctx1 = tracer.span("a", x=1)
        ctx2 = tracer.span("b")
        assert ctx1 is ctx2  # no allocation per call
        with ctx1 as span:
            assert isinstance(span, NoopSpan)
            span.set_attribute("k", "v")
            span.mark_error(ValueError("ignored"))

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError):
            with NOOP_TRACER.span("work"):
                raise ValueError("boom")

    def test_current_is_none(self):
        assert NOOP_TRACER.current is None

    def test_add_sink_rejected(self):
        with pytest.raises(ValueError):
            NOOP_TRACER.add_sink(RingBufferSink())


class TestSinkDelivery:
    def test_children_emitted_before_parents(self, tracer, ring):
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        assert [s.name for s in ring.spans] == ["leaf", "root"]

    def test_add_sink_after_construction(self, clock):
        tracer = Tracer(clock=clock)
        late = RingBufferSink()
        tracer.add_sink(late)
        with tracer.span("work"):
            pass
        assert len(late) == 1
