"""Tracer and span semantics: nesting, timing, status, noop cost."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticityError
from repro.obs import NOOP_TRACER, NoopTracer, RingBufferSink, Span, Tracer
from repro.obs.span import NoopSpan
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock(1000.0)


@pytest.fixture
def ring():
    return RingBufferSink()


@pytest.fixture
def tracer(clock, ring):
    return Tracer(clock=clock, sinks=(ring,))


class TestSpanBasics:
    def test_duration_from_clock(self, tracer, clock, ring):
        with tracer.span("work"):
            clock.advance(2.5)
        (span,) = ring.spans
        assert span.name == "work"
        assert span.duration == 2.5
        assert span.start == 1000.0
        assert span.end == 1002.5

    def test_open_span_has_zero_duration(self, tracer):
        with tracer.span("work") as span:
            assert span.duration == 0.0

    def test_attributes_from_kwargs_and_setter(self, tracer, ring):
        with tracer.span("rpc", op="get", target="ginger") as span:
            span.set_attribute("bytes", 128)
        (span,) = ring.spans
        assert span.attributes == {"op": "get", "target": "ginger", "bytes": 128}

    def test_name_attribute_does_not_collide(self, tracer, ring):
        # The span-name parameter is positional-only, so components can
        # attach an attribute literally called "name".
        with tracer.span("bind.resolve", name="vu.nl/doc"):
            pass
        (span,) = ring.spans
        assert span.attributes["name"] == "vu.nl/doc"

    def test_ok_status_by_default(self, tracer, ring):
        with tracer.span("work"):
            pass
        (span,) = ring.spans
        assert span.status == "ok"
        assert not span.is_error
        assert span.error_type == ""


class TestErrorStatus:
    def test_escaping_exception_marks_error_and_reraises(self, tracer, ring):
        with pytest.raises(AuthenticityError):
            with tracer.span("check"):
                raise AuthenticityError("hash mismatch")
        (span,) = ring.spans
        assert span.is_error
        assert span.error_type == "AuthenticityError"

    def test_explicit_mark_error_keeps_control_flow(self, tracer, ring):
        with tracer.span("attempt") as span:
            span.mark_error(TimeoutError("no answer"))
        (span,) = ring.spans
        assert span.is_error
        assert span.error_type == "TimeoutError"


class TestNesting:
    def test_child_gets_parent_id(self, tracer, ring):
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        child, parent = ring.spans  # children close (and emit) first
        assert child.name == "child"
        assert parent.parent_id is None
        assert child.parent_id == parent.span_id

    def test_siblings_share_parent(self, tracer, ring):
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, parent = ring.spans
        assert a.parent_id == b.parent_id == parent.span_id

    def test_current_tracks_innermost(self, tracer):
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_span_ids_unique(self, tracer, ring):
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in ring.spans]
        assert len(set(ids)) == 5


class TestToDict:
    def test_jsonable_rendering(self, tracer, clock, ring):
        with tracer.span("work", raw=b"\x01\x02", obj=object()) as span:
            clock.advance(1.0)
            span.mark_error(ValueError("boom"))
        d = ring.spans[0].to_dict()
        assert d["name"] == "work"
        assert d["duration_s"] == 1.0
        assert d["status"] == "error"
        assert d["error_type"] == "ValueError"
        assert d["attributes"]["raw"] == "0102"
        assert isinstance(d["attributes"]["obj"], str)


class TestNoopTracer:
    def test_shared_context_and_span(self):
        tracer = NoopTracer()
        ctx1 = tracer.span("a", x=1)
        ctx2 = tracer.span("b")
        assert ctx1 is ctx2  # no allocation per call
        with ctx1 as span:
            assert isinstance(span, NoopSpan)
            span.set_attribute("k", "v")
            span.mark_error(ValueError("ignored"))

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError):
            with NOOP_TRACER.span("work"):
                raise ValueError("boom")

    def test_current_is_none(self):
        assert NOOP_TRACER.current is None

    def test_add_sink_rejected(self):
        with pytest.raises(ValueError):
            NOOP_TRACER.add_sink(RingBufferSink())


class TestSinkDelivery:
    def test_children_emitted_before_parents(self, tracer, ring):
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        assert [s.name for s in ring.spans] == ["leaf", "root"]

    def test_add_sink_after_construction(self, clock):
        tracer = Tracer(clock=clock)
        late = RingBufferSink()
        tracer.add_sink(late)
        with tracer.span("work"):
            pass
        assert len(late) == 1
