"""The SLO alert engine: rule math and the pending/firing lifecycle."""

from __future__ import annotations

import pytest

from repro.obs import (
    STATE_FIRING,
    STATE_INACTIVE,
    STATE_PENDING,
    STATE_RESOLVED,
    AlertEngine,
    MetricsRegistry,
    RateRule,
    ThresholdRule,
)
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock(0.0)


@pytest.fixture
def registry(clock):
    return MetricsRegistry(clock=clock)


def engine_with(registry, clock, *rules, cost=0.0):
    engine = AlertEngine(registry, clock, evaluation_cost=cost)
    for rule in rules:
        engine.add_rule(rule)
    return engine


class TestThresholdRule:
    def test_aggregates_over_series(self, registry, clock):
        gauge = registry.gauge("state", labelnames=("address",))
        gauge.labels(address="a").set(2.0)
        gauge.labels(address="b").set(1.0)
        rule_max = ThresholdRule("r", metric="state", threshold=1.5)
        rule_sum = ThresholdRule("s", metric="state", threshold=1.5, aggregate="sum")
        assert rule_max.value(registry, clock.now()) == 2.0
        assert rule_sum.value(registry, clock.now()) == 3.0
        assert rule_max.breached(2.0)
        assert not rule_max.breached(1.0)

    def test_label_prefix_restriction(self, registry, clock):
        gauge = registry.gauge("state", labelnames=("address",))
        gauge.labels(address="globedoc/replica://h/s#1").set(0.0)
        gauge.labels(address="feed.example/service").set(2.0)
        rule = ThresholdRule(
            "replicas_only",
            metric="state",
            threshold=1.5,
            op=">=",
            label_prefixes={"address": "globedoc/replica"},
        )
        # The feed endpoint's open breaker must not breach this rule.
        assert rule.value(registry, clock.now()) == 0.0

    def test_missing_metric_aggregates_to_zero(self, registry, clock):
        rule = ThresholdRule("r", metric="absent", threshold=1.0)
        assert rule.value(registry, clock.now()) == 0.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ThresholdRule("r", metric="m", threshold=1.0, op="!=")
        with pytest.raises(ValueError):
            ThresholdRule("r", metric="m", threshold=1.0, aggregate="avg")
        with pytest.raises(ValueError):
            ThresholdRule("r", metric="m", threshold=1.0, for_seconds=-1.0)


class TestRateRule:
    def test_increase_over_trailing_window(self, registry, clock):
        counter = registry.counter("rejections_total")
        rule = RateRule("r", metric="rejections_total", threshold=0.0, window_seconds=30.0)
        assert rule.value(registry, clock.now()) == 0.0  # first-ever sample
        clock.advance(10.0)
        counter.inc(4)
        assert rule.value(registry, clock.now()) == 4.0
        clock.advance(35.0)  # the burst leaves the window
        assert rule.value(registry, clock.now()) == 0.0

    def test_anchor_sample_retained_at_horizon(self, registry, clock):
        counter = registry.counter("c_total")
        rule = RateRule("r", metric="c_total", threshold=0.0, window_seconds=10.0)
        rule.value(registry, clock.now())
        for _ in range(5):
            clock.advance(5.0)
            counter.inc()
            rule.value(registry, clock.now())
        # Increase over the last 10 s is the two most recent increments.
        assert rule.value(registry, clock.now()) == 2.0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            RateRule("r", metric="m", threshold=0.0, window_seconds=0.0)


class TestEngineLifecycle:
    def test_fires_immediately_without_hold(self, registry, clock):
        gauge = registry.gauge("g")
        rule = ThresholdRule("breach", metric="g", threshold=1.0, op=">=")
        engine = engine_with(registry, clock, rule)
        engine.evaluate()
        assert engine.state_of("breach") == STATE_INACTIVE
        gauge.set(2.0)
        transitions = engine.evaluate()
        assert [t.state for t in transitions] == [STATE_PENDING, STATE_FIRING]
        assert engine.firing() == ["breach"]
        gauge.set(0.0)
        transitions = engine.evaluate()
        assert [t.state for t in transitions] == [STATE_RESOLVED]
        engine.evaluate()
        assert engine.state_of("breach") == STATE_INACTIVE

    def test_for_seconds_debounces_transients(self, registry, clock):
        gauge = registry.gauge("g")
        rule = ThresholdRule(
            "slow", metric="g", threshold=1.0, op=">=", for_seconds=10.0
        )
        engine = engine_with(registry, clock, rule)
        gauge.set(2.0)
        engine.evaluate()
        assert engine.state_of("slow") == STATE_PENDING
        gauge.set(0.0)
        clock.advance(5.0)
        engine.evaluate()  # breach did not hold
        assert engine.state_of("slow") == STATE_INACTIVE
        gauge.set(2.0)
        engine.evaluate()
        clock.advance(10.0)
        engine.evaluate()
        assert engine.state_of("slow") == STATE_FIRING

    def test_refire_after_resolution(self, registry, clock):
        gauge = registry.gauge("g")
        rule = ThresholdRule("flap", metric="g", threshold=1.0, op=">=")
        engine = engine_with(registry, clock, rule)
        for value in (2.0, 0.0, 2.0):
            gauge.set(value)
            clock.advance(1.0)
            engine.evaluate()
        assert engine.state_of("flap") == STATE_FIRING
        times = engine.fire_resolve_times()["flap"]
        assert times["fired_at"] is not None and times["resolved_at"] is not None
        # First fire, last resolve.
        assert times["fired_at"] < times["resolved_at"]

    def test_evaluation_cost_charged_to_clock(self, registry, clock):
        rules = [
            ThresholdRule(f"r{i}", metric="g", threshold=1.0) for i in range(3)
        ]
        engine = engine_with(registry, clock, *rules, cost=0.5)
        engine.evaluate()
        assert clock.now() == pytest.approx(1.5)  # 3 rules x 0.5 s

    def test_collectors_run_before_rules(self, registry, clock):
        gauge = registry.gauge("derived")
        registry.register_collector(lambda: gauge.set(5.0))
        rule = ThresholdRule("r", metric="derived", threshold=1.0)
        engine = engine_with(registry, clock, rule)
        engine.evaluate()  # first pass already sees the collected value
        assert engine.state_of("r") == STATE_FIRING

    def test_duplicate_rule_name_rejected(self, registry, clock):
        engine = engine_with(
            registry, clock, ThresholdRule("r", metric="g", threshold=1.0)
        )
        with pytest.raises(ValueError):
            engine.add_rule(RateRule("r", metric="g", threshold=0.0, window_seconds=1.0))

    def test_timeline_is_clock_stamped_and_serialisable(self, registry, clock):
        gauge = registry.gauge("g")
        rule = ThresholdRule("r", metric="g", threshold=1.0, severity="critical")
        engine = engine_with(registry, clock, rule)
        clock.advance(3.0)
        gauge.set(2.0)
        engine.evaluate()
        dicts = engine.timeline_dicts()
        assert [d["state"] for d in dicts] == [STATE_PENDING, STATE_FIRING]
        assert all(d["at"] == 3.0 for d in dicts)
        assert all(d["severity"] == "critical" for d in dicts)
        assert all(d["value"] == 2.0 for d in dicts)

    def test_negative_cost_rejected(self, registry, clock):
        with pytest.raises(ValueError):
            AlertEngine(registry, clock, evaluation_cost=-0.1)
