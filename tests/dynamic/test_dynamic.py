"""Dynamic content on untrusted replicas: signing, probabilistic
double-checking, and receipt auditing (§6)."""

from __future__ import annotations

import pytest

from repro.dynamic.audit import DynamicAuditor
from repro.dynamic.client import DynamicClient
from repro.dynamic.service import DynamicOrigin, DynamicReplica
from repro.errors import AuthenticityError
from repro.globedoc.element import PageElement
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from repro.sim.clock import SimClock
from tests.conftest import fast_keys


def search_fn(state, query: str) -> bytes:
    """The owner's dynamic logic: a deterministic search over elements."""
    hits = [
        name
        for name in state.element_names
        if query.encode() in state.element(name).content
    ]
    return ("results:" + ",".join(hits)).encode()


@pytest.fixture
def world(clock, make_owner):
    owner = make_owner(
        "vu.nl/search",
        {
            "a.txt": b"apples and oranges",
            "b.txt": b"bananas and apples",
            "c.txt": b"cherries",
        },
    )
    state = owner.publish(validity=3600).state()

    origin = DynamicOrigin(host="origin-host", state=state, query_fn=search_fn)
    replica = DynamicReplica(
        host="replica-host", state=state, query_fn=search_fn,
        keys=fast_keys(), clock=clock,
    )
    transport = LoopbackTransport()
    transport.register(origin.endpoint, origin.rpc_server().handle_frame)
    transport.register(replica.endpoint, replica.rpc_server().handle_frame)
    rpc = RpcClient(transport)
    return owner, state, origin, replica, rpc


def make_client(world, check_probability=0.0, seed=0):
    _, _, origin, replica, rpc = world
    return DynamicClient(
        rpc,
        replica.endpoint,
        replica.public_key,
        origin_endpoint=origin.endpoint,
        check_probability=check_probability,
        seed=seed,
    )


class TestHonestReplica:
    def test_query_result(self, world):
        client = make_client(world)
        assert client.query("apples") == b"results:a.txt,b.txt"
        assert client.query("cherries") == b"results:c.txt"
        assert client.query("mangoes") == b"results:"

    def test_receipts_archived(self, world):
        client = make_client(world)
        client.query("apples")
        client.query("bananas")
        assert len(client.receipts) == 2
        assert client.receipts[0].query == "apples"

    def test_double_checks_pass(self, world):
        client = make_client(world, check_probability=1.0)
        for query in ("apples", "bananas", "cherries"):
            client.query(query)
        assert client.checks_performed == 3
        assert not client.caught_cheating

    def test_check_probability_bounds(self, world):
        _, _, origin, replica, rpc = world
        with pytest.raises(Exception):
            DynamicClient(rpc, replica.endpoint, replica.public_key,
                          check_probability=1.5)

    def test_origin_query_cost(self, world):
        """p = 0.5 means roughly half the queries hit the origin."""
        _, _, origin, replica, rpc = world
        client = make_client(world, check_probability=0.5, seed=3)
        for i in range(60):
            client.query("apples")
        assert 15 <= client.checks_performed <= 45
        assert origin.query_count == client.checks_performed


class TestCheatingReplica:
    def test_cheat_served_when_unchecked(self, world):
        """Without double-checking, the lie goes through (signed!) —
        the fundamental limit the paper predicts for dynamic data."""
        _, _, _, replica, _ = world
        replica.cheat_on("apples", b"results:evil.txt")
        client = make_client(world, check_probability=0.0)
        assert client.query("apples") == b"results:evil.txt"

    def test_cheat_caught_by_double_check(self, world):
        _, _, _, replica, _ = world
        replica.cheat_on("apples", b"results:evil.txt")
        client = make_client(world, check_probability=1.0)
        with pytest.raises(AuthenticityError, match="mismatch"):
            client.query("apples")
        assert client.caught_cheating
        assert client.mismatches[0].origin_answer == b"results:a.txt,b.txt"

    def test_probabilistic_detection_converges(self, world):
        """With p=0.2 and a cheater lying on every query, detection is
        near-certain within a few dozen queries."""
        _, _, _, replica, _ = world
        replica.cheat_on("apples", b"results:evil.txt")
        client = make_client(world, check_probability=0.2, seed=7)
        caught_after = None
        for i in range(100):
            try:
                client.query("apples")
            except AuthenticityError:
                caught_after = i + 1
                break
        assert caught_after is not None and caught_after <= 60

    def test_signature_still_required_from_cheater(self, world):
        """Cheating does not exempt the replica from signing — unsigned
        answers are rejected outright."""
        _, _, origin, replica, rpc = world
        stranger = fast_keys()
        client = DynamicClient(
            rpc, replica.endpoint, stranger.public,  # wrong expected key
            origin_endpoint=origin.endpoint,
        )
        with pytest.raises(AuthenticityError):
            client.query("apples")


class TestAudit:
    def test_clean_audit(self, world):
        owner, state, origin, replica, rpc = world
        client = make_client(world)
        for query in ("apples", "bananas"):
            client.query(query)
        auditor = DynamicAuditor(state, search_fn)
        report = auditor.audit(client.receipts)
        assert report.clean
        assert report.audited == 2

    def test_audit_convicts_cheater(self, world):
        owner, state, origin, replica, rpc = world
        replica.cheat_on("apples", b"results:evil.txt")
        client = make_client(world, check_probability=0.0)
        client.query("apples")
        client.query("bananas")  # honest answer
        report = DynamicAuditor(state, search_fn).audit(client.receipts)
        assert len(report.convictions) == 1
        conviction = report.convictions[0]
        assert conviction.receipt.query == "apples"
        assert conviction.truth == b"results:a.txt,b.txt"
        assert conviction.replica_key_der == replica.public_key.der

    def test_forged_receipt_inadmissible(self, world):
        """An attacker cannot frame a replica: receipts failing signature
        verification are not convictions."""
        owner, state, origin, replica, rpc = world
        client = make_client(world)
        client.query("apples")
        genuine = client.receipts[0]
        from repro.crypto.signing import SignedEnvelope
        from repro.dynamic.client import DynamicReceipt

        forged = DynamicReceipt(
            envelope=SignedEnvelope(
                payload={**dict(genuine.envelope.payload), "answer": b"framed"},
                signature=genuine.envelope.signature,
                suite_name=genuine.envelope.suite_name,
            ),
            replica_key_der=genuine.replica_key_der,
        )
        report = DynamicAuditor(state, search_fn).audit([forged])
        assert report.clean
        assert report.inadmissible == 1
